//! Deterministic per-operation NAND fault injection.
//!
//! Real MLC NAND (the paper's Samsung K9LCG08U1M) fails per-operation:
//! programs report status failure and leave the page unreadable, erases
//! eventually fail permanently (the block is retired to the bad-block
//! table), and reads return bit errors that the controller's ECC corrects
//! up to a configured strength. The power fuse in [`crate::FlashChip`]
//! models whole-device failure; a [`FaultPlan`] models the per-operation
//! failures every production FTL must additionally survive.
//!
//! A plan is installed on the chip with [`crate::FlashChip::set_fault_plan`]
//! and consulted once per host-visible read/program/erase. Decisions come
//! from two deterministic sources:
//!
//! 1. **Triggers** ([`FaultTrigger`]): exact schedules — "fail the program
//!    that touches block 7", "return an uncorrectable error on fault-op
//!    index 231". Matched triggers fire once unless marked sticky.
//! 2. **Background rates**: per-operation probabilities drawn from a
//!    seeded [`rand::StdRng`] (the in-tree `xftl-simrand` shim — never OS
//!    entropy), so a `(seed, workload)` pair replays the same faults.
//!
//! Latency of the failure paths (ECC correction stalls, failed-program
//! status polls, failed-erase retries) is charged to the simulated clock
//! using [`EccConfig`] parameters, so fault sweeps move the benchmark
//! numbers the way real degraded media would.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chip::Ppa;
use crate::clock::{Nanos, MICRO};

/// Operation class a fault decision applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Full-page host read.
    Read,
    /// Page program.
    Program,
    /// Block erase.
    Erase,
}

/// Concrete fault injected into one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Program-status failure: the page is left unreadable (torn) and the
    /// block is marked [`crate::BlockHealth::Suspect`].
    ProgramFail,
    /// Erase-status failure: the block is permanently retired
    /// ([`crate::BlockHealth::Retired`]); further erases always fail.
    EraseFail,
    /// The read raises this many flipped bits. At or below the ECC
    /// correction strength the read succeeds after a correction stall;
    /// above it the read fails with [`crate::FlashError::Uncorrectable`].
    ReadFlips(u32),
}

impl FaultKind {
    /// The operation class this fault can be injected into.
    fn class(self) -> FaultOp {
        match self {
            FaultKind::ProgramFail => FaultOp::Program,
            FaultKind::EraseFail => FaultOp::Erase,
            FaultKind::ReadFlips(_) => FaultOp::Read,
        }
    }
}

/// An exact fault schedule entry. All set constraints must match for the
/// trigger to fire; an unconstrained trigger matches every operation of
/// its fault's class. Non-sticky triggers are consumed by their first
/// match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTrigger {
    kind: FaultKind,
    at_op: Option<u64>,
    block: Option<u32>,
    page: Option<u32>,
    lpn: Option<u64>,
    sticky: bool,
}

impl FaultTrigger {
    /// A trigger injecting `kind`, initially unconstrained and one-shot.
    pub fn new(kind: FaultKind) -> Self {
        FaultTrigger {
            kind,
            at_op: None,
            block: None,
            page: None,
            lpn: None,
            sticky: false,
        }
    }

    /// Fire only on the fault-op with this index (the plan numbers every
    /// consulted operation 0, 1, 2, … — see [`FaultPlan::ops_seen`]).
    pub fn at_op(mut self, index: u64) -> Self {
        self.at_op = Some(index);
        self
    }

    /// Fire only on operations touching this physical block.
    pub fn on_block(mut self, block: u32) -> Self {
        self.block = Some(block);
        self
    }

    /// Fire only on operations touching exactly this physical page.
    pub fn on_ppa(mut self, ppa: Ppa) -> Self {
        self.block = Some(ppa.block);
        self.page = Some(ppa.page);
        self
    }

    /// Fire only on operations carrying this logical page number (as
    /// recorded in the page's OOB; erases carry no LPN and never match).
    pub fn on_lpn(mut self, lpn: u64) -> Self {
        self.lpn = Some(lpn);
        self
    }

    /// Keep firing on every match instead of being consumed by the first.
    /// A sticky `ReadFlips` trigger on one page models a page gone
    /// persistently unreadable.
    pub fn sticky(mut self) -> Self {
        self.sticky = true;
        self
    }

    fn matches(&self, index: u64, op: FaultOp, ppa: Ppa, lpn: Option<u64>) -> bool {
        self.kind.class() == op
            && self.at_op.is_none_or(|n| n == index)
            && self.block.is_none_or(|b| b == ppa.block)
            && self.page.is_none_or(|p| p == ppa.page)
            && self.lpn.is_none_or(|l| Some(l) == lpn)
    }
}

/// ECC feedback from one full-page read, surfaced by the chip so the FTL
/// can steer its scrubber: a stream of `Corrected` events on one block is
/// the early warning that precedes `Uncorrectable` data loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EccEvent {
    /// The page decoded with no bit errors.
    #[default]
    Clean,
    /// ECC corrected this many flipped bits in-line (read succeeded after
    /// a correction stall).
    Corrected(u32),
    /// Flips exceeded the correction strength; the data did not decode.
    Uncorrectable(u32),
}

/// Deterministic media-aging curve: read disturb, retention decay, and
/// wear acceleration.
///
/// Real NAND accumulates raw bit errors from three processes: reads
/// disturb the charge of neighbouring pages in the same block, stored
/// charge leaks over time (retention), and both get worse as erase cycles
/// wear the oxide. This model computes the *extra* flipped bits of one
/// read as a pure function of physical state — the block's read count
/// since its last erase, the page's age since program, and the block's
/// lifetime erase count. No RNG is consulted, so installing an aging
/// model never shifts the [`FaultPlan`] seed stream: `XFTL_FAULT_SEED`
/// pins the background faults exactly as before.
///
/// The curve is piecewise linear: below each threshold a process
/// contributes nothing; past it, one bit per `per_flip` step. Wear
/// multiplies the sum once the erase count passes its threshold, modeling
/// the end-of-life error-rate explosion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgingModel {
    /// Reads of a block (since its last erase) before disturb flips start.
    pub read_disturb_threshold: u64,
    /// One disturb flip per this many reads past the threshold.
    pub reads_per_flip: u64,
    /// Page age (ns since program) before retention flips start.
    pub retention_threshold_ns: Nanos,
    /// One retention flip per this much age past the threshold.
    pub retention_ns_per_flip: Nanos,
    /// Erase count past which the disturb+retention sum is amplified.
    pub wear_threshold: u64,
    /// Amplification step: the sum is multiplied by
    /// `1 + (erase_count - wear_threshold) / wear_per_step` (saturating).
    pub wear_per_step: u64,
}

impl AgingModel {
    /// A curve that never fires (all thresholds at the maximum). Useful
    /// as a base for tests that enable one process at a time.
    pub fn inert() -> Self {
        AgingModel {
            read_disturb_threshold: u64::MAX,
            reads_per_flip: u64::MAX,
            retention_threshold_ns: Nanos::MAX,
            retention_ns_per_flip: Nanos::MAX,
            wear_threshold: u64::MAX,
            wear_per_step: u64::MAX,
        }
    }

    /// Extra flipped bits for one read of a page whose block has seen
    /// `reads` full-page reads since its last erase, whose data is
    /// `age_ns` old, on a block with `erase_count` lifetime erases.
    /// Deterministic; consumes no randomness.
    pub fn flips(&self, reads: u64, age_ns: Nanos, erase_count: u64) -> u32 {
        let disturb =
            reads.saturating_sub(self.read_disturb_threshold) / self.reads_per_flip.max(1);
        let retention =
            age_ns.saturating_sub(self.retention_threshold_ns) / self.retention_ns_per_flip.max(1);
        let wear_factor =
            1 + erase_count.saturating_sub(self.wear_threshold) / self.wear_per_step.max(1);
        u32::try_from((disturb + retention).saturating_mul(wear_factor)).unwrap_or(u32::MAX)
    }
}

/// ECC strength and the latency cost of the failure paths.
///
/// The latencies model a BCH/LDPC engine plus firmware handling on the
/// OpenSSD-era controller: a correction stall is tens of microseconds, a
/// failed program is detected by the status poll after the full `tPROG`,
/// and a failed erase is detected after the full `tBERS` (both already
/// charged by the chip) plus firmware handling modelled here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccConfig {
    /// Bit flips per page read the ECC corrects in-line.
    pub correctable_bits: u32,
    /// Extra stall charged when a read needs correction.
    pub correction_ns: Nanos,
    /// Extra firmware time charged when ECC gives up on a read (re-read
    /// attempts, read-retry voltage shifts) before reporting
    /// [`crate::FlashError::Uncorrectable`].
    pub uncorrectable_ns: Nanos,
    /// Extra firmware time charged when a program reports status failure.
    pub program_fail_ns: Nanos,
    /// Extra firmware time charged when an erase reports status failure.
    pub erase_fail_ns: Nanos,
}

impl Default for EccConfig {
    fn default() -> Self {
        EccConfig {
            correctable_bits: 8,
            correction_ns: 15 * MICRO,
            uncorrectable_ns: 450 * MICRO,
            program_fail_ns: 120 * MICRO,
            erase_fail_ns: 700 * MICRO,
        }
    }
}

/// A deterministic fault schedule for one chip.
///
/// See the [module docs](self) for the model. Construct with
/// [`FaultPlan::new`], configure with the builder methods, then install
/// with [`crate::FlashChip::set_fault_plan`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: StdRng,
    ecc: EccConfig,
    program_fail_rate: f64,
    erase_fail_rate: f64,
    read_flip_rate: f64,
    uncorrectable_rate: f64,
    /// Blocks never faulted. NAND datasheets guarantee the first block(s)
    /// valid for the device's lifetime (boot/firmware storage); the FTL
    /// keeps its meta root ring there, so the default exempts blocks 0-1.
    exempt: Vec<u32>,
    triggers: Vec<FaultTrigger>,
    aging: Option<AgingModel>,
    ops_seen: u64,
}

impl FaultPlan {
    /// A plan with no background fault rates and no triggers, seeded for
    /// any later rate draws. Blocks 0 and 1 are exempt by default (see
    /// [`FaultPlan::exempt_blocks`]).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
            ecc: EccConfig::default(),
            program_fail_rate: 0.0,
            erase_fail_rate: 0.0,
            read_flip_rate: 0.0,
            uncorrectable_rate: 0.0,
            exempt: vec![0, 1],
            triggers: Vec::new(),
            aging: None,
            ops_seen: 0,
        }
    }

    /// Convenience: a plan with uniform background rates for all four
    /// fault processes.
    pub fn background(
        seed: u64,
        program_fail_rate: f64,
        erase_fail_rate: f64,
        read_flip_rate: f64,
        uncorrectable_rate: f64,
    ) -> Self {
        FaultPlan::new(seed)
            .program_fail_rate(program_fail_rate)
            .erase_fail_rate(erase_fail_rate)
            .read_flip_rate(read_flip_rate)
            .uncorrectable_rate(uncorrectable_rate)
    }

    /// Per-program probability of a program-status failure.
    pub fn program_fail_rate(mut self, rate: f64) -> Self {
        self.program_fail_rate = rate;
        self
    }

    /// Per-erase probability of an erase-status failure (block retired).
    pub fn erase_fail_rate(mut self, rate: f64) -> Self {
        self.erase_fail_rate = rate;
        self
    }

    /// Per-read probability of a correctable bit-flip burst (1 to
    /// `correctable_bits` flips, uniformly drawn).
    pub fn read_flip_rate(mut self, rate: f64) -> Self {
        self.read_flip_rate = rate;
        self
    }

    /// Per-read probability of an uncorrectable error (flips beyond the
    /// ECC strength). Checked before the correctable draw.
    pub fn uncorrectable_rate(mut self, rate: f64) -> Self {
        self.uncorrectable_rate = rate;
        self
    }

    /// Replaces the ECC model.
    pub fn ecc(mut self, ecc: EccConfig) -> Self {
        self.ecc = ecc;
        self
    }

    /// Replaces the fault-exempt block list (default `[0, 1]`, the
    /// datasheet-guaranteed blocks holding the FTL's meta root ring).
    /// Pass an empty list to fault every block.
    pub fn exempt_blocks(mut self, blocks: Vec<u32>) -> Self {
        self.exempt = blocks;
        self
    }

    /// Appends an exact-schedule trigger.
    pub fn trigger(mut self, trigger: FaultTrigger) -> Self {
        self.triggers.push(trigger);
        self
    }

    /// Installs a deterministic media-aging curve. Aging flips stack on
    /// top of any trigger/background flips for the same read and consume
    /// no RNG draws, so the background fault stream is unchanged.
    pub fn aging(mut self, model: AgingModel) -> Self {
        self.aging = Some(model);
        self
    }

    /// The ECC model in force.
    pub fn ecc_config(&self) -> EccConfig {
        self.ecc
    }

    /// The aging curve in force, if any.
    pub fn aging_model(&self) -> Option<AgingModel> {
        self.aging
    }

    /// Whether `block` is on the fault-exempt list (never faulted, never
    /// aged — the datasheet-guaranteed blocks holding the meta root ring).
    pub fn is_exempt(&self, block: u32) -> bool {
        self.exempt.contains(&block)
    }

    /// How many operations this plan has been consulted for. Trigger
    /// op-indices ([`FaultTrigger::at_op`]) count in this sequence.
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    /// Unconsumed triggers remaining in the plan.
    pub fn pending_triggers(&self) -> usize {
        self.triggers.len()
    }

    /// Decides the fate of one operation. Called by the chip once per
    /// host-visible read/program/erase; deterministic in call order.
    pub(crate) fn decide(&mut self, op: FaultOp, ppa: Ppa, lpn: Option<u64>) -> Option<FaultKind> {
        let index = self.ops_seen;
        self.ops_seen += 1;
        if self.exempt.contains(&ppa.block) {
            return None;
        }
        if let Some(pos) = self
            .triggers
            .iter()
            .position(|t| t.matches(index, op, ppa, lpn))
        {
            let kind = self.triggers[pos].kind;
            if !self.triggers[pos].sticky {
                self.triggers.remove(pos);
            }
            return Some(kind);
        }
        // Background rates. Zero-rate processes consume no RNG draws, so a
        // pure trigger plan never touches the stream.
        match op {
            FaultOp::Program => {
                if self.program_fail_rate > 0.0 && self.rng.gen_bool(self.program_fail_rate) {
                    return Some(FaultKind::ProgramFail);
                }
            }
            FaultOp::Erase => {
                if self.erase_fail_rate > 0.0 && self.rng.gen_bool(self.erase_fail_rate) {
                    return Some(FaultKind::EraseFail);
                }
            }
            FaultOp::Read => {
                if self.uncorrectable_rate > 0.0 && self.rng.gen_bool(self.uncorrectable_rate) {
                    return Some(FaultKind::ReadFlips(self.ecc.correctable_bits + 1));
                }
                if self.read_flip_rate > 0.0 && self.rng.gen_bool(self.read_flip_rate) {
                    let bits = self.rng.gen_range(1..=self.ecc.correctable_bits.max(1));
                    return Some(FaultKind::ReadFlips(bits));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ppa(block: u32) -> Ppa {
        Ppa::new(block, 0)
    }

    #[test]
    fn empty_plan_never_faults() {
        let mut plan = FaultPlan::new(1);
        for i in 0..1000 {
            assert_eq!(plan.decide(FaultOp::Program, ppa(2 + i % 4), Some(7)), None);
        }
        assert_eq!(plan.ops_seen(), 1000);
    }

    #[test]
    fn trigger_fires_once_by_default() {
        let mut plan =
            FaultPlan::new(1).trigger(FaultTrigger::new(FaultKind::ProgramFail).on_block(5));
        assert_eq!(plan.decide(FaultOp::Program, ppa(4), None), None);
        assert_eq!(
            plan.decide(FaultOp::Program, ppa(5), None),
            Some(FaultKind::ProgramFail)
        );
        assert_eq!(plan.decide(FaultOp::Program, ppa(5), None), None);
        assert_eq!(plan.pending_triggers(), 0);
    }

    #[test]
    fn sticky_trigger_keeps_firing() {
        let mut plan = FaultPlan::new(1).trigger(
            FaultTrigger::new(FaultKind::ReadFlips(99))
                .on_ppa(Ppa::new(3, 2))
                .sticky(),
        );
        for _ in 0..3 {
            assert_eq!(
                plan.decide(FaultOp::Read, Ppa::new(3, 2), Some(1)),
                Some(FaultKind::ReadFlips(99))
            );
        }
        assert_eq!(plan.decide(FaultOp::Read, Ppa::new(3, 3), Some(1)), None);
        assert_eq!(plan.pending_triggers(), 1);
    }

    #[test]
    fn trigger_class_must_match_op() {
        let mut plan =
            FaultPlan::new(1).trigger(FaultTrigger::new(FaultKind::EraseFail).on_block(5));
        // A program on block 5 is not an erase; the trigger stays armed.
        assert_eq!(plan.decide(FaultOp::Program, ppa(5), None), None);
        assert_eq!(
            plan.decide(FaultOp::Erase, ppa(5), None),
            Some(FaultKind::EraseFail)
        );
    }

    #[test]
    fn at_op_counts_all_consulted_ops() {
        let mut plan =
            FaultPlan::new(1).trigger(FaultTrigger::new(FaultKind::ProgramFail).at_op(2));
        assert_eq!(plan.decide(FaultOp::Program, ppa(9), None), None); // op 0
        assert_eq!(plan.decide(FaultOp::Read, ppa(9), None), None); // op 1
        assert_eq!(
            plan.decide(FaultOp::Program, ppa(9), None), // op 2
            Some(FaultKind::ProgramFail)
        );
    }

    #[test]
    fn lpn_constraint_matches_oob() {
        let mut plan = FaultPlan::new(1).trigger(
            FaultTrigger::new(FaultKind::ReadFlips(1))
                .on_lpn(42)
                .sticky(),
        );
        assert_eq!(plan.decide(FaultOp::Read, ppa(6), Some(41)), None);
        assert_eq!(plan.decide(FaultOp::Read, ppa(6), None), None);
        assert_eq!(
            plan.decide(FaultOp::Read, ppa(6), Some(42)),
            Some(FaultKind::ReadFlips(1))
        );
    }

    #[test]
    fn exempt_blocks_never_fault() {
        let mut plan = FaultPlan::background(7, 1.0, 1.0, 1.0, 1.0)
            .trigger(FaultTrigger::new(FaultKind::ProgramFail).sticky());
        assert_eq!(plan.decide(FaultOp::Program, ppa(0), None), None);
        assert_eq!(plan.decide(FaultOp::Erase, ppa(1), None), None);
        assert!(plan.decide(FaultOp::Program, ppa(2), None).is_some());
    }

    #[test]
    fn background_rates_are_deterministic_per_seed() {
        let run = |seed| {
            let mut plan = FaultPlan::background(seed, 0.05, 0.05, 0.1, 0.01);
            (0..500)
                .map(|i| plan.decide(FaultOp::Read, ppa(2 + i % 8), Some(i as u64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn background_rate_actually_fires() {
        let mut plan = FaultPlan::new(5).program_fail_rate(0.5);
        let fired = (0..200)
            .filter(|_| plan.decide(FaultOp::Program, ppa(3), None).is_some())
            .count();
        assert!(fired > 50 && fired < 150, "fired {fired}/200 at p=0.5");
    }

    #[test]
    fn aging_curve_is_piecewise_linear() {
        let model = AgingModel {
            read_disturb_threshold: 100,
            reads_per_flip: 50,
            retention_threshold_ns: 1_000,
            retention_ns_per_flip: 500,
            wear_threshold: 10,
            wear_per_step: 5,
        };
        // Below every threshold: nothing.
        assert_eq!(model.flips(100, 1_000, 10), 0);
        // Disturb only: (300-100)/50 = 4.
        assert_eq!(model.flips(300, 0, 0), 4);
        // Retention only: (3000-1000)/500 = 4.
        assert_eq!(model.flips(0, 3_000, 0), 4);
        // Both, wear-amplified: (4+4) * (1 + (25-10)/5) = 32.
        assert_eq!(model.flips(300, 3_000, 25), 32);
    }

    #[test]
    fn inert_model_never_flips() {
        let model = AgingModel::inert();
        assert_eq!(model.flips(u64::MAX, Nanos::MAX, u64::MAX), 0);
    }

    #[test]
    fn aging_does_not_shift_background_stream() {
        let run = |aged: bool| {
            let mut plan = FaultPlan::background(9, 0.05, 0.05, 0.1, 0.01);
            if aged {
                plan = plan.aging(AgingModel::inert());
            }
            (0..500)
                .map(|i| plan.decide(FaultOp::Read, ppa(2 + i % 8), Some(i as u64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn uncorrectable_draw_exceeds_ecc_strength() {
        let mut plan = FaultPlan::new(5).uncorrectable_rate(1.0);
        match plan.decide(FaultOp::Read, ppa(2), None) {
            Some(FaultKind::ReadFlips(bits)) => {
                assert!(bits > plan.ecc_config().correctable_bits);
            }
            other => panic!("expected uncorrectable flips, got {other:?}"),
        }
    }

    #[test]
    fn correctable_draw_within_ecc_strength() {
        let mut plan = FaultPlan::new(5).read_flip_rate(1.0);
        for _ in 0..50 {
            match plan.decide(FaultOp::Read, ppa(2), None) {
                Some(FaultKind::ReadFlips(bits)) => {
                    assert!(bits >= 1 && bits <= plan.ecc_config().correctable_bits);
                }
                other => panic!("expected correctable flips, got {other:?}"),
            }
        }
    }
}
