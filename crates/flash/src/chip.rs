//! The simulated NAND array.
//!
//! [`FlashChip`] models the raw medium the FTL programs against. It enforces
//! the datasheet constraints that make flash management hard — erase before
//! program, whole-block erases, in-order programming within a block — and
//! charges realistic latencies to the shared [`SimClock`]. Flash contents
//! survive a simulated power loss; everything above this layer (mapping
//! tables, caches) does not.

use crate::clock::SimClock;
use crate::config::FlashConfig;
use crate::error::{FlashError, Result};
use crate::stats::FlashStats;
use std::fmt;

/// Physical page address: (block, page-within-block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ppa {
    /// Erase-block index.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl Ppa {
    /// Creates a physical page address.
    pub fn new(block: u32, page: u32) -> Self {
        Ppa { block, page }
    }

    /// Linear index of this address in the given geometry.
    pub fn linear(&self, pages_per_block: usize) -> u64 {
        self.block as u64 * pages_per_block as u64 + self.page as u64
    }

    /// Inverse of [`Ppa::linear`].
    pub fn from_linear(linear: u64, pages_per_block: usize) -> Self {
        Ppa {
            block: (linear / pages_per_block as u64) as u32,
            page: (linear % pages_per_block as u64) as u32,
        }
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.block, self.page)
    }
}

/// What a programmed page holds, from the FTL's point of view. Stored in the
/// out-of-band (spare) area so that crash recovery can rebuild mapping state
/// by scanning the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// Host data page; `lpn` is its logical page number.
    Data,
    /// A persisted slab of the L2P mapping table; `lpn` is the map-page index.
    Map,
    /// FTL meta/checkpoint root block page.
    Meta,
    /// A persisted copy of the X-L2P transactional table.
    XL2p,
    /// Commit record of the per-call atomic-write baseline FTL (Park et
    /// al. \[18\] in the paper's related work).
    Commit,
}

/// Out-of-band metadata programmed atomically with each page.
///
/// Real NAND provides a spare area per page (64 bytes in the modelled chip);
/// we represent the fields the FTL needs as a typed struct. `seq` is a
/// device-global monotone program counter used to order pages during
/// recovery scans, exactly as log-structured FTLs do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oob {
    /// Logical page number (or table-specific index for Map/Meta/XL2p pages).
    pub lpn: u64,
    /// Device-global program sequence number.
    pub seq: u64,
    /// Transaction id that wrote this page; 0 for non-transactional writes.
    pub tid: u64,
    /// Role of the page.
    pub kind: PageKind,
    /// FTL-specific auxiliary word (e.g. TxFlash's cyclic-commit link:
    /// position within the transaction plus the cycle-closing flag).
    pub aux: u32,
}

impl Oob {
    /// OOB for an ordinary non-transactional data page.
    pub fn data(lpn: u64) -> Self {
        Oob {
            lpn,
            seq: 0,
            tid: 0,
            kind: PageKind::Data,
            aux: 0,
        }
    }
}

/// State of one physical page.
#[derive(Debug, Clone)]
enum Page {
    Erased,
    Programmed {
        data: Box<[u8]>,
        oob: Oob,
    },
    /// Power was lost mid-program; contents are garbage and the embedded
    /// checksum fails. Reads return [`FlashError::TornPage`].
    Torn,
}

/// One erase block.
#[derive(Debug, Clone)]
struct Block {
    pages: Vec<Page>,
    /// Index of the next page that may legally be programmed.
    write_point: u32,
    erase_count: u64,
}

impl Block {
    fn new(pages_per_block: usize) -> Self {
        Block {
            pages: vec![Page::Erased; pages_per_block],
            write_point: 0,
            erase_count: 0,
        }
    }
}

/// Outcome of probing a page during a recovery scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageProbe {
    /// Never programmed since the last erase.
    Erased,
    /// Programmed; OOB metadata attached.
    Programmed(Oob),
    /// Interrupted program; must be treated as invalid.
    Torn,
}

/// The simulated NAND array.
///
/// All operations advance the shared clock by their modelled cost and update
/// [`FlashStats`] counters. A `FlashChip` survives power loss: the owning
/// device is dropped and a new one is built around the same chip via the
/// FTL's recovery path.
#[derive(Debug, Clone)]
pub struct FlashChip {
    config: FlashConfig,
    blocks: Vec<Block>,
    seq: u64,
    clock: SimClock,
    stats: FlashStats,
    /// Remaining program/erase operations before a simulated power loss.
    fuse: Option<u64>,
    /// Set once the fuse fires; all operations fail until `rearm` is called
    /// by the recovery path.
    dead: bool,
}

impl FlashChip {
    /// Creates a fully erased array with the given configuration, charging
    /// time to `clock`.
    pub fn new(config: FlashConfig, clock: SimClock) -> Self {
        let blocks = (0..config.geometry.blocks)
            .map(|_| Block::new(config.geometry.pages_per_block))
            .collect();
        FlashChip {
            config,
            blocks,
            seq: 1,
            clock,
            stats: FlashStats::default(),
            fuse: None,
            dead: false,
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.config
    }

    /// Shared clock handle.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Cumulative operation counters.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Resets operation counters (the clock is unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = FlashStats::default();
    }

    /// Next value the global program sequence counter will take.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    fn check_alive(&self) -> Result<()> {
        if self.dead {
            Err(FlashError::PowerLost)
        } else {
            Ok(())
        }
    }

    fn check_range(&self, ppa: Ppa) -> Result<()> {
        if (ppa.block as usize) < self.config.geometry.blocks
            && (ppa.page as usize) < self.config.geometry.pages_per_block
        {
            Ok(())
        } else {
            Err(FlashError::OutOfRange(ppa))
        }
    }

    /// Decrements the power fuse; returns true if it fires on this op.
    fn fuse_fires(&mut self) -> bool {
        match &mut self.fuse {
            Some(0) | None => false,
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.dead = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Arms a power-loss fuse: after `ops` more program/erase operations the
    /// device dies, tearing the in-flight program. Used by failure-injection
    /// tests. `ops` must be at least 1.
    pub fn arm_power_fuse(&mut self, ops: u64) {
        assert!(ops >= 1, "fuse must allow at least one operation");
        self.fuse = Some(ops);
    }

    /// Disarms any pending power fuse.
    pub fn disarm_power_fuse(&mut self) {
        self.fuse = None;
    }

    /// Brings a dead chip back online after a simulated power cycle. Torn
    /// pages stay torn; programmed data is retained; the fuse is cleared.
    pub fn power_cycle(&mut self) {
        self.dead = false;
        self.fuse = None;
    }

    /// True if the power fuse has fired and the chip is offline.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Reads a full page into `buf`, returning its OOB metadata.
    pub fn read(&mut self, ppa: Ppa, buf: &mut [u8]) -> Result<Oob> {
        self.check_alive()?;
        self.check_range(ppa)?;
        let page_size = self.config.geometry.page_size;
        if buf.len() != page_size {
            return Err(FlashError::BadBufferSize {
                expected: page_size,
                got: buf.len(),
            });
        }
        let t = &self.config.timings;
        let cost = t.cmd_overhead_ns
            + t.scaled(t.read_ns)
            + t.scaled(page_size as u64 * t.channel_ns_per_byte);
        self.clock.advance(cost);
        self.stats.reads += 1;
        self.stats.busy_read_ns += cost;
        match &self.blocks[ppa.block as usize].pages[ppa.page as usize] {
            Page::Erased => Err(FlashError::ReadErased(ppa)),
            Page::Torn => Err(FlashError::TornPage(ppa)),
            Page::Programmed { data, oob } => {
                buf.copy_from_slice(data);
                Ok(*oob)
            }
        }
    }

    /// Reads only the OOB metadata of a page (cheap; used by recovery scans
    /// and GC validity checks).
    pub fn probe(&mut self, ppa: Ppa) -> Result<PageProbe> {
        self.check_alive()?;
        self.check_range(ppa)?;
        let t = &self.config.timings;
        // OOB-only read: command overhead plus transfer of the spare area.
        let cost = t.cmd_overhead_ns / 4
            + t.scaled(t.read_ns / 8)
            + t.scaled(self.config.geometry.oob_bytes as u64 * t.channel_ns_per_byte);
        self.clock.advance(cost);
        self.stats.oob_reads += 1;
        self.stats.busy_read_ns += cost;
        Ok(
            match &self.blocks[ppa.block as usize].pages[ppa.page as usize] {
                Page::Erased => PageProbe::Erased,
                Page::Torn => PageProbe::Torn,
                Page::Programmed { oob, .. } => PageProbe::Programmed(*oob),
            },
        )
    }

    /// Programs a page. Fails if the page is not erased or is not the next
    /// in-order page of its block. On success the OOB is stamped with the
    /// next global sequence number, which is returned inside the final OOB.
    pub fn program(&mut self, ppa: Ppa, data: &[u8], mut oob: Oob) -> Result<Oob> {
        self.check_alive()?;
        self.check_range(ppa)?;
        let page_size = self.config.geometry.page_size;
        if data.len() != page_size {
            return Err(FlashError::BadBufferSize {
                expected: page_size,
                got: data.len(),
            });
        }
        let block = &self.blocks[ppa.block as usize];
        match &block.pages[ppa.page as usize] {
            Page::Erased => {}
            _ => return Err(FlashError::ProgramOverwrite(ppa)),
        }
        if ppa.page != block.write_point {
            return Err(FlashError::ProgramOutOfOrder {
                ppa,
                expected_page: block.write_point,
            });
        }
        let t = &self.config.timings;
        let cost = t.cmd_overhead_ns
            + t.scaled(page_size as u64 * t.channel_ns_per_byte)
            + t.scaled(t.program_ns);
        self.clock.advance(cost);
        self.stats.programs += 1;
        self.stats.busy_program_ns += cost;

        if self.fuse.is_some() {
            let fires = match &mut self.fuse {
                Some(n) => {
                    *n -= 1;
                    *n == 0
                }
                None => false,
            };
            if fires {
                self.dead = true;
                let block = &mut self.blocks[ppa.block as usize];
                block.pages[ppa.page as usize] = Page::Torn;
                block.write_point = ppa.page + 1;
                self.stats.torn_pages += 1;
                return Err(FlashError::PowerLost);
            }
        }
        oob.seq = self.seq;
        self.seq += 1;
        let block = &mut self.blocks[ppa.block as usize];
        block.pages[ppa.page as usize] = Page::Programmed {
            data: data.into(),
            oob,
        };
        block.write_point = ppa.page + 1;
        Ok(oob)
    }

    /// Erases a whole block, returning all its pages to the erased state.
    pub fn erase(&mut self, block: u32) -> Result<()> {
        self.check_alive()?;
        self.check_range(Ppa::new(block, 0))?;
        if self.fuse_fires() {
            // Erase is modelled as atomic: power loss before it takes effect.
            return Err(FlashError::PowerLost);
        }
        let t = &self.config.timings;
        let cost = t.cmd_overhead_ns + t.scaled(t.erase_ns);
        self.clock.advance(cost);
        self.stats.erases += 1;
        self.stats.busy_erase_ns += cost;
        let b = &mut self.blocks[block as usize];
        for p in &mut b.pages {
            *p = Page::Erased;
        }
        b.write_point = 0;
        b.erase_count += 1;
        Ok(())
    }

    /// Next in-order programmable page index of `block`, or `None` if full.
    pub fn write_point(&self, block: u32) -> Option<u32> {
        let b = &self.blocks[block as usize];
        if (b.write_point as usize) < self.config.geometry.pages_per_block {
            Some(b.write_point)
        } else {
            None
        }
    }

    /// Lifetime erase count of `block` (for wear statistics).
    pub fn erase_count(&self, block: u32) -> u64 {
        self.blocks[block as usize].erase_count
    }

    /// True if the page has never been programmed since its last erase.
    pub fn is_erased(&self, ppa: Ppa) -> bool {
        matches!(
            self.blocks[ppa.block as usize].pages[ppa.page as usize],
            Page::Erased
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> FlashChip {
        FlashChip::new(FlashConfig::tiny(4), SimClock::new())
    }

    fn page(chip: &FlashChip, byte: u8) -> Vec<u8> {
        vec![byte; chip.config().geometry.page_size]
    }

    #[test]
    fn program_then_read_roundtrip() {
        let mut c = chip();
        let data = page(&c, 0xAB);
        let oob = c.program(Ppa::new(0, 0), &data, Oob::data(42)).unwrap();
        assert_eq!(oob.lpn, 42);
        assert_eq!(oob.seq, 1);
        let mut buf = page(&c, 0);
        let read_oob = c.read(Ppa::new(0, 0), &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(read_oob, oob);
    }

    #[test]
    fn read_of_erased_page_fails() {
        let mut c = chip();
        let mut buf = page(&c, 0);
        assert_eq!(
            c.read(Ppa::new(1, 0), &mut buf),
            Err(FlashError::ReadErased(Ppa::new(1, 0)))
        );
    }

    #[test]
    fn overwrite_rejected() {
        let mut c = chip();
        let data = page(&c, 1);
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        c.program(Ppa::new(0, 1), &data, Oob::data(2)).unwrap();
        assert_eq!(
            c.program(Ppa::new(0, 0), &data, Oob::data(3)),
            Err(FlashError::ProgramOverwrite(Ppa::new(0, 0)))
        );
    }

    #[test]
    fn out_of_order_program_rejected() {
        let mut c = chip();
        let data = page(&c, 1);
        assert_eq!(
            c.program(Ppa::new(0, 3), &data, Oob::data(1)),
            Err(FlashError::ProgramOutOfOrder {
                ppa: Ppa::new(0, 3),
                expected_page: 0
            })
        );
    }

    #[test]
    fn erase_resets_block() {
        let mut c = chip();
        let data = page(&c, 9);
        for i in 0..8 {
            c.program(Ppa::new(2, i), &data, Oob::data(i as u64))
                .unwrap();
        }
        assert_eq!(c.write_point(2), None);
        c.erase(2).unwrap();
        assert_eq!(c.write_point(2), Some(0));
        assert_eq!(c.erase_count(2), 1);
        assert!(c.is_erased(Ppa::new(2, 5)));
        // Programmable again from page 0.
        c.program(Ppa::new(2, 0), &data, Oob::data(7)).unwrap();
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let mut c = chip();
        let data = page(&c, 3);
        let a = c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        let b = c.program(Ppa::new(1, 0), &data, Oob::data(2)).unwrap();
        assert!(b.seq > a.seq);
    }

    #[test]
    fn clock_advances_with_operations() {
        let mut c = chip();
        let t0 = c.clock().now();
        let data = page(&c, 3);
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        let t1 = c.clock().now();
        assert!(t1 > t0);
        let mut buf = page(&c, 0);
        c.read(Ppa::new(0, 0), &mut buf).unwrap();
        assert!(c.clock().now() > t1);
    }

    #[test]
    fn program_costs_more_than_read() {
        let mut c = chip();
        let data = page(&c, 3);
        let t0 = c.clock().now();
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        let prog_cost = c.clock().now() - t0;
        let mut buf = page(&c, 0);
        let t1 = c.clock().now();
        c.read(Ppa::new(0, 0), &mut buf).unwrap();
        let read_cost = c.clock().now() - t1;
        assert!(prog_cost > read_cost);
    }

    #[test]
    fn probe_reports_states() {
        let mut c = chip();
        assert_eq!(c.probe(Ppa::new(0, 0)).unwrap(), PageProbe::Erased);
        let data = page(&c, 3);
        let oob = c.program(Ppa::new(0, 0), &data, Oob::data(5)).unwrap();
        assert_eq!(c.probe(Ppa::new(0, 0)).unwrap(), PageProbe::Programmed(oob));
    }

    #[test]
    fn power_fuse_tears_inflight_program() {
        let mut c = chip();
        let data = page(&c, 3);
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        c.arm_power_fuse(1);
        assert_eq!(
            c.program(Ppa::new(0, 1), &data, Oob::data(2)),
            Err(FlashError::PowerLost)
        );
        assert!(c.is_dead());
        // Everything fails until power-cycled.
        let mut buf = page(&c, 0);
        assert_eq!(c.read(Ppa::new(0, 0), &mut buf), Err(FlashError::PowerLost));
        c.power_cycle();
        // Survivor page intact, torn page detectable.
        assert!(c.read(Ppa::new(0, 0), &mut buf).is_ok());
        assert_eq!(c.probe(Ppa::new(0, 1)).unwrap(), PageProbe::Torn);
        assert_eq!(
            c.read(Ppa::new(0, 1), &mut buf),
            Err(FlashError::TornPage(Ppa::new(0, 1)))
        );
        // Write point moved past the torn page: block still usable in order.
        assert_eq!(c.write_point(0), Some(2));
        c.program(Ppa::new(0, 2), &data, Oob::data(3)).unwrap();
    }

    #[test]
    fn fuse_counts_down_across_ops() {
        let mut c = chip();
        let data = page(&c, 3);
        c.arm_power_fuse(3);
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        c.program(Ppa::new(0, 1), &data, Oob::data(2)).unwrap();
        assert_eq!(
            c.program(Ppa::new(0, 2), &data, Oob::data(3)),
            Err(FlashError::PowerLost)
        );
    }

    #[test]
    fn bad_buffer_size_rejected() {
        let mut c = chip();
        assert!(matches!(
            c.program(Ppa::new(0, 0), &[0u8; 3], Oob::data(1)),
            Err(FlashError::BadBufferSize { .. })
        ));
    }

    #[test]
    fn stats_count_operations() {
        let mut c = chip();
        let data = page(&c, 3);
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        let mut buf = page(&c, 0);
        c.read(Ppa::new(0, 0), &mut buf).unwrap();
        c.erase(1).unwrap();
        c.probe(Ppa::new(0, 0)).unwrap();
        let s = c.stats();
        assert_eq!(s.programs, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.erases, 1);
        assert_eq!(s.oob_reads, 1);
        assert!(s.busy_program_ns > 0 && s.busy_read_ns > 0 && s.busy_erase_ns > 0);
    }

    #[test]
    fn linear_ppa_roundtrip() {
        let ppa = Ppa::new(3, 5);
        let lin = ppa.linear(8);
        assert_eq!(lin, 29);
        assert_eq!(Ppa::from_linear(lin, 8), ppa);
    }
}
