//! The simulated NAND array.
//!
//! [`FlashChip`] models the raw medium the FTL programs against. It enforces
//! the datasheet constraints that make flash management hard — erase before
//! program, whole-block erases, in-order programming within a block — and
//! charges realistic latencies to the shared [`SimClock`].
//!
//! # Channel model & command queue
//!
//! The array is organised as `channels × ways` independent units; physical
//! blocks stripe across channels (`channel = block % channels`). Timing is
//! modelled with *busy-until timestamps*, not threads: each channel (bus)
//! and each unit (cell array) remembers the absolute simulated instant it
//! becomes free, and an operation's completion time is computed by chaining
//! its phases after those instants. Reads occupy the cell array first and
//! the bus second; programs transfer over the bus first and then occupy the
//! cell array; erases touch only the cell array. Synchronous operations
//! advance the shared clock to their completion. Queued operations
//! ([`FlashChip::program_queued`] and friends) advance the clock only by
//! the firmware command overhead — the serial dispatch path — and return
//! their absolute completion time, so commands issued to distinct channels
//! overlap. [`FlashChip::drain`] is the barrier that waits for everything
//! outstanding. Because everything is a pure function of issue order and
//! the clock, the simulation stays deterministic.
//!
//! Flash contents survive a simulated power loss; everything above this
//! layer (mapping tables, caches) does not. Page state mutates at *issue*
//! time even for queued commands, so the power-loss fuse semantics are
//! independent of queueing.

use crate::clock::{Nanos, SimClock};
use crate::config::FlashConfig;
use crate::error::{FlashError, Result};
use crate::fault::{EccEvent, FaultKind, FaultOp, FaultPlan};
use crate::stats::{FlashStats, MAX_CHANNELS, QUEUE_DEPTH_BUCKETS};
use std::fmt;
use xftl_trace::{OpClass, Recorder, Telemetry};

/// Physical page address: (block, page-within-block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ppa {
    /// Erase-block index.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl Ppa {
    /// Creates a physical page address.
    pub fn new(block: u32, page: u32) -> Self {
        Ppa { block, page }
    }

    /// Linear index of this address in the given geometry.
    pub fn linear(&self, pages_per_block: usize) -> u64 {
        self.block as u64 * pages_per_block as u64 + self.page as u64
    }

    /// Inverse of [`Ppa::linear`].
    pub fn from_linear(linear: u64, pages_per_block: usize) -> Self {
        Ppa {
            block: (linear / pages_per_block as u64) as u32,
            page: (linear % pages_per_block as u64) as u32,
        }
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.block, self.page)
    }
}

/// What a programmed page holds, from the FTL's point of view. Stored in the
/// out-of-band (spare) area so that crash recovery can rebuild mapping state
/// by scanning the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// Host data page; `lpn` is its logical page number.
    Data,
    /// A persisted slab of the L2P mapping table; `lpn` is the map-page index.
    Map,
    /// FTL meta/checkpoint root block page.
    Meta,
    /// A persisted copy of the X-L2P transactional table.
    XL2p,
    /// Commit record of the per-call atomic-write baseline FTL (Park et
    /// al. \[18\] in the paper's related work).
    Commit,
}

/// Out-of-band metadata programmed atomically with each page.
///
/// Real NAND provides a spare area per page (64 bytes in the modelled chip);
/// we represent the fields the FTL needs as a typed struct. `seq` is a
/// device-global monotone program counter used to order pages during
/// recovery scans, exactly as log-structured FTLs do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oob {
    /// Logical page number (or table-specific index for Map/Meta/XL2p pages).
    pub lpn: u64,
    /// Device-global program sequence number.
    pub seq: u64,
    /// Transaction id that wrote this page; 0 for non-transactional writes.
    pub tid: u64,
    /// Role of the page.
    pub kind: PageKind,
    /// FTL-specific auxiliary word (e.g. TxFlash's cyclic-commit link:
    /// position within the transaction plus the cycle-closing flag).
    pub aux: u32,
}

impl Oob {
    /// OOB for an ordinary non-transactional data page.
    pub fn data(lpn: u64) -> Self {
        Oob {
            lpn,
            seq: 0,
            tid: 0,
            kind: PageKind::Data,
            aux: 0,
        }
    }
}

/// Stored contents of a programmed page.
///
/// Multi-gigabyte simulated devices would not fit in host RAM if every page
/// kept a full byte buffer, so constant-fill pages (the common case in
/// synthetic workloads) compress to a single byte. The representation is
/// invisible above this layer: reads always materialise the full buffer,
/// and the fault model never mutates stored contents (bit flips surface in
/// the ECC path, not the cells), so compression cannot change observable
/// behaviour.
#[derive(Debug, Clone)]
enum PageData {
    /// Every byte of the page equals the given value.
    Fill(u8),
    /// Arbitrary contents.
    Bytes(Box<[u8]>),
}

impl PageData {
    fn capture(data: &[u8]) -> Self {
        match data.first() {
            Some(&b) if data.iter().all(|&x| x == b) => PageData::Fill(b),
            _ => PageData::Bytes(data.into()),
        }
    }

    fn copy_to(&self, buf: &mut [u8]) {
        match self {
            PageData::Fill(b) => buf.fill(*b),
            PageData::Bytes(data) => buf.copy_from_slice(data),
        }
    }
}

/// Payload of a programmed page, boxed so the per-page footprint of the
/// (mostly erased) array stays one machine word plus discriminant.
#[derive(Debug, Clone)]
struct ProgrammedPage {
    data: PageData,
    oob: Oob,
    /// Simulated instant the program completed; retention aging measures
    /// data age from here.
    programmed_at: Nanos,
}

/// State of one physical page.
#[derive(Debug, Clone)]
enum Page {
    Erased,
    Programmed(Box<ProgrammedPage>),
    /// Power was lost mid-program; contents are garbage and the embedded
    /// checksum fails. Reads return [`FlashError::TornPage`].
    Torn,
}

const ERASED_PAGE: Page = Page::Erased;

/// One erase block.
///
/// `pages` grows lazily: programming is strictly in-order, so the vector
/// only ever holds the prefix of pages written since the last erase, and an
/// index at or past `pages.len()` is erased by construction. This keeps an
/// erased multi-terabit array at essentially zero host-memory cost.
#[derive(Debug, Clone)]
struct Block {
    pages: Vec<Page>,
    /// Index of the next page that may legally be programmed.
    write_point: u32,
    erase_count: u64,
    /// Full-page reads since the last erase; drives read-disturb aging.
    reads: u64,
    /// Bits ECC has corrected in this block since the last erase. The
    /// FTL's scrubber reads this as its risk signal.
    corrected_flips: u64,
    /// Completion instant of the first program after the last erase;
    /// retention aging of the whole block is measured from here.
    first_program_at: Option<Nanos>,
}

impl Block {
    fn new(_pages_per_block: usize) -> Self {
        Block {
            pages: Vec::new(),
            write_point: 0,
            erase_count: 0,
            reads: 0,
            corrected_flips: 0,
            first_program_at: None,
        }
    }

    fn page(&self, idx: usize) -> &Page {
        self.pages.get(idx).unwrap_or(&ERASED_PAGE)
    }

    /// Stores `page` at `idx`, padding any gap with erased pages (programs
    /// are in-order, so in practice `idx == pages.len()`).
    fn set_page(&mut self, idx: usize, page: Page) {
        if idx >= self.pages.len() {
            self.pages.resize_with(idx + 1, || Page::Erased);
        }
        self.pages[idx] = page;
    }
}

/// Reliability state of one erase block, as the device's own status
/// reporting exposes it. Health is physical state: it survives power
/// cycles (real firmware derives it from bad-block marks in the spare
/// area) and is independent of any FTL bookkeeping above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockHealth {
    /// No operation on this block has ever failed.
    #[default]
    Good,
    /// At least one program in this block reported status failure since
    /// its last successful erase. The block may still hold valid data; a
    /// successful erase returns it to [`BlockHealth::Good`].
    Suspect,
    /// An erase reported status failure. The block is permanently bad:
    /// every future erase fails with [`FlashError::EraseFailed`] and the
    /// FTL must never allocate from it again.
    Retired,
}

/// Outcome of probing a page during a recovery scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageProbe {
    /// Never programmed since the last erase.
    Erased,
    /// Programmed; OOB metadata attached.
    Programmed(Oob),
    /// Interrupted program; must be treated as invalid.
    Torn,
}

/// Completion schedule of one operation on the array.
#[derive(Debug, Clone, Copy)]
struct Sched {
    /// Absolute instant the operation finishes.
    done: Nanos,
    /// Media service time (cell + bus occupancy, no command overhead).
    service: Nanos,
    /// Time spent waiting for the channel/unit to free up.
    wait: Nanos,
    /// Channel the operation ran on.
    channel: usize,
}

/// The simulated NAND array.
///
/// All operations advance the shared clock by their modelled cost and update
/// [`FlashStats`] counters. A `FlashChip` survives power loss: the owning
/// device is dropped and a new one is built around the same chip via the
/// FTL's recovery path.
#[derive(Debug, Clone)]
pub struct FlashChip {
    config: FlashConfig,
    blocks: Vec<Block>,
    seq: u64,
    clock: SimClock,
    stats: FlashStats,
    /// Instant each channel's bus becomes free.
    chan_busy: Vec<Nanos>,
    /// Instant each (channel, way) unit's cell array becomes free.
    unit_busy: Vec<Nanos>,
    /// Completion instants of queued operations not yet waited on.
    outstanding: Vec<Nanos>,
    /// Remaining program/erase operations before a simulated power loss.
    fuse: Option<u64>,
    /// Set once the fuse fires; all operations fail until `rearm` is called
    /// by the recovery path.
    dead: bool,
    /// Per-block reliability state (physical; survives power cycles).
    health: Vec<BlockHealth>,
    /// Installed per-operation fault schedule, if any. Survives power
    /// cycles: the fault environment is a property of the silicon, not of
    /// the boot.
    fault: Option<FaultPlan>,
    /// ECC outcome of the most recent full-page read, for FTL scrubber
    /// feedback (real controllers expose this via a read-status register).
    last_ecc: EccEvent,
    /// Telemetry sink; disabled by default. Host-side measurement, so it
    /// survives power cycles like [`FlashStats`] does.
    recorder: Telemetry,
}

impl FlashChip {
    /// Creates a fully erased array with the given configuration, charging
    /// time to `clock`.
    pub fn new(config: FlashConfig, clock: SimClock) -> Self {
        let blocks = (0..config.geometry.blocks)
            .map(|_| Block::new(config.geometry.pages_per_block))
            .collect();
        FlashChip {
            config,
            blocks,
            seq: 1,
            clock,
            stats: FlashStats::default(),
            chan_busy: vec![0; config.geometry.channels.max(1) as usize],
            unit_busy: vec![0; config.geometry.units()],
            outstanding: Vec::new(),
            fuse: None,
            dead: false,
            health: vec![BlockHealth::Good; config.geometry.blocks],
            fault: None,
            last_ecc: EccEvent::Clean,
            recorder: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle; all chip-level latencies are recorded
    /// into it from then on. Layers above fetch it via
    /// [`FlashChip::recorder`] so one handle serves the whole stack.
    pub fn set_recorder(&mut self, recorder: Telemetry) {
        self.recorder = recorder;
    }

    /// The installed telemetry handle (disabled unless set).
    pub fn recorder(&self) -> &Telemetry {
        &self.recorder
    }

    /// Device configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.config
    }

    /// Shared clock handle.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Cumulative operation counters.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Resets operation counters (the clock and channel state are
    /// unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = FlashStats::default();
    }

    /// Next value the global program sequence counter will take.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Number of queued operations that have not yet completed as of the
    /// current simulated instant.
    pub fn outstanding_ops(&self) -> usize {
        let now = self.clock.now();
        self.outstanding.iter().filter(|&&c| c > now).count()
    }

    /// Barrier: waits for every outstanding queued operation and returns
    /// the instant the array went idle.
    pub fn drain(&mut self) -> Nanos {
        let end = self
            .outstanding
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.clock.now());
        self.clock.advance_to(end);
        self.outstanding.clear();
        end
    }

    /// Waits until the operation that reported `completion` has finished
    /// (partial barrier; other queued operations may still be in flight).
    pub fn wait_for(&mut self, completion: Nanos) {
        self.clock.advance_to(completion);
        let now = self.clock.now();
        self.outstanding.retain(|&c| c > now);
    }

    fn check_alive(&self) -> Result<()> {
        if self.dead {
            Err(FlashError::PowerLost)
        } else {
            Ok(())
        }
    }

    fn check_range(&self, ppa: Ppa) -> Result<()> {
        if (ppa.block as usize) < self.config.geometry.blocks
            && (ppa.page as usize) < self.config.geometry.pages_per_block
        {
            Ok(())
        } else {
            Err(FlashError::OutOfRange(ppa))
        }
    }

    /// Decrements the power fuse; returns true if it fires on this op.
    fn fuse_fires(&mut self) -> bool {
        match &mut self.fuse {
            Some(0) | None => false,
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.dead = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Arms a power-loss fuse: after `ops` more program/erase operations the
    /// device dies, tearing the in-flight program. Used by failure-injection
    /// tests. `ops` must be at least 1.
    pub fn arm_power_fuse(&mut self, ops: u64) {
        assert!(ops >= 1, "fuse must allow at least one operation");
        self.fuse = Some(ops);
    }

    /// Disarms any pending power fuse.
    pub fn disarm_power_fuse(&mut self) {
        self.fuse = None;
    }

    /// Brings the chip back online after a simulated power cycle, with an
    /// explicit reset contract so fault-injection tests cannot leak state
    /// between injections.
    ///
    /// **Reset** (state that dies with power): the dead flag, any armed
    /// fuse, the queue of outstanding completions, and the channel/unit
    /// busy-until timestamps — a queued operation that never completed
    /// must not make the first command of the next boot wait on a phantom
    /// busy bus.
    ///
    /// **Retained** (physical state): flash contents including torn
    /// pages, the global program sequence counter (recovery re-derives it
    /// from the media), per-block erase counts and [`BlockHealth`]
    /// (bad-block marks live in the spare area), any installed
    /// [`FaultPlan`] (the fault environment is a property of the
    /// silicon), and cumulative [`FlashStats`] (host-side measurement;
    /// use [`FlashChip::reset_stats`] to zero them explicitly).
    pub fn power_cycle(&mut self) {
        self.dead = false;
        self.fuse = None;
        self.outstanding.clear();
        for t in &mut self.chan_busy {
            *t = 0;
        }
        for t in &mut self.unit_busy {
            *t = 0;
        }
    }

    /// True if the power fuse has fired and the chip is offline.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Installs (replacing any previous) a per-operation fault schedule.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Removes and returns the installed fault plan, if any.
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Reliability state of `block`.
    pub fn block_health(&self, block: u32) -> BlockHealth {
        self.health[block as usize]
    }

    /// Blocks the device has permanently retired, in ascending order.
    pub fn retired_blocks(&self) -> Vec<u32> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| **h == BlockHealth::Retired)
            .map(|(b, _)| b as u32)
            .collect()
    }

    /// Records the queue depth an arriving command observes.
    fn note_arrival(&mut self) {
        let now = self.clock.now();
        self.outstanding.retain(|&c| c > now);
        let depth = self.outstanding.len().min(QUEUE_DEPTH_BUCKETS - 1);
        self.stats.queue_depth_hist[depth] += 1;
        self.stats.queued_ops += 1;
    }

    fn note_channel_busy(&mut self, sched: &Sched) {
        self.stats.busy_channel_ns[sched.channel.min(MAX_CHANNELS - 1)] += sched.service;
        self.stats.queue_wait_ns += sched.wait;
        // Only contended commands feed the wait histogram; an uncontended
        // zero would otherwise drown the distribution.
        if sched.wait > 0 {
            self.recorder.record(OpClass::ChanQueueWait, sched.wait);
        }
    }

    /// Schedules a read-shaped operation: cell array first, then the bus.
    fn sched_read(&mut self, block: u32, cell_ns: Nanos, bytes: u64, not_before: Nanos) -> Sched {
        let t = self.config.timings;
        let g = self.config.geometry;
        let (ch, unit) = (g.channel_of(block), g.unit_of(block));
        let submit = self.clock.now().max(not_before);
        let xfer = bytes * t.channel_ns_per_byte;
        let cell_start = submit.max(self.unit_busy[unit]);
        let cell_end = cell_start + cell_ns;
        let xfer_start = cell_end.max(self.chan_busy[ch]);
        let done = xfer_start + xfer;
        self.unit_busy[unit] = done;
        self.chan_busy[ch] = done;
        Sched {
            done,
            service: cell_ns + xfer,
            wait: (cell_start - submit) + (xfer_start - cell_end),
            channel: ch,
        }
    }

    /// Schedules a program: bus transfer first, then the cell array.
    fn sched_program(&mut self, block: u32, not_before: Nanos) -> Sched {
        let t = self.config.timings;
        let g = self.config.geometry;
        let (ch, unit) = (g.channel_of(block), g.unit_of(block));
        let submit = self.clock.now().max(not_before);
        let xfer = g.page_size as u64 * t.channel_ns_per_byte;
        let xfer_start = submit.max(self.chan_busy[ch]);
        let xfer_end = xfer_start + xfer;
        let cell_start = xfer_end.max(self.unit_busy[unit]);
        let done = cell_start + t.program_ns;
        self.chan_busy[ch] = xfer_end;
        self.unit_busy[unit] = done;
        Sched {
            done,
            service: xfer + t.program_ns,
            wait: (xfer_start - submit) + (cell_start - xfer_end),
            channel: ch,
        }
    }

    /// Schedules an erase: cell array only, no bus traffic.
    fn sched_erase(&mut self, block: u32, not_before: Nanos) -> Sched {
        let t = self.config.timings;
        let g = self.config.geometry;
        let (ch, unit) = (g.channel_of(block), g.unit_of(block));
        let submit = self.clock.now().max(not_before);
        let start = submit.max(self.unit_busy[unit]);
        let done = start + t.erase_ns;
        self.unit_busy[unit] = done;
        Sched {
            done,
            service: t.erase_ns,
            wait: start - submit,
            channel: ch,
        }
    }

    fn do_read(
        &mut self,
        ppa: Ppa,
        buf: &mut [u8],
        not_before: Nanos,
        sync: bool,
    ) -> Result<(Oob, Nanos)> {
        self.check_alive()?;
        self.check_range(ppa)?;
        let page_size = self.config.geometry.page_size;
        if buf.len() != page_size {
            return Err(FlashError::BadBufferSize {
                expected: page_size,
                got: buf.len(),
            });
        }
        let read_ns = self.config.timings.read_ns;
        let t_entry = self.clock.now();
        // Firmware dispatch is serial; media + bus time overlaps per lane.
        self.clock.advance(self.config.timings.cmd_overhead_ns);
        if !sync {
            self.note_arrival();
        }
        let sched = self.sched_read(ppa.block, read_ns, page_size as u64, not_before);
        self.stats.reads += 1;
        self.stats.busy_read_ns += self.config.timings.cmd_overhead_ns + sched.service;
        self.note_channel_busy(&sched);
        if sync {
            self.clock.advance_to(sched.done);
        } else {
            self.outstanding.push(sched.done);
        }
        let (lpn, tid, programmed_at) =
            match self.blocks[ppa.block as usize].page(ppa.page as usize) {
                Page::Erased => return Err(FlashError::ReadErased(ppa)),
                Page::Torn => return Err(FlashError::TornPage(ppa)),
                Page::Programmed(p) => (p.oob.lpn, p.oob.tid, p.programmed_at),
            };
        // Every full-page read disturbs the block (physical state, counted
        // whether or not a fault plan is installed).
        self.blocks[ppa.block as usize].reads += 1;
        self.recorder
            .record_span(OpClass::ChipRead, tid, lpn, t_entry, sched.done);
        // Fault model: bit flips surface on valid programmed pages. Two
        // sources stack: the plan's triggers/background rates, and the
        // deterministic aging curve (read disturb + retention + wear). The
        // stall of the ECC failure path is charged to the serial firmware
        // dispatch clock (the controller blocks on correction/retry).
        self.last_ecc = EccEvent::Clean;
        if let Some(plan) = &mut self.fault {
            let fault_bits = match plan.decide(FaultOp::Read, ppa, Some(lpn)) {
                Some(FaultKind::ReadFlips(bits)) => bits,
                // Program/erase faults never fire on the read path.
                Some(FaultKind::ProgramFail | FaultKind::EraseFail) | None => 0,
            };
            let aging_bits = match plan.aging_model() {
                Some(model) if !plan.is_exempt(ppa.block) => {
                    let b = &self.blocks[ppa.block as usize];
                    let age = self.clock.now().saturating_sub(programmed_at);
                    model.flips(b.reads, age, b.erase_count)
                }
                _ => 0,
            };
            let bits = fault_bits.saturating_add(aging_bits);
            if bits > 0 {
                let ecc = plan.ecc_config();
                self.stats.aging_flips += u64::from(aging_bits);
                if bits <= ecc.correctable_bits {
                    self.last_ecc = EccEvent::Corrected(bits);
                    self.blocks[ppa.block as usize].corrected_flips += u64::from(bits);
                    self.stats.corrected_reads += 1;
                    self.stats.fault_stall_ns += ecc.correction_ns;
                    self.recorder.record(OpClass::EccCorrect, ecc.correction_ns);
                    self.clock.advance(ecc.correction_ns);
                } else {
                    self.last_ecc = EccEvent::Uncorrectable(bits);
                    self.stats.uncorrectable_reads += 1;
                    if aging_bits > 0 && fault_bits <= ecc.correctable_bits {
                        // Aging pushed an otherwise-decodable page over the
                        // budget: this is the loss a scrubber prevents.
                        self.stats.aging_uncorrectable += 1;
                    }
                    self.stats.fault_stall_ns += ecc.uncorrectable_ns;
                    self.recorder
                        .record(OpClass::EccCorrect, ecc.uncorrectable_ns);
                    self.clock.advance(ecc.uncorrectable_ns);
                    return Err(FlashError::Uncorrectable(ppa));
                }
            }
        }
        match self.blocks[ppa.block as usize].page(ppa.page as usize) {
            Page::Programmed(p) => {
                p.data.copy_to(buf);
                Ok((p.oob, sched.done))
            }
            // Checked Programmed above; nothing mutates page state between.
            _ => Err(FlashError::ReadErased(ppa)),
        }
    }

    /// Reads a full page into `buf`, returning its OOB metadata. Blocks
    /// (advances the clock) until the data has transferred.
    pub fn read(&mut self, ppa: Ppa, buf: &mut [u8]) -> Result<Oob> {
        self.do_read(ppa, buf, 0, true).map(|(oob, _)| oob)
    }

    /// Queued read: data is delivered to `buf` immediately in simulation,
    /// but the clock only advances by the command overhead. Returns the OOB
    /// and the absolute instant the transfer completes; callers that need
    /// the data "on the wire" must [`FlashChip::wait_for`] that instant (or
    /// pass it as `not_before` of a dependent operation). `not_before`
    /// defers the start, expressing data dependencies between queued ops.
    pub fn read_queued(
        &mut self,
        ppa: Ppa,
        buf: &mut [u8],
        not_before: Nanos,
    ) -> Result<(Oob, Nanos)> {
        self.do_read(ppa, buf, not_before, false)
    }

    /// Reads only the OOB metadata of a page (cheap; used by recovery scans
    /// and GC validity checks). Exempt from read-fault injection: the
    /// spare area carries its own stronger ECC in the modelled chip, so
    /// recovery scans see page *state* reliably even when page *data*
    /// does not decode.
    pub fn probe(&mut self, ppa: Ppa) -> Result<PageProbe> {
        self.check_alive()?;
        self.check_range(ppa)?;
        let t = self.config.timings;
        let t_entry = self.clock.now();
        // OOB-only read: a quarter of the command overhead plus a short
        // cell access and transfer of the spare area.
        self.clock.advance(t.cmd_overhead_ns / 4);
        let sched = self.sched_read(
            ppa.block,
            t.read_ns / 8,
            self.config.geometry.oob_bytes as u64,
            0,
        );
        self.stats.oob_reads += 1;
        self.stats.busy_read_ns += t.cmd_overhead_ns / 4 + sched.service;
        self.note_channel_busy(&sched);
        self.clock.advance_to(sched.done);
        self.recorder
            .record_span(OpClass::ChipOobRead, 0, 0, t_entry, sched.done);
        Ok(
            match self.blocks[ppa.block as usize].page(ppa.page as usize) {
                Page::Erased => PageProbe::Erased,
                Page::Torn => PageProbe::Torn,
                Page::Programmed(p) => PageProbe::Programmed(p.oob),
            },
        )
    }

    fn do_program(
        &mut self,
        ppa: Ppa,
        data: &[u8],
        mut oob: Oob,
        not_before: Nanos,
        sync: bool,
    ) -> Result<(Oob, Nanos)> {
        self.check_alive()?;
        self.check_range(ppa)?;
        let page_size = self.config.geometry.page_size;
        if data.len() != page_size {
            return Err(FlashError::BadBufferSize {
                expected: page_size,
                got: data.len(),
            });
        }
        let block = &self.blocks[ppa.block as usize];
        match block.page(ppa.page as usize) {
            Page::Erased => {}
            _ => return Err(FlashError::ProgramOverwrite(ppa)),
        }
        if ppa.page != block.write_point {
            return Err(FlashError::ProgramOutOfOrder {
                ppa,
                expected_page: block.write_point,
            });
        }
        let t_entry = self.clock.now();
        self.clock.advance(self.config.timings.cmd_overhead_ns);
        if !sync {
            self.note_arrival();
        }
        let sched = self.sched_program(ppa.block, not_before);
        self.stats.programs += 1;
        self.stats.busy_program_ns += self.config.timings.cmd_overhead_ns + sched.service;
        self.note_channel_busy(&sched);

        // Page state mutates at issue time, so the power fuse tears the
        // same page regardless of whether the op was queued or waited on.
        if self.fuse.is_some() {
            let fires = match &mut self.fuse {
                Some(n) => {
                    *n -= 1;
                    *n == 0
                }
                None => false,
            };
            if fires {
                self.dead = true;
                let block = &mut self.blocks[ppa.block as usize];
                block.set_page(ppa.page as usize, Page::Torn);
                block.write_point = ppa.page + 1;
                self.stats.torn_pages += 1;
                return Err(FlashError::PowerLost);
            }
        }
        // Fault model: a program-status failure leaves the page unreadable
        // (same observable state as a torn page: garbage that fails the
        // checksum), advances the write point past it, and flags the block
        // suspect. Detected by the status poll after the full tPROG, so
        // the scheduled media time stands; the extra firmware handling is
        // charged on top.
        if let Some(plan) = &mut self.fault {
            if let Some(FaultKind::ProgramFail) = plan.decide(FaultOp::Program, ppa, Some(oob.lpn))
            {
                let ecc = plan.ecc_config();
                self.stats.program_fails += 1;
                self.stats.torn_pages += 1;
                self.stats.fault_stall_ns += ecc.program_fail_ns;
                let block = &mut self.blocks[ppa.block as usize];
                block.set_page(ppa.page as usize, Page::Torn);
                block.write_point = ppa.page + 1;
                if self.health[ppa.block as usize] == BlockHealth::Good {
                    self.health[ppa.block as usize] = BlockHealth::Suspect;
                }
                if sync {
                    self.clock.advance_to(sched.done);
                } else {
                    self.outstanding.push(sched.done);
                }
                self.clock.advance(ecc.program_fail_ns);
                return Err(FlashError::ProgramFailed(ppa));
            }
        }
        oob.seq = self.seq;
        self.seq += 1;
        let block = &mut self.blocks[ppa.block as usize];
        block.set_page(
            ppa.page as usize,
            Page::Programmed(Box::new(ProgrammedPage {
                data: PageData::capture(data),
                oob,
                programmed_at: sched.done,
            })),
        );
        block.write_point = ppa.page + 1;
        if block.first_program_at.is_none() {
            block.first_program_at = Some(sched.done);
        }
        if sync {
            self.clock.advance_to(sched.done);
        } else {
            self.outstanding.push(sched.done);
        }
        self.recorder
            .record_span(OpClass::ChipProgram, oob.tid, oob.lpn, t_entry, sched.done);
        Ok((oob, sched.done))
    }

    /// Programs a page. Fails if the page is not erased or is not the next
    /// in-order page of its block. On success the OOB is stamped with the
    /// next global sequence number, which is returned inside the final OOB.
    /// Blocks (advances the clock) until the cell program finishes.
    pub fn program(&mut self, ppa: Ppa, data: &[u8], oob: Oob) -> Result<Oob> {
        self.do_program(ppa, data, oob, 0, true).map(|(oob, _)| oob)
    }

    /// Queued program: validates and stamps the page immediately, advances
    /// the clock only by the command overhead, and returns the absolute
    /// completion instant alongside the stamped OOB. Programs to blocks on
    /// distinct channels overlap; [`FlashChip::drain`] (or
    /// [`FlashChip::wait_for`]) is the durability barrier. `not_before`
    /// defers the start (e.g. until a source read completes).
    pub fn program_queued(
        &mut self,
        ppa: Ppa,
        data: &[u8],
        oob: Oob,
        not_before: Nanos,
    ) -> Result<(Oob, Nanos)> {
        self.do_program(ppa, data, oob, not_before, false)
    }

    fn do_erase(&mut self, block: u32, not_before: Nanos, sync: bool) -> Result<Nanos> {
        self.check_alive()?;
        self.check_range(Ppa::new(block, 0))?;
        if self.fuse_fires() {
            // Erase is modelled as atomic: power loss before it takes effect.
            return Err(FlashError::PowerLost);
        }
        let t_entry = self.clock.now();
        self.clock.advance(self.config.timings.cmd_overhead_ns);
        if !sync {
            self.note_arrival();
        }
        let sched = self.sched_erase(block, not_before);
        self.stats.erases += 1;
        self.stats.busy_erase_ns += self.config.timings.cmd_overhead_ns + sched.service;
        self.note_channel_busy(&sched);
        // Fault model: a retired block fails every erase; otherwise the
        // plan may inject a first failure, which retires the block. Either
        // way the cells end up wiped (write point reset, erase counted) —
        // the failure is the device refusing to certify the block, not the
        // charge pump doing nothing — so a buggy FTL *can* still program a
        // retired block, which is exactly what the verify auditor catches.
        let fails = self.health[block as usize] == BlockHealth::Retired
            || match &mut self.fault {
                Some(plan) => matches!(
                    plan.decide(FaultOp::Erase, Ppa::new(block, 0), None),
                    Some(FaultKind::EraseFail)
                ),
                None => false,
            };
        let b = &mut self.blocks[block as usize];
        b.pages.clear();
        b.pages.shrink_to_fit();
        b.write_point = 0;
        b.erase_count += 1;
        // An erase rewrites every cell: disturb and retention damage (and
        // the ECC feedback that tracked it) reset with the charge.
        b.reads = 0;
        b.corrected_flips = 0;
        b.first_program_at = None;
        if sync {
            self.clock.advance_to(sched.done);
        } else {
            self.outstanding.push(sched.done);
        }
        if fails {
            let stall = self
                .fault
                .as_ref()
                .map_or_else(crate::fault::EccConfig::default, FaultPlan::ecc_config)
                .erase_fail_ns;
            self.stats.erase_fails += 1;
            self.stats.fault_stall_ns += stall;
            self.clock.advance(stall);
            self.health[block as usize] = BlockHealth::Retired;
            return Err(FlashError::EraseFailed(block));
        }
        if self.health[block as usize] == BlockHealth::Suspect {
            // A clean erase clears the suspicion left by a program fail.
            self.health[block as usize] = BlockHealth::Good;
        }
        self.recorder
            .record_span(OpClass::ChipErase, 0, u64::from(block), t_entry, sched.done);
        Ok(sched.done)
    }

    /// Erases a whole block, returning all its pages to the erased state.
    /// Blocks (advances the clock) until the erase finishes.
    pub fn erase(&mut self, block: u32) -> Result<()> {
        self.do_erase(block, 0, true).map(|_| ())
    }

    /// Queued erase: takes effect immediately in simulation, advances the
    /// clock only by the command overhead, and returns the completion
    /// instant. Overlaps with work on other units; GC uses this to erase
    /// victims while host IO proceeds on other channels.
    pub fn erase_queued(&mut self, block: u32, not_before: Nanos) -> Result<Nanos> {
        self.do_erase(block, not_before, false)
    }

    /// Reads a page's state and OOB metadata without charging simulated
    /// time or touching statistics. This is **not** a host command — it is
    /// the introspection hook the `xftl-verify` oracle uses to audit the
    /// array between operations without perturbing the timing model.
    pub fn probe_silent(&self, ppa: Ppa) -> PageProbe {
        match self.blocks[ppa.block as usize].page(ppa.page as usize) {
            Page::Erased => PageProbe::Erased,
            Page::Torn => PageProbe::Torn,
            Page::Programmed(p) => PageProbe::Programmed(p.oob),
        }
    }

    /// Reads a programmed page's contents and OOB without charging
    /// simulated time or touching statistics, bypassing the fault model.
    /// Like [`FlashChip::probe_silent`] this is **not** a host command: it
    /// is the introspection hook auditors use to decode on-flash structures
    /// (e.g. translation pages whose cache frame has been evicted) without
    /// perturbing the timing model. Returns `None` unless the page is
    /// programmed and `buf` matches the page size.
    pub fn read_silent(&self, ppa: Ppa, buf: &mut [u8]) -> Option<Oob> {
        if buf.len() != self.config.geometry.page_size {
            return None;
        }
        match self.blocks.get(ppa.block as usize)?.page(ppa.page as usize) {
            Page::Programmed(p) => {
                p.data.copy_to(buf);
                Some(p.oob)
            }
            _ => None,
        }
    }

    /// Next in-order programmable page index of `block`, or `None` if full.
    pub fn write_point(&self, block: u32) -> Option<u32> {
        let b = &self.blocks[block as usize];
        if (b.write_point as usize) < self.config.geometry.pages_per_block {
            Some(b.write_point)
        } else {
            None
        }
    }

    /// Lifetime erase count of `block` (for wear statistics).
    pub fn erase_count(&self, block: u32) -> u64 {
        self.blocks[block as usize].erase_count
    }

    /// Full-page reads of `block` since its last erase (read-disturb
    /// exposure). Free introspection for the FTL's scrub policy — real
    /// firmware keeps this counter in controller SRAM.
    pub fn block_read_count(&self, block: u32) -> u64 {
        self.blocks[block as usize].reads
    }

    /// Bits ECC has corrected in `block` since its last erase — the
    /// feedback signal a scrubber ranks relocation candidates by.
    pub fn block_corrected_flips(&self, block: u32) -> u64 {
        self.blocks[block as usize].corrected_flips
    }

    /// Completion instant of the first program after `block`'s last
    /// erase, or `None` if the block is empty. Retention age of the
    /// block's oldest data is `now - first_program_at`.
    pub fn block_first_program_at(&self, block: u32) -> Option<Nanos> {
        self.blocks[block as usize].first_program_at
    }

    /// ECC outcome of the most recent full-page read.
    pub fn last_ecc_event(&self) -> EccEvent {
        self.last_ecc
    }

    /// True if the page has never been programmed since its last erase.
    pub fn is_erased(&self, ppa: Ppa) -> bool {
        matches!(
            self.blocks[ppa.block as usize].page(ppa.page as usize),
            Page::Erased
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlashConfigBuilder;

    fn chip() -> FlashChip {
        FlashChip::new(FlashConfig::tiny(4), SimClock::new())
    }

    fn page(chip: &FlashChip, byte: u8) -> Vec<u8> {
        vec![byte; chip.config().geometry.page_size]
    }

    #[test]
    fn program_then_read_roundtrip() {
        let mut c = chip();
        let data = page(&c, 0xAB);
        let oob = c.program(Ppa::new(0, 0), &data, Oob::data(42)).unwrap();
        assert_eq!(oob.lpn, 42);
        assert_eq!(oob.seq, 1);
        let mut buf = page(&c, 0);
        let read_oob = c.read(Ppa::new(0, 0), &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(read_oob, oob);
    }

    #[test]
    fn read_of_erased_page_fails() {
        let mut c = chip();
        let mut buf = page(&c, 0);
        assert_eq!(
            c.read(Ppa::new(1, 0), &mut buf),
            Err(FlashError::ReadErased(Ppa::new(1, 0)))
        );
    }

    #[test]
    fn overwrite_rejected() {
        let mut c = chip();
        let data = page(&c, 1);
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        c.program(Ppa::new(0, 1), &data, Oob::data(2)).unwrap();
        assert_eq!(
            c.program(Ppa::new(0, 0), &data, Oob::data(3)),
            Err(FlashError::ProgramOverwrite(Ppa::new(0, 0)))
        );
    }

    #[test]
    fn out_of_order_program_rejected() {
        let mut c = chip();
        let data = page(&c, 1);
        assert_eq!(
            c.program(Ppa::new(0, 3), &data, Oob::data(1)),
            Err(FlashError::ProgramOutOfOrder {
                ppa: Ppa::new(0, 3),
                expected_page: 0
            })
        );
    }

    #[test]
    fn erase_resets_block() {
        let mut c = chip();
        let data = page(&c, 9);
        for i in 0..8 {
            c.program(Ppa::new(2, i), &data, Oob::data(i as u64))
                .unwrap();
        }
        assert_eq!(c.write_point(2), None);
        c.erase(2).unwrap();
        assert_eq!(c.write_point(2), Some(0));
        assert_eq!(c.erase_count(2), 1);
        assert!(c.is_erased(Ppa::new(2, 5)));
        // Programmable again from page 0.
        c.program(Ppa::new(2, 0), &data, Oob::data(7)).unwrap();
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let mut c = chip();
        let data = page(&c, 3);
        let a = c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        let b = c.program(Ppa::new(1, 0), &data, Oob::data(2)).unwrap();
        assert!(b.seq > a.seq);
    }

    #[test]
    fn clock_advances_with_operations() {
        let mut c = chip();
        let t0 = c.clock().now();
        let data = page(&c, 3);
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        let t1 = c.clock().now();
        assert!(t1 > t0);
        let mut buf = page(&c, 0);
        c.read(Ppa::new(0, 0), &mut buf).unwrap();
        assert!(c.clock().now() > t1);
    }

    #[test]
    fn program_costs_more_than_read() {
        let mut c = chip();
        let data = page(&c, 3);
        let t0 = c.clock().now();
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        let prog_cost = c.clock().now() - t0;
        let mut buf = page(&c, 0);
        let t1 = c.clock().now();
        c.read(Ppa::new(0, 0), &mut buf).unwrap();
        let read_cost = c.clock().now() - t1;
        assert!(prog_cost > read_cost);
    }

    #[test]
    fn probe_reports_states() {
        let mut c = chip();
        assert_eq!(c.probe(Ppa::new(0, 0)).unwrap(), PageProbe::Erased);
        let data = page(&c, 3);
        let oob = c.program(Ppa::new(0, 0), &data, Oob::data(5)).unwrap();
        assert_eq!(c.probe(Ppa::new(0, 0)).unwrap(), PageProbe::Programmed(oob));
    }

    #[test]
    fn power_fuse_tears_inflight_program() {
        let mut c = chip();
        let data = page(&c, 3);
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        c.arm_power_fuse(1);
        assert_eq!(
            c.program(Ppa::new(0, 1), &data, Oob::data(2)),
            Err(FlashError::PowerLost)
        );
        assert!(c.is_dead());
        // Everything fails until power-cycled.
        let mut buf = page(&c, 0);
        assert_eq!(c.read(Ppa::new(0, 0), &mut buf), Err(FlashError::PowerLost));
        c.power_cycle();
        // Survivor page intact, torn page detectable.
        assert!(c.read(Ppa::new(0, 0), &mut buf).is_ok());
        assert_eq!(c.probe(Ppa::new(0, 1)).unwrap(), PageProbe::Torn);
        assert_eq!(
            c.read(Ppa::new(0, 1), &mut buf),
            Err(FlashError::TornPage(Ppa::new(0, 1)))
        );
        // Write point moved past the torn page: block still usable in order.
        assert_eq!(c.write_point(0), Some(2));
        c.program(Ppa::new(0, 2), &data, Oob::data(3)).unwrap();
    }

    #[test]
    fn fuse_counts_down_across_ops() {
        let mut c = chip();
        let data = page(&c, 3);
        c.arm_power_fuse(3);
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        c.program(Ppa::new(0, 1), &data, Oob::data(2)).unwrap();
        assert_eq!(
            c.program(Ppa::new(0, 2), &data, Oob::data(3)),
            Err(FlashError::PowerLost)
        );
    }

    #[test]
    fn bad_buffer_size_rejected() {
        let mut c = chip();
        assert!(matches!(
            c.program(Ppa::new(0, 0), &[0u8; 3], Oob::data(1)),
            Err(FlashError::BadBufferSize { .. })
        ));
    }

    #[test]
    fn stats_count_operations() {
        let mut c = chip();
        let data = page(&c, 3);
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        let mut buf = page(&c, 0);
        c.read(Ppa::new(0, 0), &mut buf).unwrap();
        c.erase(1).unwrap();
        c.probe(Ppa::new(0, 0)).unwrap();
        let s = c.stats();
        assert_eq!(s.programs, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.erases, 1);
        assert_eq!(s.oob_reads, 1);
        assert!(s.busy_program_ns > 0 && s.busy_read_ns > 0 && s.busy_erase_ns > 0);
        // Single-channel chip: all media time lands on channel 0.
        assert!(s.busy_channel_ns[0] > 0);
        assert_eq!(s.busy_channel_ns[1], 0);
    }

    #[test]
    fn fill_and_mixed_contents_roundtrip() {
        // Constant-fill pages compress internally; pages with mixed bytes
        // do not. Both must read back exactly.
        let mut c = chip();
        let fill = page(&c, 0x5A);
        let mut mixed = page(&c, 0);
        for (i, b) in mixed.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        c.program(Ppa::new(0, 0), &fill, Oob::data(1)).unwrap();
        c.program(Ppa::new(0, 1), &mixed, Oob::data(2)).unwrap();
        let mut buf = page(&c, 0);
        c.read(Ppa::new(0, 0), &mut buf).unwrap();
        assert_eq!(buf, fill);
        c.read(Ppa::new(0, 1), &mut buf).unwrap();
        assert_eq!(buf, mixed);
    }

    #[test]
    fn read_silent_sees_contents_without_time_or_stats() {
        let mut c = chip();
        let data = page(&c, 0x77);
        let oob = c.program(Ppa::new(1, 0), &data, Oob::data(9)).unwrap();
        let t = c.clock().now();
        let stats = *c.stats();
        let mut buf = page(&c, 0);
        assert_eq!(c.read_silent(Ppa::new(1, 0), &mut buf), Some(oob));
        assert_eq!(buf, data);
        // Erased and torn pages yield None instead of an error.
        assert_eq!(c.read_silent(Ppa::new(1, 1), &mut buf), None);
        assert_eq!(c.clock().now(), t, "silent read must not charge time");
        assert_eq!(c.stats(), &stats, "silent read must not touch stats");
    }

    #[test]
    fn linear_ppa_roundtrip() {
        let ppa = Ppa::new(3, 5);
        let lin = ppa.linear(8);
        assert_eq!(lin, 29);
        assert_eq!(Ppa::from_linear(lin, 8), ppa);
    }

    // --- channel model & queue ------------------------------------------------

    fn chip_with(channels: u32, ways: u32, blocks: usize) -> FlashChip {
        let cfg = FlashConfigBuilder::tiny()
            .blocks(blocks)
            .channels(channels)
            .ways(ways)
            .build();
        FlashChip::new(cfg, SimClock::new())
    }

    /// Serial cost of `n` programs on a dedicated single-channel chip.
    fn serial_program_cost(n: u64) -> u64 {
        let mut c = chip_with(1, 1, 8);
        let data = page(&c, 7);
        let t0 = c.clock().now();
        for i in 0..n {
            c.program(Ppa::new(i as u32, 0), &data, Oob::data(i))
                .unwrap();
        }
        c.clock().now() - t0
    }

    #[test]
    fn queued_programs_on_distinct_channels_overlap() {
        let mut c = chip_with(2, 1, 8);
        let data = page(&c, 7);
        let t0 = c.clock().now();
        // Blocks 0 and 1 stripe onto channels 0 and 1.
        c.program_queued(Ppa::new(0, 0), &data, Oob::data(0), 0)
            .unwrap();
        c.program_queued(Ppa::new(1, 0), &data, Oob::data(1), 0)
            .unwrap();
        let elapsed = c.drain() - t0;
        let serial = serial_program_cost(2);
        assert!(
            elapsed < serial,
            "two-channel batch ({elapsed} ns) should beat serial ({serial} ns)"
        );
        // Both channels saw media work.
        assert!(c.stats().busy_channel_ns[0] > 0);
        assert!(c.stats().busy_channel_ns[1] > 0);
    }

    #[test]
    fn queued_programs_on_same_unit_serialize() {
        let mut c = chip_with(2, 1, 8);
        let data = page(&c, 7);
        let t0 = c.clock().now();
        // Blocks 0 and 2 both live on channel 0, way 0.
        c.program_queued(Ppa::new(0, 0), &data, Oob::data(0), 0)
            .unwrap();
        c.program_queued(Ppa::new(2, 0), &data, Oob::data(1), 0)
            .unwrap();
        let same_unit = c.drain() - t0;

        let mut c2 = chip_with(2, 1, 8);
        let t0 = c2.clock().now();
        c2.program_queued(Ppa::new(0, 0), &data, Oob::data(0), 0)
            .unwrap();
        c2.program_queued(Ppa::new(1, 0), &data, Oob::data(1), 0)
            .unwrap();
        let distinct = c2.drain() - t0;

        assert!(
            same_unit > distinct,
            "same-unit batch ({same_unit} ns) must serialize vs distinct channels ({distinct} ns)"
        );
        // The second same-unit program waited for the first's cell time.
        assert!(c.stats().queue_wait_ns > 0);
    }

    #[test]
    fn ways_overlap_cell_work_on_shared_bus() {
        // 1 channel × 2 ways: blocks 0 and 1 share the bus but have
        // independent cell arrays, so two programs beat strict serial.
        let mut c = chip_with(1, 2, 8);
        let data = page(&c, 7);
        let t0 = c.clock().now();
        c.program_queued(Ppa::new(0, 0), &data, Oob::data(0), 0)
            .unwrap();
        c.program_queued(Ppa::new(1, 0), &data, Oob::data(1), 0)
            .unwrap();
        let elapsed = c.drain() - t0;
        assert!(elapsed < serial_program_cost(2));
    }

    #[test]
    fn queued_op_defers_clock_until_drain() {
        let mut c = chip_with(1, 1, 4);
        let data = page(&c, 1);
        let t0 = c.clock().now();
        let (_, done) = c
            .program_queued(Ppa::new(0, 0), &data, Oob::data(0), 0)
            .unwrap();
        // Only the firmware overhead has been charged so far.
        assert_eq!(c.clock().now() - t0, c.config().timings.cmd_overhead_ns);
        assert!(done > c.clock().now());
        assert_eq!(c.outstanding_ops(), 1);
        // Data is already visible in simulation (issue-time mutation)...
        let mut buf = page(&c, 0);
        // ...but a dependent sync read schedules after the program's cell
        // time, so the clock lands past the program completion.
        c.read(Ppa::new(0, 0), &mut buf).unwrap();
        assert!(c.clock().now() > done);
        assert_eq!(c.outstanding_ops(), 0);
        c.drain();
    }

    #[test]
    fn not_before_defers_start() {
        let mut c = chip_with(2, 1, 8);
        let data = page(&c, 1);
        let gate = c.clock().now() + 50 * crate::clock::MILLI;
        let (_, done) = c
            .program_queued(Ppa::new(0, 0), &data, Oob::data(0), gate)
            .unwrap();
        assert!(done >= gate + c.config().timings.program_ns);
    }

    #[test]
    fn queue_depth_histogram_counts_arrivals() {
        let mut c = chip_with(4, 1, 8);
        let data = page(&c, 1);
        for b in 0..4u32 {
            c.program_queued(Ppa::new(b, 0), &data, Oob::data(b as u64), 0)
                .unwrap();
        }
        c.drain();
        let s = *c.stats();
        assert_eq!(s.queued_ops, 4);
        assert_eq!(s.queue_depth_hist.iter().sum::<u64>(), 4);
        // Later arrivals saw earlier commands still in flight.
        assert!(s.queue_depth_hist[1..].iter().sum::<u64>() > 0);
        assert!(s.mean_queue_depth() > 0.0);
        // After the drain the queue is empty again.
        assert_eq!(c.outstanding_ops(), 0);
    }

    #[test]
    fn wait_for_is_a_partial_barrier() {
        let mut c = chip_with(2, 1, 8);
        let data = page(&c, 1);
        let (_, done_a) = c
            .program_queued(Ppa::new(0, 0), &data, Oob::data(0), 0)
            .unwrap();
        let (_, done_b) = c
            .program_queued(Ppa::new(1, 0), &data, Oob::data(1), 0)
            .unwrap();
        assert!(done_a > 0 && done_b > 0); // both scheduled
        c.wait_for(done_a.min(done_b));
        assert_eq!(c.clock().now(), done_a.min(done_b));
        assert_eq!(c.outstanding_ops(), 1);
        c.drain();
        assert_eq!(c.clock().now(), done_a.max(done_b));
    }

    #[test]
    fn erase_overlaps_with_program_on_other_channel() {
        let mut c = chip_with(2, 1, 8);
        let data = page(&c, 1);
        c.program(Ppa::new(0, 0), &data, Oob::data(0)).unwrap();
        let t0 = c.clock().now();
        // Erase block 0 (channel 0) while programming block 1 (channel 1).
        c.erase_queued(0, 0).unwrap();
        c.program_queued(Ppa::new(1, 0), &data, Oob::data(1), 0)
            .unwrap();
        let elapsed = c.drain() - t0;
        let t = c.config().timings;
        let serial = 2 * t.cmd_overhead_ns
            + t.erase_ns
            + t.program_ns
            + c.config().geometry.page_size as u64 * t.channel_ns_per_byte;
        assert!(elapsed < serial);
    }

    // --- fault injection ------------------------------------------------------

    use crate::fault::{FaultKind, FaultPlan, FaultTrigger};

    #[test]
    fn program_fail_tears_page_and_marks_block_suspect() {
        let mut c = chip();
        c.set_fault_plan(
            FaultPlan::new(1).trigger(FaultTrigger::new(FaultKind::ProgramFail).on_block(2)),
        );
        let data = page(&c, 3);
        assert_eq!(
            c.program(Ppa::new(2, 0), &data, Oob::data(1)),
            Err(FlashError::ProgramFailed(Ppa::new(2, 0)))
        );
        // The failed page is unreadable and the write point moved past it.
        assert_eq!(c.probe(Ppa::new(2, 0)).unwrap(), PageProbe::Torn);
        assert_eq!(c.write_point(2), Some(1));
        assert_eq!(c.block_health(2), BlockHealth::Suspect);
        assert_eq!(c.stats().program_fails, 1);
        // Trigger consumed: the retry in the same block succeeds.
        c.program(Ppa::new(2, 1), &data, Oob::data(1)).unwrap();
        // A clean erase rehabilitates the suspect block.
        c.erase(2).unwrap();
        assert_eq!(c.block_health(2), BlockHealth::Good);
    }

    #[test]
    fn erase_fail_retires_block_permanently() {
        let mut c = chip();
        let data = page(&c, 5);
        c.program(Ppa::new(3, 0), &data, Oob::data(1)).unwrap();
        c.set_fault_plan(
            FaultPlan::new(1).trigger(FaultTrigger::new(FaultKind::EraseFail).on_block(3)),
        );
        assert_eq!(c.erase(3), Err(FlashError::EraseFailed(3)));
        assert_eq!(c.block_health(3), BlockHealth::Retired);
        assert_eq!(c.retired_blocks(), vec![3]);
        // The trigger was consumed, yet every later erase still fails:
        // retirement is permanent device state.
        assert_eq!(c.erase(3), Err(FlashError::EraseFailed(3)));
        assert_eq!(c.stats().erase_fails, 2);
        // The cells did wipe (the device just refuses to certify them), so
        // a buggy FTL could still program here — the auditor's job.
        assert!(c.is_erased(Ppa::new(3, 0)));
        c.program(Ppa::new(3, 0), &data, Oob::data(2)).unwrap();
    }

    #[test]
    fn correctable_read_succeeds_with_stall() {
        let mut c = chip();
        let data = page(&c, 7);
        c.program(Ppa::new(2, 0), &data, Oob::data(9)).unwrap();
        c.set_fault_plan(
            FaultPlan::new(1)
                .trigger(FaultTrigger::new(FaultKind::ReadFlips(1)).on_ppa(Ppa::new(2, 0))),
        );
        let before = c.clock().now();
        let mut buf = page(&c, 0);
        let oob = c.read(Ppa::new(2, 0), &mut buf).unwrap();
        assert_eq!(oob.lpn, 9);
        assert_eq!(buf, data);
        assert_eq!(c.stats().corrected_reads, 1);
        let plain_chip_read_cost = {
            let mut c2 = chip();
            c2.program(Ppa::new(2, 0), &data, Oob::data(9)).unwrap();
            let t = c2.clock().now();
            c2.read(Ppa::new(2, 0), &mut buf).unwrap();
            c2.clock().now() - t
        };
        assert!(
            c.clock().now() - before > plain_chip_read_cost,
            "correction must cost extra simulated time"
        );
    }

    #[test]
    fn uncorrectable_read_fails_but_preserves_page() {
        let mut c = chip();
        let data = page(&c, 7);
        c.program(Ppa::new(2, 0), &data, Oob::data(9)).unwrap();
        c.set_fault_plan(
            FaultPlan::new(1)
                .trigger(FaultTrigger::new(FaultKind::ReadFlips(1_000)).on_ppa(Ppa::new(2, 0))),
        );
        let mut buf = page(&c, 0);
        assert_eq!(
            c.read(Ppa::new(2, 0), &mut buf),
            Err(FlashError::Uncorrectable(Ppa::new(2, 0)))
        );
        assert_eq!(c.stats().uncorrectable_reads, 1);
        assert!(c.stats().fault_stall_ns > 0);
        // Transient: the one-shot trigger is spent, the retry decodes.
        assert!(c.read(Ppa::new(2, 0), &mut buf).is_ok());
        assert_eq!(buf, data);
    }

    #[test]
    fn sticky_uncorrectable_models_dead_page() {
        let mut c = chip();
        let data = page(&c, 7);
        c.program(Ppa::new(2, 0), &data, Oob::data(9)).unwrap();
        c.set_fault_plan(
            FaultPlan::new(1).trigger(
                FaultTrigger::new(FaultKind::ReadFlips(1_000))
                    .on_ppa(Ppa::new(2, 0))
                    .sticky(),
            ),
        );
        let mut buf = page(&c, 0);
        for _ in 0..3 {
            assert!(matches!(
                c.read(Ppa::new(2, 0), &mut buf),
                Err(FlashError::Uncorrectable(_))
            ));
        }
        // The OOB still probes fine: recovery scans keep working.
        assert!(matches!(
            c.probe(Ppa::new(2, 0)).unwrap(),
            PageProbe::Programmed(_)
        ));
    }

    #[test]
    fn read_disturb_ages_block_to_uncorrectable() {
        use crate::fault::{AgingModel, EccEvent};
        let mut c = chip();
        let data = page(&c, 7);
        c.program(Ppa::new(2, 0), &data, Oob::data(9)).unwrap();
        // One flip every 10 reads past 50; ECC corrects 8 bits, so reads
        // 51..=130 correct and read 141+ fails.
        c.set_fault_plan(FaultPlan::new(1).aging(AgingModel {
            read_disturb_threshold: 50,
            reads_per_flip: 10,
            ..AgingModel::inert()
        }));
        let mut buf = page(&c, 0);
        for _ in 0..50 {
            c.read(Ppa::new(2, 0), &mut buf).unwrap();
        }
        assert_eq!(c.last_ecc_event(), EccEvent::Clean);
        assert_eq!(c.stats().corrected_reads, 0);
        for _ in 0..80 {
            c.read(Ppa::new(2, 0), &mut buf).unwrap();
        }
        assert!(matches!(c.last_ecc_event(), EccEvent::Corrected(_)));
        assert!(c.stats().corrected_reads > 0);
        assert!(c.stats().aging_flips > 0);
        assert!(c.block_corrected_flips(2) > 0);
        assert_eq!(c.block_read_count(2), 130);
        for _ in 0..11 {
            let _ = c.read(Ppa::new(2, 0), &mut buf);
        }
        assert_eq!(
            c.read(Ppa::new(2, 0), &mut buf),
            Err(FlashError::Uncorrectable(Ppa::new(2, 0)))
        );
        assert!(matches!(c.last_ecc_event(), EccEvent::Uncorrectable(_)));
        assert!(c.stats().aging_uncorrectable > 0);
        // OOB still probes: recovery scans survive aged-out data pages.
        assert!(matches!(
            c.probe(Ppa::new(2, 0)).unwrap(),
            PageProbe::Programmed(_)
        ));
        // An erase heals the disturb damage entirely.
        c.erase(2).unwrap();
        assert_eq!(c.block_read_count(2), 0);
        assert_eq!(c.block_corrected_flips(2), 0);
        c.program(Ppa::new(2, 0), &data, Oob::data(9)).unwrap();
        c.read(Ppa::new(2, 0), &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn retention_ages_old_data() {
        use crate::fault::AgingModel;
        let mut c = chip();
        let data = page(&c, 7);
        c.program(Ppa::new(2, 0), &data, Oob::data(9)).unwrap();
        let ns_per_flip = crate::clock::SECOND;
        c.set_fault_plan(FaultPlan::new(1).aging(AgingModel {
            retention_threshold_ns: crate::clock::SECOND,
            retention_ns_per_flip: ns_per_flip,
            ..AgingModel::inert()
        }));
        let mut buf = page(&c, 0);
        c.read(Ppa::new(2, 0), &mut buf).unwrap();
        assert_eq!(
            c.stats().aging_flips,
            0,
            "fresh data has no retention flips"
        );
        // Age the data far past the ECC budget (8 bits): 30 flips' worth.
        c.clock().advance(31 * ns_per_flip);
        assert_eq!(
            c.read(Ppa::new(2, 0), &mut buf),
            Err(FlashError::Uncorrectable(Ppa::new(2, 0)))
        );
        // Freshly rewritten data on another block decodes fine.
        c.program(Ppa::new(3, 0), &data, Oob::data(9)).unwrap();
        c.read(Ppa::new(3, 0), &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn aging_spares_exempt_blocks() {
        use crate::fault::AgingModel;
        let mut c = chip();
        let data = page(&c, 7);
        c.program(Ppa::new(0, 0), &data, Oob::data(1)).unwrap();
        c.set_fault_plan(FaultPlan::new(1).aging(AgingModel {
            read_disturb_threshold: 0,
            reads_per_flip: 1,
            ..AgingModel::inert()
        }));
        let mut buf = page(&c, 0);
        // Block 0 is exempt (meta ring): unlimited reads stay clean.
        for _ in 0..100 {
            c.read(Ppa::new(0, 0), &mut buf).unwrap();
        }
        assert_eq!(c.stats().uncorrectable_reads, 0);
    }

    #[test]
    fn fault_plan_survives_power_cycle() {
        let mut c = chip();
        let data = page(&c, 1);
        c.set_fault_plan(
            FaultPlan::new(1).trigger(FaultTrigger::new(FaultKind::EraseFail).on_block(2)),
        );
        c.program(Ppa::new(3, 0), &data, Oob::data(1)).unwrap();
        assert_eq!(c.erase(2), Err(FlashError::EraseFailed(2)));
        c.arm_power_fuse(1);
        let _ = c.program(Ppa::new(3, 1), &data, Oob::data(2));
        assert!(c.is_dead());
        c.power_cycle();
        // Health and the plan survived the cycle.
        assert_eq!(c.block_health(2), BlockHealth::Retired);
        assert!(c.fault_plan().is_some());
        assert_eq!(c.erase(2), Err(FlashError::EraseFailed(2)));
    }

    #[test]
    fn power_cycle_resets_queue_timing_state() {
        // A queued program dies with power. Without the explicit
        // busy-timestamp reset, the next boot's first command would wait
        // on a phantom busy channel left by the dead operation.
        let mut c = chip();
        let data = page(&c, 1);
        c.program_queued(Ppa::new(0, 0), &data, Oob::data(0), 0)
            .unwrap();
        c.arm_power_fuse(1);
        assert_eq!(
            c.program_queued(Ppa::new(0, 1), &data, Oob::data(1), 0),
            Err(FlashError::PowerLost)
        );
        c.power_cycle();
        assert_eq!(c.outstanding_ops(), 0);
        let fresh_cost = {
            let mut c2 = chip();
            let t = c2.clock().now();
            c2.program(Ppa::new(1, 0), &data, Oob::data(2)).unwrap();
            c2.clock().now() - t
        };
        let t = c.clock().now();
        c.program(Ppa::new(1, 0), &data, Oob::data(2)).unwrap();
        let post_cycle_cost = c.clock().now() - t;
        assert_eq!(
            post_cycle_cost, fresh_cost,
            "first program after a power cycle must not inherit queue waits"
        );
    }

    #[test]
    fn background_faults_are_deterministic() {
        let run = || {
            let mut c = chip_with(2, 1, 16);
            c.set_fault_plan(FaultPlan::background(42, 0.05, 0.05, 0.1, 0.02));
            let data = page(&c, 9);
            let mut buf = page(&c, 0);
            for round in 0..4u64 {
                for b in 2..16u32 {
                    for p in 0..8u32 {
                        let _ = c.program(Ppa::new(b, p), &data, Oob::data(round));
                    }
                }
                for b in 2..16u32 {
                    for p in 0..8u32 {
                        let _ = c.read(Ppa::new(b, p), &mut buf);
                    }
                }
                for b in 2..16u32 {
                    let _ = c.erase(b);
                }
            }
            (c.clock().now(), *c.stats(), c.retired_blocks())
        };
        let (t1, s1, r1) = run();
        let (t2, s2, r2) = run();
        assert_eq!((t1, s1, r1.clone()), (t2, s2, r2));
        // The rates were high enough that every fault class fired.
        assert!(s1.program_fails > 0);
        assert!(s1.erase_fails > 0);
        assert!(s1.corrected_reads > 0);
        assert!(s1.uncorrectable_reads > 0);
        assert!(!r1.is_empty());
    }

    #[test]
    fn chip_timing_is_deterministic() {
        let run = || {
            let mut c = chip_with(4, 2, 32);
            let data = page(&c, 5);
            for i in 0..16u32 {
                c.program_queued(Ppa::new(i % 32, 0), &data, Oob::data(i as u64), 0)
                    .unwrap();
            }
            c.drain();
            for b in 0..4u32 {
                c.erase_queued(b, 0).unwrap();
            }
            c.drain();
            (c.clock().now(), *c.stats())
        };
        assert_eq!(run(), run());
    }
}
