//! Flash geometry and timing configuration.
//!
//! The defaults model the paper's testbed: an OpenSSD development board with
//! Samsung K9LCG08U1M MLC NAND (8 KB pages, 128 pages per block) behind an
//! Indilinx Barefoot controller on SATA 2.0. A second profile models the
//! one-generation-newer Samsung S830 consumer SSD used in Figure 9.

use crate::clock::{Nanos, MICRO};

/// Per-operation NAND latencies plus controller/interface costs.
///
/// These are *model parameters*, not claims about the exact silicon: the
/// reproduction validates relative shapes (who wins, by what factor), so the
/// values only need to sit in the right regime (MLC program ≫ read ≫ bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTimings {
    /// Array-to-register read time (tR).
    pub read_ns: Nanos,
    /// Register-to-array program time (tPROG).
    pub program_ns: Nanos,
    /// Block erase time (tBERS).
    pub erase_ns: Nanos,
    /// Flash channel transfer cost per byte (register <-> controller DRAM).
    pub channel_ns_per_byte: Nanos,
    /// Fixed firmware/controller overhead charged per flash command.
    pub cmd_overhead_ns: Nanos,
    /// Degree of internal parallelism (channels x ways). Latencies for bulk
    /// operations are divided by this factor to model a multi-channel
    /// controller; the OpenSSD firmware in the paper drives chips mostly
    /// serially, so its factor is 1.
    pub parallelism: u32,
}

impl FlashTimings {
    /// MLC-class timings matching the OpenSSD/Barefoot era.
    pub const OPENSSD: FlashTimings = FlashTimings {
        read_ns: 150 * MICRO,
        program_ns: 900 * MICRO,
        erase_ns: 2_600 * MICRO,
        channel_ns_per_byte: 25,      // ~40 MB/s flash channel
        cmd_overhead_ns: 120 * MICRO, // 87.5 MHz ARM firmware path
        parallelism: 1,
    };

    /// A one-generation-newer consumer SSD (Samsung S830 in the paper):
    /// faster NAND and channels, some parallelism, leaner firmware — about
    /// 2-3x the OpenSSD on small random writes, matching the Figure 9 gap.
    pub const S830: FlashTimings = FlashTimings {
        read_ns: 60 * MICRO,
        program_ns: 700 * MICRO,
        erase_ns: 2_200 * MICRO,
        channel_ns_per_byte: 8, // ~125 MB/s flash channel
        cmd_overhead_ns: 45 * MICRO,
        parallelism: 2,
    };

    /// Effective latency of one bulk operation after applying parallelism.
    pub fn scaled(&self, raw: Nanos) -> Nanos {
        raw / self.parallelism.max(1) as u64
    }
}

/// Physical layout of the simulated NAND array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Bytes per flash page (paper: 8 KB).
    pub page_size: usize,
    /// Pages per erase block (paper: 128).
    pub pages_per_block: usize,
    /// Total erase blocks in the array.
    pub blocks: usize,
    /// Bytes of out-of-band (spare) area per page available for FTL
    /// metadata; modelled as a typed struct rather than raw bytes.
    pub oob_bytes: usize,
}

impl FlashGeometry {
    /// The paper's chip: 8 KB pages, 128 pages/block. Block count is chosen
    /// by the caller to size the drive.
    pub fn openssd(blocks: usize) -> Self {
        FlashGeometry {
            page_size: 8 * 1024,
            pages_per_block: 128,
            blocks,
            oob_bytes: 64,
        }
    }

    /// A small geometry for unit tests: 512 B pages, 8 pages/block.
    pub fn tiny(blocks: usize) -> Self {
        FlashGeometry {
            page_size: 512,
            pages_per_block: 8,
            blocks,
            oob_bytes: 64,
        }
    }

    /// Total pages in the array.
    pub fn total_pages(&self) -> usize {
        self.blocks * self.pages_per_block
    }

    /// Total raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() as u64 * self.page_size as u64
    }
}

/// Complete flash device model: geometry plus timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashConfig {
    /// Physical layout of the array.
    pub geometry: FlashGeometry,
    /// Operation latency model.
    pub timings: FlashTimings,
}

impl FlashConfig {
    /// OpenSSD-like device with the given number of blocks.
    pub fn openssd(blocks: usize) -> Self {
        FlashConfig {
            geometry: FlashGeometry::openssd(blocks),
            timings: FlashTimings::OPENSSD,
        }
    }

    /// S830-like device with the given number of blocks.
    pub fn s830(blocks: usize) -> Self {
        FlashConfig {
            geometry: FlashGeometry::openssd(blocks),
            timings: FlashTimings::S830,
        }
    }

    /// Tiny geometry with OpenSSD timings, for tests.
    pub fn tiny(blocks: usize) -> Self {
        FlashConfig {
            geometry: FlashGeometry::tiny(blocks),
            timings: FlashTimings::OPENSSD,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openssd_geometry_matches_paper() {
        let g = FlashGeometry::openssd(16);
        assert_eq!(g.page_size, 8192);
        assert_eq!(g.pages_per_block, 128);
        assert_eq!(g.total_pages(), 16 * 128);
        assert_eq!(g.capacity_bytes(), 16 * 128 * 8192);
    }

    #[test]
    fn parallelism_scales_latency() {
        let t = FlashTimings::S830;
        assert_eq!(t.scaled(800), 800 / t.parallelism as u64);
        let t1 = FlashTimings::OPENSSD;
        assert_eq!(t1.scaled(800), 800);
    }

    #[test]
    fn profiles_are_ordered_by_speed() {
        // The newer device must be strictly faster on every axis the
        // Figure 9 comparison depends on.
        let old = FlashTimings::OPENSSD;
        let new = FlashTimings::S830;
        assert!(new.read_ns < old.read_ns);
        assert!(new.program_ns < old.program_ns);
        assert!(new.cmd_overhead_ns < old.cmd_overhead_ns);
        assert!(new.parallelism > old.parallelism);
    }
}
