//! Flash geometry and timing configuration.
//!
//! The defaults model the paper's testbed: an OpenSSD development board with
//! Samsung K9LCG08U1M MLC NAND (8 KB pages, 128 pages per block) behind an
//! Indilinx Barefoot controller on SATA 2.0. A second profile models the
//! one-generation-newer Samsung S830 consumer SSD used in Figure 9, whose
//! advantage comes from faster NAND *and* internal channel/way parallelism
//! (modelled structurally by the chip layer, not as a latency divisor).

use crate::clock::{Nanos, MICRO};

/// Per-operation NAND latencies plus controller/interface costs.
///
/// These are *model parameters*, not claims about the exact silicon: the
/// reproduction validates relative shapes (who wins, by what factor), so the
/// values only need to sit in the right regime (MLC program ≫ read ≫ bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTimings {
    /// Array-to-register read time (tR).
    pub read_ns: Nanos,
    /// Register-to-array program time (tPROG).
    pub program_ns: Nanos,
    /// Block erase time (tBERS).
    pub erase_ns: Nanos,
    /// Flash channel transfer cost per byte (register <-> controller DRAM).
    pub channel_ns_per_byte: Nanos,
    /// Fixed firmware/controller overhead charged per flash command.
    pub cmd_overhead_ns: Nanos,
}

impl FlashTimings {
    /// MLC-class timings matching the OpenSSD/Barefoot era.
    pub const OPENSSD: FlashTimings = FlashTimings {
        read_ns: 150 * MICRO,
        program_ns: 900 * MICRO,
        erase_ns: 2_600 * MICRO,
        channel_ns_per_byte: 25,      // ~40 MB/s flash channel
        cmd_overhead_ns: 120 * MICRO, // 87.5 MHz ARM firmware path
    };

    /// A one-generation-newer consumer SSD (Samsung S830 in the paper):
    /// faster NAND and channels plus a leaner firmware path. Combined with
    /// the S830 geometry's 4 channels × 2 ways this lands the drive about
    /// 2-3x the OpenSSD on small random writes, matching the Figure 9 gap.
    pub const S830: FlashTimings = FlashTimings {
        read_ns: 60 * MICRO,
        program_ns: 700 * MICRO,
        erase_ns: 2_200 * MICRO,
        channel_ns_per_byte: 8, // ~125 MB/s flash channel
        cmd_overhead_ns: 45 * MICRO,
    };
}

/// Physical layout of the simulated NAND array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Bytes per flash page (paper: 8 KB).
    pub page_size: usize,
    /// Pages per erase block (paper: 128).
    pub pages_per_block: usize,
    /// Total erase blocks in the array.
    pub blocks: usize,
    /// Bytes of out-of-band (spare) area per page available for FTL
    /// metadata; modelled as a typed struct rather than raw bytes.
    pub oob_bytes: usize,
    /// Independent flash channels (buses). Physical blocks are striped
    /// across channels (`channel = block % channels`), so operations on
    /// blocks of distinct channels overlap in time.
    pub channels: u32,
    /// Chips (ways) per channel. Ways share their channel's bus but have
    /// independent cell arrays, so cell work overlaps while transfers
    /// serialize on the shared bus.
    pub ways: u32,
}

impl FlashGeometry {
    /// The paper's chip: 8 KB pages, 128 pages/block, and a single
    /// channel/way — the OpenSSD firmware in the paper drives its chips
    /// mostly serially. Block count is chosen by the caller to size the
    /// drive.
    pub fn openssd(blocks: usize) -> Self {
        FlashGeometry {
            page_size: 8 * 1024,
            pages_per_block: 128,
            blocks,
            oob_bytes: 64,
            channels: 1,
            ways: 1,
        }
    }

    /// A small geometry for unit tests: 512 B pages, 8 pages/block.
    pub fn tiny(blocks: usize) -> Self {
        FlashGeometry {
            page_size: 512,
            pages_per_block: 8,
            blocks,
            oob_bytes: 64,
            channels: 1,
            ways: 1,
        }
    }

    /// Total pages in the array.
    pub fn total_pages(&self) -> usize {
        self.blocks * self.pages_per_block
    }

    /// Total raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() as u64 * self.page_size as u64
    }

    /// Independent (channel, way) units in the array.
    pub fn units(&self) -> usize {
        (self.channels.max(1) * self.ways.max(1)) as usize
    }

    /// Channel a physical block lives on.
    pub fn channel_of(&self, block: u32) -> usize {
        (block as usize) % self.channels.max(1) as usize
    }

    /// Independent-unit index (channel × way) a physical block lives on.
    /// Blocks stripe first across channels, then across ways within a
    /// channel, so consecutive block numbers land on distinct buses.
    pub fn unit_of(&self, block: u32) -> usize {
        let channels = self.channels.max(1) as usize;
        let ways = self.ways.max(1) as usize;
        let ch = (block as usize) % channels;
        let way = (block as usize / channels) % ways;
        ch * ways + way
    }
}

/// Complete flash device model: geometry plus timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashConfig {
    /// Physical layout of the array.
    pub geometry: FlashGeometry,
    /// Operation latency model.
    pub timings: FlashTimings,
}

impl FlashConfig {
    /// OpenSSD-like device with the given number of blocks.
    pub fn openssd(blocks: usize) -> Self {
        FlashConfig {
            geometry: FlashGeometry::openssd(blocks),
            timings: FlashTimings::OPENSSD,
        }
    }

    /// S830-like device with the given number of blocks: newer NAND
    /// timings and a 4-channel × 2-way array.
    pub fn s830(blocks: usize) -> Self {
        FlashConfig {
            geometry: FlashGeometry {
                channels: 4,
                ways: 2,
                ..FlashGeometry::openssd(blocks)
            },
            timings: FlashTimings::S830,
        }
    }

    /// Tiny geometry with OpenSSD timings, for tests.
    pub fn tiny(blocks: usize) -> Self {
        FlashConfig {
            geometry: FlashGeometry::tiny(blocks),
            timings: FlashTimings::OPENSSD,
        }
    }

    /// Starts a [`FlashConfigBuilder`] from the OpenSSD profile.
    pub fn builder() -> FlashConfigBuilder {
        FlashConfigBuilder::openssd()
    }
}

/// Fluent construction of a [`FlashConfig`] from a profile preset plus
/// overrides, replacing bare-struct literals at call sites.
///
/// ```
/// use xftl_flash::FlashConfigBuilder;
/// let cfg = FlashConfigBuilder::s830().blocks(256).channels(8).build();
/// assert_eq!(cfg.geometry.blocks, 256);
/// assert_eq!(cfg.geometry.channels, 8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FlashConfigBuilder {
    config: FlashConfig,
}

impl FlashConfigBuilder {
    /// Starts from the paper's OpenSSD testbed profile (64 blocks; resize
    /// with [`blocks`](Self::blocks)).
    pub fn openssd() -> Self {
        FlashConfigBuilder {
            config: FlashConfig::openssd(64),
        }
    }

    /// Starts from the Figure 9 S830 profile (64 blocks, 4 channels × 2
    /// ways).
    pub fn s830() -> Self {
        FlashConfigBuilder {
            config: FlashConfig::s830(64),
        }
    }

    /// Starts from the tiny unit-test profile (16 blocks).
    pub fn tiny() -> Self {
        FlashConfigBuilder {
            config: FlashConfig::tiny(16),
        }
    }

    /// 100× the paper's 64 MB OpenSSD testbed: ~6.8 GB raw in 1 MB erase
    /// blocks (8 KB pages × 128), spread over 8 channels × 2 ways with
    /// S830-class timings. This is the CI soak-lane scale — big enough
    /// that the mapping table cannot stay RAM-resident in a bounded cache,
    /// small enough to reach GC steady state in minutes of host time.
    pub fn scale_100x() -> Self {
        FlashConfigBuilder {
            config: FlashConfig {
                geometry: FlashGeometry {
                    channels: 8,
                    ways: 2,
                    ..FlashGeometry::openssd(6_800)
                },
                timings: FlashTimings::S830,
            },
        }
    }

    /// A 64 GB-class consumer drive: 16 KB pages × 256 pages/block (4 MB
    /// erase blocks), 17,536 blocks ≈ 68.5 GB raw (~7% spare for GC
    /// headroom over a 64 GB logical space), 8 channels × 4 ways. Only
    /// feasible in host RAM because page contents fill-compress and the
    /// demand-paged FTL keeps a bounded mapping cache.
    pub fn scale_64g() -> Self {
        FlashConfigBuilder {
            config: FlashConfig {
                geometry: FlashGeometry {
                    page_size: 16 * 1024,
                    pages_per_block: 256,
                    blocks: 17_536,
                    oob_bytes: 64,
                    channels: 8,
                    ways: 4,
                },
                timings: FlashTimings::S830,
            },
        }
    }

    /// A 256 GB-class drive: the [`scale_64g`](Self::scale_64g) geometry
    /// with 4× the blocks (70,144 ≈ 274 GB raw).
    pub fn scale_256g() -> Self {
        Self::scale_64g().blocks(70_144)
    }

    /// Sets the number of erase blocks (drive size).
    pub fn blocks(mut self, blocks: usize) -> Self {
        self.config.geometry.blocks = blocks;
        self
    }

    /// Sets the page size in bytes.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.config.geometry.page_size = bytes;
        self
    }

    /// Sets the number of pages per erase block.
    pub fn pages_per_block(mut self, pages: usize) -> Self {
        self.config.geometry.pages_per_block = pages;
        self
    }

    /// Sets the number of independent flash channels.
    pub fn channels(mut self, channels: u32) -> Self {
        self.config.geometry.channels = channels.max(1);
        self
    }

    /// Sets the number of ways (chips) per channel.
    pub fn ways(mut self, ways: u32) -> Self {
        self.config.geometry.ways = ways.max(1);
        self
    }

    /// Replaces the whole geometry.
    pub fn geometry(mut self, geometry: FlashGeometry) -> Self {
        self.config.geometry = geometry;
        self
    }

    /// Replaces the whole timing model.
    pub fn timings(mut self, timings: FlashTimings) -> Self {
        self.config.timings = timings;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> FlashConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openssd_geometry_matches_paper() {
        let g = FlashGeometry::openssd(16);
        assert_eq!(g.page_size, 8192);
        assert_eq!(g.pages_per_block, 128);
        assert_eq!(g.total_pages(), 16 * 128);
        assert_eq!(g.capacity_bytes(), 16 * 128 * 8192);
        assert_eq!(g.units(), 1);
    }

    #[test]
    fn blocks_stripe_across_channels_then_ways() {
        let g = FlashGeometry {
            channels: 4,
            ways: 2,
            ..FlashGeometry::openssd(64)
        };
        assert_eq!(g.units(), 8);
        // Consecutive blocks land on distinct channels...
        assert_eq!(g.channel_of(0), 0);
        assert_eq!(g.channel_of(1), 1);
        assert_eq!(g.channel_of(3), 3);
        assert_eq!(g.channel_of(4), 0);
        // ...and wrap onto the second way after one channel sweep.
        assert_eq!(g.unit_of(0), 0);
        assert_ne!(g.unit_of(0), g.unit_of(4));
        assert_eq!(g.unit_of(0), g.unit_of(8));
    }

    #[test]
    fn profiles_are_ordered_by_speed() {
        // The newer device must be strictly faster on every axis the
        // Figure 9 comparison depends on: NAND latencies, firmware path,
        // and the degree of structural parallelism.
        let old = FlashConfig::openssd(64);
        let new = FlashConfig::s830(64);
        assert!(new.timings.read_ns < old.timings.read_ns);
        assert!(new.timings.program_ns < old.timings.program_ns);
        assert!(new.timings.cmd_overhead_ns < old.timings.cmd_overhead_ns);
        assert!(new.geometry.units() > old.geometry.units());
        assert_eq!(new.geometry.channels, 4);
        assert_eq!(new.geometry.ways, 2);
    }

    #[test]
    fn scale_presets_hit_their_capacity_classes() {
        let soak = FlashConfigBuilder::scale_100x().build();
        let small = FlashConfig::openssd(64);
        assert!(soak.geometry.capacity_bytes() >= 100 * small.geometry.capacity_bytes());
        let g64 = FlashConfigBuilder::scale_64g().build();
        assert!(g64.geometry.capacity_bytes() >= 64 << 30);
        let g256 = FlashConfigBuilder::scale_256g().build();
        assert!(g256.geometry.capacity_bytes() >= 256 << 30);
        // All presets keep channel striping within the stats array bound.
        for cfg in [soak, g64, g256] {
            assert!(cfg.geometry.channels as usize <= crate::stats::MAX_CHANNELS);
            assert!(cfg.geometry.units() > 1);
        }
    }

    #[test]
    fn builder_overrides_profile_fields() {
        let cfg = FlashConfig::builder()
            .blocks(128)
            .channels(2)
            .ways(4)
            .build();
        assert_eq!(cfg.geometry.blocks, 128);
        assert_eq!(cfg.geometry.channels, 2);
        assert_eq!(cfg.geometry.ways, 4);
        assert_eq!(cfg.timings, FlashTimings::OPENSSD);
        let tiny = FlashConfigBuilder::tiny().blocks(40).build();
        assert_eq!(tiny, FlashConfig::tiny(40));
    }
}
