//! Operation counters for the flash array.
//!
//! These counters feed the paper's FTL-side columns in Table 1 and the bar
//! charts in Figure 6 (pages written, garbage-collection frequency). The
//! chip layer counts raw media operations; the FTL layer adds logical
//! counters (host writes vs. GC copy-backs) on top.

use std::ops::Sub;

use crate::clock::Nanos;

/// Cumulative raw-media operation counts and busy time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlashStats {
    /// Full-page reads.
    pub reads: u64,
    /// Page programs (includes pages torn by power loss).
    pub programs: u64,
    /// Block erases.
    pub erases: u64,
    /// OOB-only probes (recovery scans, GC validity checks).
    pub oob_reads: u64,
    /// Pages left torn by an interrupted program.
    pub torn_pages: u64,
    /// Simulated time spent in read operations.
    pub busy_read_ns: Nanos,
    /// Simulated time spent in program operations.
    pub busy_program_ns: Nanos,
    /// Simulated time spent in erase operations.
    pub busy_erase_ns: Nanos,
}

impl FlashStats {
    /// Total simulated media busy time.
    pub fn busy_ns(&self) -> Nanos {
        self.busy_read_ns + self.busy_program_ns + self.busy_erase_ns
    }
}

impl Sub for FlashStats {
    type Output = FlashStats;

    /// Difference of two snapshots, for measuring one experiment phase.
    fn sub(self, rhs: FlashStats) -> FlashStats {
        FlashStats {
            reads: self.reads - rhs.reads,
            programs: self.programs - rhs.programs,
            erases: self.erases - rhs.erases,
            oob_reads: self.oob_reads - rhs.oob_reads,
            torn_pages: self.torn_pages - rhs.torn_pages,
            busy_read_ns: self.busy_read_ns - rhs.busy_read_ns,
            busy_program_ns: self.busy_program_ns - rhs.busy_program_ns,
            busy_erase_ns: self.busy_erase_ns - rhs.busy_erase_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let a = FlashStats {
            reads: 10,
            programs: 20,
            erases: 3,
            ..Default::default()
        };
        let b = FlashStats {
            reads: 4,
            programs: 5,
            erases: 1,
            ..Default::default()
        };
        let d = a - b;
        assert_eq!(d.reads, 6);
        assert_eq!(d.programs, 15);
        assert_eq!(d.erases, 2);
    }

    #[test]
    fn busy_total_sums_categories() {
        let s = FlashStats {
            busy_read_ns: 1,
            busy_program_ns: 2,
            busy_erase_ns: 3,
            ..Default::default()
        };
        assert_eq!(s.busy_ns(), 6);
    }
}
