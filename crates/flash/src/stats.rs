//! Operation counters for the flash array.
//!
//! These counters feed the paper's FTL-side columns in Table 1 and the bar
//! charts in Figure 6 (pages written, garbage-collection frequency). The
//! chip layer counts raw media operations; the FTL layer adds logical
//! counters (host writes vs. GC copy-backs) on top. With the channel model
//! the chip also tracks per-channel busy time and a queue-depth histogram,
//! which the channel-scaling benchmarks print to show how well a workload
//! exploits the array's parallelism.

use std::ops::Sub;

use crate::clock::Nanos;

/// Channels tracked individually in [`FlashStats::busy_channel_ns`];
/// channels beyond this fold into the last slot. Kept as a fixed-size
/// array so stats snapshots stay `Copy`.
pub const MAX_CHANNELS: usize = 8;

/// Buckets in [`FlashStats::queue_depth_hist`]: depths `0..BUCKETS-1`
/// count exactly, the last bucket counts everything deeper.
pub const QUEUE_DEPTH_BUCKETS: usize = 8;

/// Cumulative raw-media operation counts and busy time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlashStats {
    /// Full-page reads.
    pub reads: u64,
    /// Page programs (includes pages torn by power loss).
    pub programs: u64,
    /// Block erases.
    pub erases: u64,
    /// OOB-only probes (recovery scans, GC validity checks).
    pub oob_reads: u64,
    /// Pages left torn by an interrupted program.
    pub torn_pages: u64,
    /// Programs that reported status failure (fault injection).
    pub program_fails: u64,
    /// Erases that reported status failure; each first failure retires
    /// its block permanently.
    pub erase_fails: u64,
    /// Reads that needed (and got) in-line ECC correction.
    pub corrected_reads: u64,
    /// Reads that exceeded the ECC correction strength.
    pub uncorrectable_reads: u64,
    /// Total flipped bits attributed to the deterministic aging curve
    /// (read disturb + retention + wear), corrected or not.
    pub aging_flips: u64,
    /// Uncorrectable reads that only aging pushed over the ECC budget
    /// (the trigger/background flips alone would have decoded) — the
    /// losses a scrubber exists to prevent.
    pub aging_uncorrectable: u64,
    /// Extra simulated time spent in fault handling: ECC correction
    /// stalls, failed-program status polls, failed-erase retries.
    pub fault_stall_ns: Nanos,
    /// Simulated time spent in read operations.
    pub busy_read_ns: Nanos,
    /// Simulated time spent in program operations.
    pub busy_program_ns: Nanos,
    /// Simulated time spent in erase operations.
    pub busy_erase_ns: Nanos,
    /// Per-channel media service time (cell + bus occupancy, excluding
    /// firmware command overhead). Channel `c` accumulates into slot
    /// `min(c, MAX_CHANNELS - 1)`.
    pub busy_channel_ns: [Nanos; MAX_CHANNELS],
    /// Operations submitted through the queued (asynchronous) interface.
    pub queued_ops: u64,
    /// Total time operations spent waiting for their channel/way to free
    /// up before service could start (queueing delay).
    pub queue_wait_ns: Nanos,
    /// Histogram of device queue depth observed at each command arrival
    /// (queued submissions only): how many earlier commands were still in
    /// flight.
    pub queue_depth_hist: [u64; QUEUE_DEPTH_BUCKETS],
}

impl FlashStats {
    /// Total simulated media busy time.
    pub fn busy_ns(&self) -> Nanos {
        self.busy_read_ns + self.busy_program_ns + self.busy_erase_ns
    }

    /// Busy time of the single most-loaded channel: the array-level
    /// critical path under perfect overlap.
    pub fn max_channel_busy_ns(&self) -> Nanos {
        self.busy_channel_ns.iter().copied().max().unwrap_or(0)
    }

    /// Mean queue depth seen by arriving queued commands (0.0 when
    /// nothing was ever queued). The last histogram bucket is counted at
    /// its lower bound, so this under-reports saturated queues slightly.
    pub fn mean_queue_depth(&self) -> f64 {
        let samples: u64 = self.queue_depth_hist.iter().sum();
        if samples == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .queue_depth_hist
            .iter()
            .enumerate()
            .map(|(depth, n)| depth as u64 * n)
            .sum();
        weighted as f64 / samples as f64
    }
}

fn sub_arrays<const N: usize>(a: [Nanos; N], b: [Nanos; N]) -> [Nanos; N] {
    let mut out = [0; N];
    for i in 0..N {
        out[i] = a[i] - b[i];
    }
    out
}

impl Sub for FlashStats {
    type Output = FlashStats;

    /// Difference of two snapshots, for measuring one experiment phase.
    fn sub(self, rhs: FlashStats) -> FlashStats {
        FlashStats {
            reads: self.reads - rhs.reads,
            programs: self.programs - rhs.programs,
            erases: self.erases - rhs.erases,
            oob_reads: self.oob_reads - rhs.oob_reads,
            torn_pages: self.torn_pages - rhs.torn_pages,
            program_fails: self.program_fails - rhs.program_fails,
            erase_fails: self.erase_fails - rhs.erase_fails,
            corrected_reads: self.corrected_reads - rhs.corrected_reads,
            uncorrectable_reads: self.uncorrectable_reads - rhs.uncorrectable_reads,
            aging_flips: self.aging_flips - rhs.aging_flips,
            aging_uncorrectable: self.aging_uncorrectable - rhs.aging_uncorrectable,
            fault_stall_ns: self.fault_stall_ns - rhs.fault_stall_ns,
            busy_read_ns: self.busy_read_ns - rhs.busy_read_ns,
            busy_program_ns: self.busy_program_ns - rhs.busy_program_ns,
            busy_erase_ns: self.busy_erase_ns - rhs.busy_erase_ns,
            busy_channel_ns: sub_arrays(self.busy_channel_ns, rhs.busy_channel_ns),
            queued_ops: self.queued_ops - rhs.queued_ops,
            queue_wait_ns: self.queue_wait_ns - rhs.queue_wait_ns,
            queue_depth_hist: sub_arrays(self.queue_depth_hist, rhs.queue_depth_hist),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let a = FlashStats {
            reads: 10,
            programs: 20,
            erases: 3,
            busy_channel_ns: [9, 7, 0, 0, 0, 0, 0, 0],
            queue_depth_hist: [5, 2, 0, 0, 0, 0, 0, 0],
            ..Default::default()
        };
        let b = FlashStats {
            reads: 4,
            programs: 5,
            erases: 1,
            busy_channel_ns: [4, 2, 0, 0, 0, 0, 0, 0],
            queue_depth_hist: [1, 1, 0, 0, 0, 0, 0, 0],
            ..Default::default()
        };
        let d = a - b;
        assert_eq!(d.reads, 6);
        assert_eq!(d.programs, 15);
        assert_eq!(d.erases, 2);
        assert_eq!(d.busy_channel_ns[0], 5);
        assert_eq!(d.busy_channel_ns[1], 5);
        assert_eq!(d.queue_depth_hist, [4, 1, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn busy_total_sums_categories() {
        let s = FlashStats {
            busy_read_ns: 1,
            busy_program_ns: 2,
            busy_erase_ns: 3,
            ..Default::default()
        };
        assert_eq!(s.busy_ns(), 6);
    }

    #[test]
    fn channel_and_queue_summaries() {
        let s = FlashStats {
            busy_channel_ns: [10, 40, 20, 0, 0, 0, 0, 0],
            queue_depth_hist: [2, 0, 2, 0, 0, 0, 0, 0],
            ..Default::default()
        };
        assert_eq!(s.max_channel_busy_ns(), 40);
        assert!((s.mean_queue_depth() - 1.0).abs() < 1e-12);
        assert_eq!(FlashStats::default().mean_queue_depth(), 0.0);
    }
}
