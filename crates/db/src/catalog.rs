//! The schema catalog, persisted SQLite-style: a master table (rooted at
//! the header's `schema_root`) stores one record per object —
//! `(type, name, tbl_name, rootpage, sql)` — and the in-RAM catalog is
//! rebuilt by re-parsing the stored `CREATE` statements at open time.

use std::collections::HashMap;

use xftl_ftl::BlockDevice;

use crate::btree;
use crate::error::{DbError, Result};
use crate::pager::{PageNo, Pager};
use crate::record::{decode_record, encode_record};
use crate::sql::{self, ColDef, Stmt};
use crate::value::Value;

/// In-RAM description of a table.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Table name as declared.
    pub name: String,
    /// Column definitions in declaration order.
    pub cols: Vec<ColDef>,
    /// Root page of the table's B-tree.
    pub root: PageNo,
    /// Column index of the `INTEGER PRIMARY KEY` rowid alias, if any.
    pub rowid_alias: Option<usize>,
    /// Next auto-assigned rowid (cached; seeded from the tree's max).
    pub next_rowid: i64,
    /// Master-table rowid of this object's record.
    pub master_rowid: i64,
}

impl TableInfo {
    /// Index of a column by name (case-insensitive).
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.cols
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// In-RAM description of an index.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    /// Index name.
    pub name: String,
    /// Owning table (normalized lowercase).
    pub table: String,
    /// Indexed column names, in order.
    pub cols: Vec<String>,
    /// Column positions in the table, aligned with `cols`.
    pub col_idxs: Vec<usize>,
    /// Root page of the index B-tree.
    pub root: PageNo,
    /// Master-table rowid of this object's record.
    pub master_rowid: i64,
}

/// The schema catalog of one database.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, TableInfo>,
    indexes: HashMap<String, IndexInfo>,
    next_master_rowid: i64,
}

fn norm(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    /// Loads the catalog from the master table (if one exists).
    pub fn load<D: BlockDevice>(pager: &mut Pager<D>) -> Result<Catalog> {
        let mut cat = Catalog {
            next_master_rowid: 1,
            ..Default::default()
        };
        let root = pager.schema_root();
        if root == 0 {
            return Ok(cat);
        }
        let mut records: Vec<(i64, Vec<Value>)> = Vec::new();
        btree::table_scan_from(pager, root, i64::MIN, &mut |_, rowid, rec| {
            records.push((rowid, decode_record(&rec)?));
            Ok(true)
        })?;
        for (rowid, rec) in records {
            cat.next_master_rowid = cat.next_master_rowid.max(rowid + 1);
            let [Value::Text(kind), Value::Text(_name), Value::Text(_tbl), Value::Int(rootpage), Value::Text(sql_text)] =
                rec.as_slice()
            else {
                return Err(DbError::Corrupt("malformed master record"));
            };
            match (kind.as_str(), sql::parse(sql_text)?) {
                ("table", Stmt::CreateTable { name, cols, .. }) => {
                    let rowid_alias = cols.iter().position(|c| c.is_pk);
                    let root = *rootpage as PageNo;
                    let next_rowid = btree::table_last_rowid(pager, root)?.unwrap_or(0) + 1;
                    cat.tables.insert(
                        norm(&name),
                        TableInfo {
                            name,
                            cols,
                            root,
                            rowid_alias,
                            next_rowid,
                            master_rowid: rowid,
                        },
                    );
                }
                (
                    "index",
                    Stmt::CreateIndex {
                        name, table, cols, ..
                    },
                ) => {
                    let tinfo = cat
                        .tables
                        .get(&norm(&table))
                        .ok_or(DbError::Corrupt("index before its table in master"))?;
                    let col_idxs = cols
                        .iter()
                        .map(|c| {
                            tinfo
                                .col_index(c)
                                .ok_or(DbError::Corrupt("index column missing"))
                        })
                        .collect::<Result<Vec<_>>>()?;
                    cat.indexes.insert(
                        norm(&name),
                        IndexInfo {
                            name,
                            table: norm(&table),
                            cols,
                            col_idxs,
                            root: *rootpage as PageNo,
                            master_rowid: rowid,
                        },
                    );
                }
                _ => return Err(DbError::Corrupt("master record kind/sql mismatch")),
            }
        }
        Ok(cat)
    }

    fn master_root<D: BlockDevice>(&mut self, pager: &mut Pager<D>) -> Result<PageNo> {
        let root = pager.schema_root();
        if root != 0 {
            return Ok(root);
        }
        let root = btree::create_table_tree(pager)?;
        pager.set_schema_root(root)?;
        Ok(root)
    }

    /// Registers a new table from its parsed definition, persisting the
    /// CREATE statement in the master table.
    pub fn create_table<D: BlockDevice>(
        &mut self,
        pager: &mut Pager<D>,
        name: &str,
        cols: &[ColDef],
        raw_sql: &str,
    ) -> Result<()> {
        if self.tables.contains_key(&norm(name)) {
            return Err(DbError::Exists(name.to_string()));
        }
        let master = self.master_root(pager)?;
        let root = btree::create_table_tree(pager)?;
        let master_rowid = self.next_master_rowid;
        self.next_master_rowid += 1;
        let rec = encode_record(&[
            Value::Text("table".into()),
            Value::Text(name.into()),
            Value::Text(name.into()),
            Value::Int(root as i64),
            Value::Text(raw_sql.into()),
        ]);
        btree::table_insert(pager, master, master_rowid, &rec)?;
        let rowid_alias = cols.iter().position(|c| c.is_pk);
        self.tables.insert(
            norm(name),
            TableInfo {
                name: name.to_string(),
                cols: cols.to_vec(),
                root,
                rowid_alias,
                next_rowid: 1,
                master_rowid,
            },
        );
        Ok(())
    }

    /// Registers a new index, persisting its CREATE statement.
    pub fn create_index<D: BlockDevice>(
        &mut self,
        pager: &mut Pager<D>,
        name: &str,
        table: &str,
        cols: &[String],
        raw_sql: &str,
    ) -> Result<()> {
        if self.indexes.contains_key(&norm(name)) {
            return Err(DbError::Exists(name.to_string()));
        }
        let tinfo = self
            .tables
            .get(&norm(table))
            .ok_or_else(|| DbError::Unknown(table.to_string()))?;
        let col_idxs = cols
            .iter()
            .map(|c| {
                tinfo
                    .col_index(c)
                    .ok_or_else(|| DbError::Unknown(format!("{table}.{c}")))
            })
            .collect::<Result<Vec<_>>>()?;
        let table_key = norm(table);
        let master = self.master_root(pager)?;
        let root = btree::create_index_tree(pager)?;
        let master_rowid = self.next_master_rowid;
        self.next_master_rowid += 1;
        let rec = encode_record(&[
            Value::Text("index".into()),
            Value::Text(name.into()),
            Value::Text(table.into()),
            Value::Int(root as i64),
            Value::Text(raw_sql.into()),
        ]);
        btree::table_insert(pager, master, master_rowid, &rec)?;
        self.indexes.insert(
            norm(name),
            IndexInfo {
                name: name.to_string(),
                table: table_key,
                cols: cols.to_vec(),
                col_idxs,
                root,
                master_rowid,
            },
        );
        Ok(())
    }

    /// Drops a table, its indexes, and their pages.
    pub fn drop_table<D: BlockDevice>(&mut self, pager: &mut Pager<D>, name: &str) -> Result<()> {
        let info = self
            .tables
            .remove(&norm(name))
            .ok_or_else(|| DbError::Unknown(name.to_string()))?;
        let master = pager.schema_root();
        btree::clear_tree(pager, info.root, true)?;
        pager.free_page(info.root)?;
        btree::table_delete(pager, master, info.master_rowid)?;
        let dependents: Vec<String> = self
            .indexes
            .values()
            .filter(|ix| ix.table == norm(name))
            .map(|ix| ix.name.clone())
            .collect();
        for ix in dependents {
            self.drop_index(pager, &ix)?;
        }
        Ok(())
    }

    /// Drops one index.
    pub fn drop_index<D: BlockDevice>(&mut self, pager: &mut Pager<D>, name: &str) -> Result<()> {
        let info = self
            .indexes
            .remove(&norm(name))
            .ok_or_else(|| DbError::Unknown(name.to_string()))?;
        btree::clear_tree(pager, info.root, false)?;
        pager.free_page(info.root)?;
        btree::table_delete(pager, pager.schema_root(), info.master_rowid)?;
        Ok(())
    }

    /// The table named `name`.
    pub fn table(&self, name: &str) -> Result<&TableInfo> {
        self.tables
            .get(&norm(name))
            .ok_or_else(|| DbError::Unknown(name.to_string()))
    }

    /// Mutable access (rowid counter updates).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut TableInfo> {
        self.tables
            .get_mut(&norm(name))
            .ok_or_else(|| DbError::Unknown(name.to_string()))
    }

    /// True if the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&norm(name))
    }

    /// The indexes defined on `table`.
    pub fn indexes_of(&self, table: &str) -> Vec<IndexInfo> {
        self.indexes
            .values()
            .filter(|ix| ix.table == norm(table))
            .cloned()
            .collect()
    }

    /// Number of tables (for tests).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}
