//! The pager: page-level storage, transactions, and the three journal
//! modes of the paper.
//!
//! | mode       | commit protocol (per §2.1–§2.2 and Figure 1)             |
//! |------------|-----------------------------------------------------------|
//! | `Rollback` | copy originals to `<db>-journal`, fsync, fsync header,    |
//! |            | write pages to the DB file, fsync, delete the journal      |
//! | `Wal`      | append new versions to `<db>-wal`, one fsync; checkpoint   |
//! |            | into the DB file every 1000 frames                         |
//! | `Off`      | write pages straight to the DB file tagged with the        |
//! |            | transaction id; one `fsync(tid)` = device `commit`        |
//!
//! The buffer pool is managed *steal/force* exactly as SQLite's (§2.1):
//! every commit force-writes the transaction's dirty pages, and under
//! memory pressure uncommitted dirty pages spill to storage early — via
//! the journal-sync-then-spill dance in `Rollback` mode, an uncommitted
//! WAL frame in `Wal` mode, and a tid-tagged `write_tx` in `Off` mode.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use xftl_flash::{Nanos, SimClock};
use xftl_fs::{FileSystem, FsError, Ino};
use xftl_ftl::{BlockDevice, CommitTicket, Tid};
use xftl_trace::{OpClass, Recorder, Telemetry};

use crate::error::{DbError, Result};

/// Little-endian u64 at `off` (callers guarantee the bounds).
fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(bytes)
}

/// Little-endian u32 at `off` (callers guarantee the bounds).
fn get_u32(buf: &[u8], off: usize) -> u32 {
    let mut bytes = [0u8; 4];
    bytes.copy_from_slice(&buf[off..off + 4]);
    u32::from_le_bytes(bytes)
}

/// Little-endian u16 at `off` (callers guarantee the bounds).
fn get_u16(buf: &[u8], off: usize) -> u16 {
    let mut bytes = [0u8; 2];
    bytes.copy_from_slice(&buf[off..off + 2]);
    u16::from_le_bytes(bytes)
}

/// Journal mode of one database connection (PRAGMA journal_mode analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbJournalMode {
    /// SQLite's default rollback-journal (DELETE) mode: the journal file
    /// is deleted at commit.
    Rollback,
    /// Rollback journal finalized by truncation to zero length
    /// (`PRAGMA journal_mode=TRUNCATE`) — avoids the per-transaction
    /// create/unlink metadata churn.
    RollbackTruncate,
    /// Rollback journal finalized by zeroing its header
    /// (`PRAGMA journal_mode=PERSIST`) — one page write instead of any
    /// file-system metadata operation.
    RollbackPersist,
    /// Write-ahead log mode.
    Wal,
    /// Journaling off — transactional atomicity delegated to X-FTL.
    Off,
}

impl DbJournalMode {
    /// True for any of the three rollback-journal variants.
    pub fn is_rollback(self) -> bool {
        matches!(
            self,
            DbJournalMode::Rollback
                | DbJournalMode::RollbackTruncate
                | DbJournalMode::RollbackPersist
        )
    }
}

/// A file system shared by several database files (Gmail uses 2, Facebook
/// 11 — Table 2).
pub type SharedFs<D> = Rc<RefCell<FileSystem<D>>>;

/// Database page number (page 0 is the header).
pub type PageNo = u32;

/// Magic of the DB header page ("XFTLSQL1").
const DB_MAGIC: u64 = 0x5846_544C_5351_4C31;
/// Magic of a rollback-journal header.
const RJ_MAGIC: u64 = 0x524A_4F55_524E_414C;
/// Magic of a WAL header.
const WAL_MAGIC: u64 = 0x5741_4C48_4452_5F31;
/// Bytes of a WAL frame header preceding each page image.
const WAL_FRAME_HDR: u64 = 64;

/// Pager-attributed I/O counts (the "SQLite DB / Journal" columns of
/// Table 1 come from here).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerStats {
    /// Pages written to the database file.
    pub db_writes: u64,
    /// Page-equivalents written to the rollback journal or WAL
    /// (headers included).
    pub journal_writes: u64,
    /// fsync calls issued by the pager.
    pub fsyncs: u64,
    /// Pages read (from DB file or WAL).
    pub reads: u64,
    /// WAL checkpoints performed.
    pub checkpoints: u64,
    /// Directory syncs after journal deletion (SQLite's dirsync, which
    /// makes the rollback-journal commit point durable).
    pub dirsyncs: u64,
    /// Dirty pages spilled before commit (steal events).
    pub spills: u64,
}

#[derive(Debug)]
struct Frame {
    data: Vec<u8>,
    dirty: bool,
    tick: u64,
}

/// The pager over one database file.
#[derive(Debug)]
pub struct Pager<D: BlockDevice> {
    fs: SharedFs<D>,
    pub(crate) name: String,
    db_ino: Ino,
    mode: DbJournalMode,
    page_size: usize,
    cache: HashMap<PageNo, Frame>,
    cache_cap: usize,
    tick: u64,

    /// Committed page count (header field), plus in-tx growth.
    page_count: u32,
    freelist_head: u32,
    schema_root: u32,

    in_tx: bool,
    tid: Option<Tid>,
    /// Open transaction was started with [`Pager::begin_concurrent`]: it
    /// holds a device snapshot and validates first-committer-wins at
    /// commit.
    concurrent: bool,
    dirty_in_tx: HashSet<PageNo>,

    // Rollback-journal state.
    journal_ino: Option<Ino>,
    journaled: Vec<PageNo>,
    journaled_set: HashSet<PageNo>,
    journal_synced_records: u32,
    /// Master-journal name recorded in the journal header during a
    /// multi-file commit (§4.3 / SQLite's master journal protocol).
    master_name: Option<String>,
    /// Page count at transaction start (journal restores it on rollback).
    tx_orig_page_count: u32,
    /// Header triple (page_count, freelist_head, schema_root) at
    /// `BEGIN CONCURRENT`: the header page is only force-written when the
    /// triple changed, so disjoint concurrent writers do not all collide
    /// on page 0.
    tx_orig_header: (u32, u32, u32),

    // WAL state.
    wal_ino: Option<Ino>,
    /// page -> byte offset of the latest committed (or own-tx) frame image.
    wal_index: HashMap<PageNo, u64>,
    /// Append offset in the WAL file.
    wal_end: u64,
    /// Frames since the last checkpoint.
    wal_frames: u32,
    /// Frames appended by the open transaction, with the index entry they
    /// displaced (restored on rollback).
    tx_frames: Vec<(PageNo, Option<u64>)>,
    /// File offset just past the last *committed* frame.
    wal_last_commit_end: u64,
    /// Checkpoint threshold in frames (SQLite default: 1000).
    pub wal_autocheckpoint: u32,

    stats: PagerStats,

    /// Telemetry sink plus the clock that timestamps its spans; absent
    /// until [`Pager::set_recorder`] installs them.
    recorder: Telemetry,
    clock: Option<SimClock>,
}

impl<D: BlockDevice> Pager<D> {
    /// Opens (creating if necessary) the database file `name`, recovering
    /// from a hot rollback journal or an existing WAL as appropriate.
    pub fn open(fs: SharedFs<D>, name: &str, mode: DbJournalMode) -> Result<Self> {
        let page_size = fs.borrow().page_size();
        let existing = fs.borrow().exists(name);
        let db_ino = if existing {
            fs.borrow().open(name)?
        } else {
            fs.borrow_mut().create(name)?
        };
        let mut pager = Pager {
            fs,
            name: name.to_string(),
            db_ino,
            mode,
            page_size,
            cache: HashMap::new(),
            // SQLite's default cache_size is ~2 MB; with the paper's 8 KB
            // pages that is 256 frames.
            cache_cap: 256,
            tick: 0,
            page_count: 1,
            freelist_head: 0,
            schema_root: 0,
            in_tx: false,
            tid: None,
            concurrent: false,
            dirty_in_tx: HashSet::new(),
            journal_ino: None,
            journaled: Vec::new(),
            journaled_set: HashSet::new(),
            journal_synced_records: 0,
            master_name: None,
            tx_orig_page_count: 1,
            tx_orig_header: (1, 0, 0),
            wal_ino: None,
            wal_index: HashMap::new(),
            wal_end: 0,
            wal_frames: 0,
            tx_frames: Vec::new(),
            wal_last_commit_end: 0,
            wal_autocheckpoint: 1000,
            stats: PagerStats::default(),
            recorder: Telemetry::disabled(),
            clock: None,
        };
        if mode.is_rollback() {
            pager.recover_hot_journal()?;
        }
        if mode == DbJournalMode::Wal {
            // The newest header may live in the WAL: index it first.
            pager.wal_open()?;
        }
        if existing {
            pager.load_header()?;
        } else {
            // Fresh database: header page 0.
            let mut hdr = vec![0u8; page_size];
            hdr[0..8].copy_from_slice(&DB_MAGIC.to_le_bytes());
            hdr[8..12].copy_from_slice(&1u32.to_le_bytes());
            pager.fs.borrow_mut().write(db_ino, 0, &hdr, None)?;
            pager.stats.db_writes += 1;
        }
        Ok(pager)
    }

    /// Bytes per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pager statistics.
    pub fn stats(&self) -> &PagerStats {
        &self.stats
    }

    /// Resets statistics between experiment phases.
    pub fn reset_stats(&mut self) {
        self.stats = PagerStats::default();
    }

    /// Root page of the schema table (0 = not yet created).
    pub fn schema_root(&self) -> PageNo {
        self.schema_root
    }

    /// Records the schema root (dirties the header).
    pub fn set_schema_root(&mut self, pgno: PageNo) -> Result<()> {
        self.schema_root = pgno;
        self.write_header()
    }

    /// Shared file system handle.
    pub fn shared_fs(&self) -> SharedFs<D> {
        Rc::clone(&self.fs)
    }

    fn load_header(&mut self) -> Result<()> {
        let hdr = self.read_page_raw(0)?;
        let magic = get_u64(&hdr, 0);
        if magic == 0 {
            // The file was created but its header never reached storage
            // before a crash: treat as a fresh, empty database (SQLite
            // does the same for zero-length files).
            self.page_count = 1;
            self.freelist_head = 0;
            self.schema_root = 0;
            return Ok(());
        }
        if magic != DB_MAGIC {
            return Err(DbError::Corrupt("bad database header magic"));
        }
        self.page_count = get_u32(&hdr, 8);
        self.freelist_head = get_u32(&hdr, 12);
        self.schema_root = get_u32(&hdr, 16);
        Ok(())
    }

    fn write_header(&mut self) -> Result<()> {
        let mut hdr = self.page(0)?;
        hdr[0..8].copy_from_slice(&DB_MAGIC.to_le_bytes());
        hdr[8..12].copy_from_slice(&self.page_count.to_le_bytes());
        hdr[12..16].copy_from_slice(&self.freelist_head.to_le_bytes());
        hdr[16..20].copy_from_slice(&self.schema_root.to_le_bytes());
        self.put(0, hdr)
    }

    // --- transactions -------------------------------------------------------

    /// True if a transaction is open.
    pub fn in_tx(&self) -> bool {
        self.in_tx
    }

    /// Installs a telemetry handle and the simulated clock that
    /// timestamps its spans (pass clones of the stack-wide pair).
    pub fn set_recorder(&mut self, clock: SimClock, recorder: Telemetry) {
        self.clock = Some(clock);
        self.recorder = recorder;
    }

    pub(crate) fn span_start(&self) -> Option<Nanos> {
        self.clock.as_ref().map(SimClock::now)
    }

    pub(crate) fn record_span(&self, op: OpClass, tid: u64, lpn: u64, t_start: Option<Nanos>) {
        if let (Some(clock), Some(t0)) = (&self.clock, t_start) {
            self.recorder.record_span(op, tid, lpn, t0, clock.now());
        }
    }

    /// Begins a transaction.
    pub fn begin(&mut self) -> Result<()> {
        if self.in_tx {
            return Err(DbError::TxState("transaction already active"));
        }
        self.in_tx = true;
        self.tx_orig_page_count = self.page_count;
        if self.mode == DbJournalMode::Off {
            self.tid = Some(self.fs.borrow_mut().begin_tx());
        }
        Ok(())
    }

    /// Begins a snapshot (`BEGIN CONCURRENT`) transaction, `Off` mode
    /// only. The transaction reads the database as of this call; its
    /// writes validate first-committer-wins inside the device at commit,
    /// and a loser surfaces as [`DbError::Conflict`] already rolled back.
    /// The pager cache is cleared so every page is re-fetched under the
    /// snapshot — another connection on the same file system may have
    /// committed since the cache was filled.
    pub fn begin_concurrent(&mut self) -> Result<()> {
        if self.mode != DbJournalMode::Off {
            return Err(DbError::TxState("BEGIN CONCURRENT needs journal mode Off"));
        }
        if self.in_tx {
            return Err(DbError::TxState("transaction already active"));
        }
        let tid = self.fs.borrow_mut().begin_tx_concurrent()?;
        self.in_tx = true;
        self.concurrent = true;
        self.tid = Some(tid);
        self.cache.clear();
        // Header fields re-read under the snapshot: a concurrent commit
        // by another connection must not bleed into this transaction.
        self.load_header()?;
        self.tx_orig_page_count = self.page_count;
        self.tx_orig_header = (self.page_count, self.freelist_head, self.schema_root);
        Ok(())
    }

    /// Commits the open transaction using the mode's protocol.
    pub fn commit(&mut self) -> Result<()> {
        if !self.in_tx {
            return Err(DbError::TxState("no transaction active"));
        }
        if self.dirty_in_tx.is_empty() && self.journal_ino.is_none() {
            // Read-only transaction: nothing to make durable — but a
            // snapshot transaction still holds device state to release.
            if self.concurrent {
                if let Some(tid) = self.tid {
                    self.fs.borrow_mut().abort_tx(tid)?;
                }
            }
            self.end_tx();
            return Ok(());
        }
        let t0 = self.span_start();
        let res = match self.mode {
            m if m.is_rollback() => self.commit_rollback_mode(),
            DbJournalMode::Wal => self.commit_wal_mode(),
            _ => self.commit_off_mode(),
        };
        if let Err(e) = res {
            return Err(self.unwind_conflict(e)?);
        }
        self.record_span(OpClass::PagerFlush, self.tid.unwrap_or(0), 0, t0);
        self.end_tx();
        Ok(())
    }

    /// Conflict cleanup for a `BEGIN CONCURRENT` loser: the device and
    /// file system have already rolled the transaction back, so only the
    /// pager's own state needs unwinding. Maps the device error to
    /// [`DbError::Conflict`]; any other error passes through untouched.
    fn unwind_conflict(&mut self, e: DbError) -> Result<DbError> {
        if !(self.concurrent && e == DbError::Fs(FsError::Dev(xftl_ftl::DevError::Conflict))) {
            return Ok(e);
        }
        self.drop_dirty_cache();
        self.end_tx();
        self.load_header()?;
        Ok(DbError::Conflict)
    }

    /// Rolls the open transaction back.
    pub fn rollback(&mut self) -> Result<()> {
        if !self.in_tx {
            return Err(DbError::TxState("no transaction active"));
        }
        match self.mode {
            m if m.is_rollback() => self.rollback_journal_mode()?,
            DbJournalMode::Wal => {
                // Frames spilled by this transaction are forgotten; index
                // entries they displaced come back, and the file tail is
                // rewound so the next transaction overwrites them.
                for (pgno, prev) in std::mem::take(&mut self.tx_frames).into_iter().rev() {
                    match prev {
                        Some(off) => {
                            self.wal_index.insert(pgno, off);
                        }
                        None => {
                            self.wal_index.remove(&pgno);
                        }
                    }
                }
                self.wal_end = self.wal_last_commit_end;
                self.drop_dirty_cache();
            }
            _ => {
                self.drop_dirty_cache();
                let Some(tid) = self.tid else {
                    unreachable!("Off-mode tx has a tid")
                };
                self.fs.borrow_mut().abort_tx(tid)?;
            }
        }
        self.page_count = self.tx_orig_page_count;
        self.load_header()?;
        self.end_tx();
        Ok(())
    }

    fn end_tx(&mut self) {
        self.in_tx = false;
        self.tid = None;
        if self.concurrent {
            // Pages fetched under the snapshot may trail commits made by
            // other connections meanwhile; drop them so later reads
            // refetch current state.
            self.cache.clear();
            self.concurrent = false;
        }
        self.dirty_in_tx.clear();
        self.journaled.clear();
        self.journaled_set.clear();
        self.journal_synced_records = 0;
        self.master_name = None;
        self.tx_frames.clear();
    }

    fn drop_dirty_cache(&mut self) {
        let dirty: Vec<PageNo> = std::mem::take(&mut self.dirty_in_tx).into_iter().collect();
        for pgno in dirty {
            self.cache.remove(&pgno);
        }
    }

    // --- rollback-journal protocol -------------------------------------------

    fn journal_name(&self) -> String {
        format!("{}-journal", self.name)
    }

    fn ensure_journal(&mut self) -> Result<Ino> {
        if let Some(ino) = self.journal_ino {
            return Ok(ino);
        }
        // DELETE mode creates the journal per transaction (Figure 1);
        // TRUNCATE/PERSIST reuse the file left by the previous commit.
        // Only a missing file falls through to create — a device failure
        // must propagate, not silently spawn a fresh journal.
        let name = self.journal_name();
        let existing = self.fs.borrow().open(&name);
        let ino = match existing {
            Ok(ino) => ino,
            Err(FsError::NotFound) => self.fs.borrow_mut().create(&name)?,
            Err(e) => return Err(e.into()),
        };
        // Header placeholder (record count 0) fills the first page.
        let hdr = self.encode_journal_header(0);
        self.fs.borrow_mut().write(ino, 0, &hdr, None)?;
        self.stats.journal_writes += 1;
        self.journal_ino = Some(ino);
        Ok(ino)
    }

    /// Finalizes the journal after a successful commit, rollback, or
    /// recovery — the step whose durability is the rollback-journal commit
    /// point. The strategy is the journal-mode knob: DELETE unlinks (plus
    /// dirsync), TRUNCATE shrinks to zero, PERSIST zeroes the header.
    fn finalize_journal(&mut self) -> Result<()> {
        let Some(ino) = self.journal_ino.take() else {
            return Ok(());
        };
        match self.mode {
            DbJournalMode::RollbackTruncate => {
                self.fs.borrow_mut().truncate(ino, 0)?;
                self.fs.borrow_mut().sync_meta(None)?;
                self.stats.dirsyncs += 1;
            }
            DbJournalMode::RollbackPersist => {
                let zero = vec![0u8; self.page_size];
                self.fs.borrow_mut().write(ino, 0, &zero, None)?;
                self.stats.journal_writes += 1;
                self.fs.borrow_mut().fsync(ino, None)?;
                self.stats.fsyncs += 1;
            }
            _ => {
                self.fs.borrow_mut().unlink(&self.journal_name())?;
                self.fs.borrow_mut().sync_meta(None)?;
                self.stats.dirsyncs += 1;
            }
        }
        Ok(())
    }

    fn encode_journal_header(&self, records: u32) -> Vec<u8> {
        let mut hdr = vec![0u8; self.page_size];
        hdr[0..8].copy_from_slice(&RJ_MAGIC.to_le_bytes());
        hdr[8..12].copy_from_slice(&records.to_le_bytes());
        hdr[12..16].copy_from_slice(&self.tx_orig_page_count.to_le_bytes());
        for (i, pgno) in self.journaled.iter().take(records as usize).enumerate() {
            let off = 16 + i * 4;
            hdr[off..off + 4].copy_from_slice(&pgno.to_le_bytes());
        }
        // Master-journal name in the trailing 256 bytes of the header.
        if let Some(m) = &self.master_name {
            let tail = self.page_size - 256;
            let bytes = m.as_bytes();
            let len = bytes.len().min(250);
            hdr[tail..tail + 2].copy_from_slice(&(len as u16).to_le_bytes());
            hdr[tail + 2..tail + 2 + len].copy_from_slice(&bytes[..len]);
        }
        hdr
    }

    fn decode_master_name(&self, hdr: &[u8]) -> Option<String> {
        let tail = self.page_size - 256;
        let len = usize::from(get_u16(hdr, tail));
        if len == 0 || len > 250 {
            return None;
        }
        Some(String::from_utf8_lossy(&hdr[tail + 2..tail + 2 + len]).into_owned())
    }

    /// Copies the pre-transaction image of `pgno` into the journal (done
    /// once per page per transaction, *before* the page is modified).
    fn journal_original(&mut self, pgno: PageNo) -> Result<()> {
        if self.journaled_set.contains(&pgno) || pgno >= self.tx_orig_page_count {
            return Ok(()); // already saved, or the page is new in this tx
        }
        let original = match self.cache.get(&pgno) {
            Some(f) if !f.dirty => f.data.clone(),
            Some(_) => unreachable!("page journaled after modification"),
            None => self.read_page_raw(pgno)?,
        };
        let ino = self.ensure_journal()?;
        let slot = self.journaled.len() as u64;
        let off = (1 + slot) * self.page_size as u64;
        self.fs.borrow_mut().write(ino, off, &original, None)?;
        self.stats.journal_writes += 1;
        self.journaled.push(pgno);
        self.journaled_set.insert(pgno);
        Ok(())
    }

    /// Syncs the journal so far (records + header). Needed before any
    /// uncommitted page may spill to the DB file, and at commit.
    fn sync_journal(&mut self) -> Result<()> {
        let Some(ino) = self.journal_ino else {
            return Ok(());
        };
        // fsync #1: the record pages.
        self.fs.borrow_mut().fsync(ino, None)?;
        self.stats.fsyncs += 1;
        // Header with the final record count, then fsync #2.
        let hdr = self.encode_journal_header(self.journaled.len() as u32);
        self.fs.borrow_mut().write(ino, 0, &hdr, None)?;
        self.stats.journal_writes += 1;
        self.fs.borrow_mut().fsync(ino, None)?;
        self.stats.fsyncs += 1;
        self.journal_synced_records = self.journaled.len() as u32;
        Ok(())
    }

    fn commit_rollback_mode(&mut self) -> Result<()> {
        self.write_header()?;
        self.sync_journal()?;
        // Force: write every dirty page to the database file.
        let mut dirty: Vec<PageNo> = self.dirty_in_tx.iter().copied().collect();
        dirty.sort_unstable();
        for pgno in dirty {
            let data = match self.cache.get_mut(&pgno) {
                Some(f) => {
                    f.dirty = false;
                    f.data.clone()
                }
                // Spilled under cache pressure: already written home; the
                // fsync below makes it durable.
                None => continue,
            };
            self.fs.borrow_mut().write(
                self.db_ino,
                pgno as u64 * self.page_size as u64,
                &data,
                None,
            )?;
            self.stats.db_writes += 1;
        }
        self.fs.borrow_mut().fsync(self.db_ino, None)?;
        self.stats.fsyncs += 1;
        // Commit point: finalize the journal (delete / truncate / zero
        // per the mode), durably, so a stale journal can never roll the
        // transaction back after a crash.
        self.finalize_journal()?;
        Ok(())
    }

    fn rollback_journal_mode(&mut self) -> Result<()> {
        // Undo spilled pages from the journal, drop cached changes.
        self.drop_dirty_cache();
        if let Some(ino) = self.journal_ino {
            // Only records already synced could have mattered; restoring
            // all journaled originals is always safe.
            let records = self.journaled.clone();
            for (i, pgno) in records.iter().enumerate() {
                let mut buf = vec![0u8; self.page_size];
                let off = (1 + i as u64) * self.page_size as u64;
                self.fs.borrow_mut().read(ino, off, &mut buf, None)?;
                self.fs.borrow_mut().write(
                    self.db_ino,
                    *pgno as u64 * self.page_size as u64,
                    &buf,
                    None,
                )?;
                self.stats.db_writes += 1;
            }
            self.fs.borrow_mut().fsync(self.db_ino, None)?;
            self.stats.fsyncs += 1;
            self.journal_ino = Some(ino);
            self.finalize_journal()?;
        }
        Ok(())
    }

    /// Open-time hot-journal recovery (§6.4: copy originals back, delete
    /// the journal).
    fn recover_hot_journal(&mut self) -> Result<()> {
        let jname = self.journal_name();
        let Ok(ino) = self.fs.borrow().open(&jname) else {
            return Ok(());
        };
        let mut hdr = vec![0u8; self.page_size];
        let n = self.fs.borrow_mut().read(ino, 0, &mut hdr, None)?;
        let valid = n == self.page_size && get_u64(&hdr, 0) == RJ_MAGIC;
        if valid {
            // A journal naming a master is hot only while the master file
            // exists; a missing master means the group transaction already
            // committed (the master's deletion is the group commit point).
            if let Some(master) = self.decode_master_name(&hdr) {
                if !self.fs.borrow().exists(&master) {
                    self.fs.borrow_mut().unlink(&jname)?;
                    self.fs.borrow_mut().sync_meta(None)?;
                    self.stats.dirsyncs += 1;
                    return Ok(());
                }
            }
            let records = get_u32(&hdr, 8);
            for i in 0..records {
                let off = 16 + (i as usize) * 4;
                let pgno = get_u32(&hdr, off);
                let mut buf = vec![0u8; self.page_size];
                let foff = (1 + i as u64) * self.page_size as u64;
                self.fs.borrow_mut().read(ino, foff, &mut buf, None)?;
                self.fs.borrow_mut().write(
                    self.db_ino,
                    pgno as u64 * self.page_size as u64,
                    &buf,
                    None,
                )?;
                self.stats.db_writes += 1;
            }
            if records > 0 {
                self.fs.borrow_mut().fsync(self.db_ino, None)?;
                self.stats.fsyncs += 1;
            }
        }
        self.journal_ino = Some(ino);
        self.finalize_journal()?;
        Ok(())
    }

    // --- WAL protocol ---------------------------------------------------------

    fn wal_name(&self) -> String {
        format!("{}-wal", self.name)
    }

    /// Opens (or creates) the WAL and rebuilds the in-RAM index from the
    /// committed frames (§6.4's WAL recovery path when the file is found
    /// after a crash).
    fn wal_open(&mut self) -> Result<()> {
        let wname = self.wal_name();
        let exists = self.fs.borrow().exists(&wname);
        let ino = if exists {
            self.fs.borrow().open(&wname)?
        } else {
            let ino = self.fs.borrow_mut().create(&wname)?;
            let mut hdr = vec![0u8; WAL_FRAME_HDR as usize];
            hdr[0..8].copy_from_slice(&WAL_MAGIC.to_le_bytes());
            self.fs.borrow_mut().write(ino, 0, &hdr, None)?;
            ino
        };
        self.wal_ino = Some(ino);
        self.wal_index.clear();
        self.wal_frames = 0;
        self.wal_end = WAL_FRAME_HDR;
        self.wal_last_commit_end = WAL_FRAME_HDR;
        if !exists {
            return Ok(());
        }
        // Scan committed frames.
        let size = self.fs.borrow().size(ino)?;
        let frame_len = WAL_FRAME_HDR + self.page_size as u64;
        let mut off = WAL_FRAME_HDR;
        let mut pending: Vec<(PageNo, u64)> = Vec::new();
        while off + frame_len <= size {
            let mut fh = vec![0u8; WAL_FRAME_HDR as usize];
            self.fs.borrow_mut().read(ino, off, &mut fh, None)?;
            let pgno = get_u32(&fh, 0);
            let commit_size = get_u32(&fh, 4);
            let magic_ok = get_u64(&fh, 8) == WAL_MAGIC;
            if !magic_ok {
                break;
            }
            pending.push((pgno, off + WAL_FRAME_HDR));
            self.wal_frames += 1;
            off += frame_len;
            if commit_size != 0 {
                // Commit frame: everything pending becomes visible.
                for (p, o) in pending.drain(..) {
                    self.wal_index.insert(p, o);
                }
                self.page_count = self.page_count.max(commit_size);
                self.wal_end = off;
                self.wal_last_commit_end = off;
            }
        }
        Ok(())
    }

    /// Appends one frame; returns the payload offset.
    fn wal_append_frame(&mut self, pgno: PageNo, data: &[u8], commit_size: u32) -> Result<u64> {
        let Some(ino) = self.wal_ino else {
            unreachable!("WAL open in Wal mode")
        };
        let mut frame = Vec::with_capacity(WAL_FRAME_HDR as usize + data.len());
        let mut fh = vec![0u8; WAL_FRAME_HDR as usize];
        fh[0..4].copy_from_slice(&pgno.to_le_bytes());
        fh[4..8].copy_from_slice(&commit_size.to_le_bytes());
        fh[8..16].copy_from_slice(&WAL_MAGIC.to_le_bytes());
        frame.extend_from_slice(&fh);
        frame.extend_from_slice(data);
        let off = self.wal_end;
        self.fs.borrow_mut().write(ino, off, &frame, None)?;
        // Page-equivalents: a frame is a bit more than one page.
        self.stats.journal_writes += 1;
        self.wal_end = off + frame.len() as u64;
        self.wal_frames += 1;
        Ok(off + WAL_FRAME_HDR)
    }

    fn commit_wal_mode(&mut self) -> Result<()> {
        self.write_header()?;
        let mut dirty: Vec<PageNo> = self.dirty_in_tx.iter().copied().collect();
        dirty.sort_unstable();
        let last = dirty.len().saturating_sub(1);
        for (i, pgno) in dirty.iter().enumerate() {
            // A spilled page already has an (uncommitted) frame; re-read it
            // so the final, commit-flagged frame sequence stays intact.
            let data = match self.cache.get_mut(pgno) {
                Some(f) => {
                    f.dirty = false;
                    f.data.clone()
                }
                None => self.read_page_raw(*pgno)?,
            };
            let commit_size = if i == last { self.page_count } else { 0 };
            let off = self.wal_append_frame(*pgno, &data, commit_size)?;
            self.wal_index.insert(*pgno, off);
        }
        let Some(ino) = self.wal_ino else {
            unreachable!("WAL open")
        };
        self.fs.borrow_mut().fsync(ino, None)?;
        self.stats.fsyncs += 1;
        self.wal_last_commit_end = self.wal_end;
        if self.wal_frames >= self.wal_autocheckpoint {
            self.wal_checkpoint()?;
        }
        Ok(())
    }

    /// Copies the newest version of every WAL-resident page into the
    /// database file and resets the log (SQLite's checkpoint).
    pub fn wal_checkpoint(&mut self) -> Result<()> {
        if self.wal_index.is_empty() {
            return Ok(());
        }
        self.stats.checkpoints += 1;
        let mut entries: Vec<(PageNo, u64)> =
            self.wal_index.iter().map(|(&p, &o)| (p, o)).collect();
        entries.sort_unstable();
        let Some(ino) = self.wal_ino else {
            unreachable!("WAL open")
        };
        for (pgno, off) in entries {
            let mut buf = vec![0u8; self.page_size];
            self.fs.borrow_mut().read(ino, off, &mut buf, None)?;
            self.fs.borrow_mut().write(
                self.db_ino,
                pgno as u64 * self.page_size as u64,
                &buf,
                None,
            )?;
            self.stats.db_writes += 1;
        }
        self.fs.borrow_mut().fsync(self.db_ino, None)?;
        self.stats.fsyncs += 1;
        self.fs.borrow_mut().truncate(ino, WAL_FRAME_HDR)?;
        self.wal_index.clear();
        self.wal_frames = 0;
        self.wal_end = WAL_FRAME_HDR;
        self.wal_last_commit_end = WAL_FRAME_HDR;
        Ok(())
    }

    // --- Off (X-FTL) protocol ---------------------------------------------------

    fn commit_off_mode(&mut self) -> Result<()> {
        // A concurrent transaction skips the header force-write when
        // nothing in it changed: otherwise every pair of writers would
        // collide on page 0 and first-committer-wins would serialize them
        // all. (Real `BEGIN CONCURRENT` has the same page-1 hotspot.)
        let header = (self.page_count, self.freelist_head, self.schema_root);
        if !self.concurrent || header != self.tx_orig_header {
            self.write_header()?;
        }
        let Some(tid) = self.tid else {
            unreachable!("Off-mode tx has a tid")
        };
        let mut dirty: Vec<PageNo> = self.dirty_in_tx.iter().copied().collect();
        dirty.sort_unstable();
        for pgno in dirty {
            let data = match self.cache.get_mut(&pgno) {
                Some(f) => {
                    f.dirty = false;
                    f.data.clone()
                }
                // Spilled: already stolen to the device under this tid.
                None => continue,
            };
            self.fs.borrow_mut().write(
                self.db_ino,
                pgno as u64 * self.page_size as u64,
                &data,
                Some(tid),
            )?;
            self.stats.db_writes += 1;
        }
        // Single fsync: force-write plus device commit (§4.3).
        self.fs.borrow_mut().fsync(self.db_ino, Some(tid))?;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Split-phase commit. In `Off` mode the force-write ends with a
    /// `commit_submit` instead of the blocking commit: the transaction is
    /// visible once this returns, and the ticket names the device group
    /// flush that will make it durable. The caller keeps issuing the next
    /// transaction's writes while this one's commit is in flight, redeeming
    /// tickets with [`Pager::commit_wait`] (a queue-depth > 1 commit
    /// pipeline). Journal modes have no split phase — they commit blocking
    /// here and hand back an already-durable ticket.
    pub fn commit_submit(&mut self) -> Result<CommitTicket> {
        if self.mode != DbJournalMode::Off {
            self.commit()?;
            return Ok(CommitTicket::immediate(0));
        }
        if !self.in_tx {
            return Err(DbError::TxState("no transaction active"));
        }
        if self.dirty_in_tx.is_empty() {
            if self.concurrent {
                if let Some(tid) = self.tid {
                    self.fs.borrow_mut().abort_tx(tid)?;
                }
            }
            self.end_tx();
            return Ok(CommitTicket::immediate(0));
        }
        let t0 = self.span_start();
        let header = (self.page_count, self.freelist_head, self.schema_root);
        if !self.concurrent || header != self.tx_orig_header {
            self.write_header()?;
        }
        let Some(tid) = self.tid else {
            unreachable!("Off-mode tx has a tid")
        };
        let res = (|| {
            let mut dirty: Vec<PageNo> = self.dirty_in_tx.iter().copied().collect();
            dirty.sort_unstable();
            for pgno in dirty {
                let data = match self.cache.get_mut(&pgno) {
                    Some(f) => {
                        f.dirty = false;
                        f.data.clone()
                    }
                    // Spilled: already stolen to the device under this tid.
                    None => continue,
                };
                self.fs.borrow_mut().write(
                    self.db_ino,
                    pgno as u64 * self.page_size as u64,
                    &data,
                    Some(tid),
                )?;
                self.stats.db_writes += 1;
            }
            self.fs.borrow_mut().fsync_submit(self.db_ino, tid)
        })();
        let ticket = match res {
            Ok(t) => t,
            Err(e) => return Err(self.unwind_conflict(e.into())?),
        };
        self.stats.fsyncs += 1;
        self.record_span(OpClass::PagerFlush, tid, 0, t0);
        self.end_tx();
        Ok(ticket)
    }

    /// Blocks until the commit named by `ticket` is durable. Tickets from
    /// the journal-mode fallback (or an empty transaction) are already
    /// durable and return immediately.
    pub fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()> {
        if ticket.is_immediate() {
            return Ok(());
        }
        self.fs.borrow_mut().fsync_wait(ticket)?;
        Ok(())
    }

    // --- multi-file transactions (§4.3) ---------------------------------------

    /// Name of this database's rollback journal file.
    pub fn journal_file_name(&self) -> String {
        self.journal_name()
    }

    /// Journal mode of this pager.
    pub fn mode(&self) -> DbJournalMode {
        self.mode
    }

    /// The device transaction id of the open transaction (Off mode).
    pub fn current_tid(&self) -> Option<Tid> {
        self.tid
    }

    /// Begins a transaction that shares `tid` with other databases on the
    /// same file system (`Off` mode only): all of their updates commit
    /// atomically with one device `commit(tid)`.
    pub fn begin_with_tid(&mut self, tid: Tid) -> Result<()> {
        if self.mode != DbJournalMode::Off {
            return Err(DbError::TxState("shared-tid transactions need Off mode"));
        }
        if self.in_tx {
            return Err(DbError::TxState("transaction already active"));
        }
        self.in_tx = true;
        self.tx_orig_page_count = self.page_count;
        self.tid = Some(tid);
        Ok(())
    }

    /// Multi-file commit, `Off` mode: flushes this database's pages under
    /// the shared tid without the device commit (the coordinator issues it
    /// once for the whole group).
    pub fn commit_off_deferred(&mut self) -> Result<()> {
        if !self.in_tx {
            return Err(DbError::TxState("no transaction active"));
        }
        let Some(tid) = self.tid else {
            unreachable!("Off-mode tx has a tid")
        };
        self.write_header()?;
        let mut dirty: Vec<PageNo> = self.dirty_in_tx.iter().copied().collect();
        dirty.sort_unstable();
        for pgno in dirty {
            let data = match self.cache.get_mut(&pgno) {
                Some(f) => {
                    f.dirty = false;
                    f.data.clone()
                }
                None => continue, // spilled: already on the device under tid
            };
            self.fs.borrow_mut().write(
                self.db_ino,
                pgno as u64 * self.page_size as u64,
                &data,
                Some(tid),
            )?;
            self.stats.db_writes += 1;
        }
        self.fs.borrow_mut().fsync_defer_commit(self.db_ino, tid)?;
        self.stats.fsyncs += 1;
        self.end_tx();
        Ok(())
    }

    /// Multi-file commit, rollback mode, phase 1: records the master
    /// journal name in this database's journal header, syncs the journal,
    /// and force-writes the database pages — but keeps the journal, so the
    /// transaction stays revocable until the master is deleted.
    pub fn master_commit_prepare(&mut self, master: &str) -> Result<()> {
        if !self.mode.is_rollback() {
            return Err(DbError::TxState("master journals need rollback mode"));
        }
        if !self.in_tx {
            return Err(DbError::TxState("no transaction active"));
        }
        self.write_header()?;
        if self.dirty_in_tx.is_empty() && self.journal_ino.is_none() {
            return Ok(()); // read-only participant
        }
        self.ensure_journal()?;
        self.master_name = Some(master.to_string());
        self.sync_journal()?;
        let mut dirty: Vec<PageNo> = self.dirty_in_tx.iter().copied().collect();
        dirty.sort_unstable();
        for pgno in dirty {
            let data = match self.cache.get_mut(&pgno) {
                Some(f) => {
                    f.dirty = false;
                    f.data.clone()
                }
                None => continue,
            };
            self.fs.borrow_mut().write(
                self.db_ino,
                pgno as u64 * self.page_size as u64,
                &data,
                None,
            )?;
            self.stats.db_writes += 1;
        }
        self.fs.borrow_mut().fsync(self.db_ino, None)?;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Multi-file commit, rollback mode, phase 2 (after the master journal
    /// has been deleted): removes this database's journal and ends the
    /// transaction.
    pub fn master_commit_cleanup(&mut self) -> Result<()> {
        if let Some(_ino) = self.journal_ino.take() {
            self.fs.borrow_mut().unlink(&self.journal_name())?;
            self.fs.borrow_mut().sync_meta(None)?;
            self.stats.dirsyncs += 1;
        }
        self.end_tx();
        Ok(())
    }

    // --- page access ---------------------------------------------------------

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Reads a page bypassing the pager cache (recovery paths).
    fn read_page_raw(&mut self, pgno: PageNo) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; self.page_size];
        self.stats.reads += 1;
        let t0 = self.span_start();
        if self.mode == DbJournalMode::Wal {
            if let Some(&off) = self.wal_index.get(&pgno) {
                let Some(ino) = self.wal_ino else {
                    unreachable!("WAL open")
                };
                self.fs.borrow_mut().read(ino, off, &mut buf, None)?;
                self.record_span(OpClass::PagerFetch, 0, u64::from(pgno), t0);
                return Ok(buf);
            }
        }
        let tid = self.tid;
        self.fs.borrow_mut().read(
            self.db_ino,
            pgno as u64 * self.page_size as u64,
            &mut buf,
            tid,
        )?;
        self.record_span(OpClass::PagerFetch, tid.unwrap_or(0), u64::from(pgno), t0);
        Ok(buf)
    }

    /// Returns a copy of page `pgno`.
    pub fn page(&mut self, pgno: PageNo) -> Result<Vec<u8>> {
        if let Some(f) = self.cache.get_mut(&pgno) {
            f.tick = self.tick + 1;
            self.tick += 1;
            return Ok(f.data.clone());
        }
        let data = self.read_page_raw(pgno)?;
        let tick = self.touch();
        self.cache.insert(
            pgno,
            Frame {
                data: data.clone(),
                dirty: false,
                tick,
            },
        );
        self.evict_if_needed()?;
        Ok(data)
    }

    /// Writes page `pgno` (transaction required). In rollback mode the
    /// original is journaled first.
    pub fn put(&mut self, pgno: PageNo, data: Vec<u8>) -> Result<()> {
        assert_eq!(data.len(), self.page_size, "whole pages only");
        if !self.in_tx {
            return Err(DbError::TxState("page write outside a transaction"));
        }
        if self.mode.is_rollback() && !self.dirty_in_tx.contains(&pgno) {
            self.journal_original(pgno)?;
        }
        let tick = self.touch();
        self.cache.insert(
            pgno,
            Frame {
                data,
                dirty: true,
                tick,
            },
        );
        self.dirty_in_tx.insert(pgno);
        self.evict_if_needed()?;
        Ok(())
    }

    /// Allocates a page (freelist first, then file growth).
    pub fn alloc_page(&mut self) -> Result<PageNo> {
        if self.freelist_head != 0 {
            let pgno = self.freelist_head;
            let page = self.page(pgno)?;
            self.freelist_head = get_u32(&page, 0);
            self.write_header()?;
            return Ok(pgno);
        }
        let pgno = self.page_count;
        self.page_count += 1;
        self.write_header()?;
        // Materialize the new page so reads within the tx see zeros.
        self.put(pgno, vec![0u8; self.page_size])?;
        Ok(pgno)
    }

    /// Returns a page to the freelist.
    pub fn free_page(&mut self, pgno: PageNo) -> Result<()> {
        let mut page = vec![0u8; self.page_size];
        page[0..4].copy_from_slice(&self.freelist_head.to_le_bytes());
        self.put(pgno, page)?;
        self.freelist_head = pgno;
        self.write_header()
    }

    /// Number of pages in the database file.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    fn evict_if_needed(&mut self) -> Result<()> {
        while self.cache.len() > self.cache_cap {
            // Prefer clean victims.
            let victim = self
                .cache
                .iter()
                .filter(|(_, f)| !f.dirty)
                .min_by_key(|(_, f)| f.tick)
                .map(|(&p, _)| p)
                .or_else(|| {
                    self.cache
                        .iter()
                        .min_by_key(|(_, f)| f.tick)
                        .map(|(&p, _)| p)
                });
            let Some(pgno) = victim else { break };
            let Some(frame) = self.cache.remove(&pgno) else {
                unreachable!("victim exists")
            };
            if !frame.dirty {
                continue;
            }
            // Steal: spill an uncommitted page.
            self.stats.spills += 1;
            match self.mode {
                m if m.is_rollback() => {
                    // The original must be durably journaled before the DB
                    // file may be overwritten.
                    if (self.journal_synced_records as usize) < self.journaled.len() {
                        self.sync_journal()?;
                    }
                    self.fs.borrow_mut().write(
                        self.db_ino,
                        pgno as u64 * self.page_size as u64,
                        &frame.data,
                        None,
                    )?;
                    self.stats.db_writes += 1;
                }
                DbJournalMode::Wal => {
                    let off = self.wal_append_frame(pgno, &frame.data, 0)?;
                    let prev = self.wal_index.insert(pgno, off);
                    self.tx_frames.push((pgno, prev));
                }
                _ => {
                    let Some(tid) = self.tid else {
                        unreachable!("Off-mode tx has a tid")
                    };
                    self.fs.borrow_mut().write(
                        self.db_ino,
                        pgno as u64 * self.page_size as u64,
                        &frame.data,
                        Some(tid),
                    )?;
                    self.stats.db_writes += 1;
                }
            }
        }
        Ok(())
    }

    /// Shrinks the pager cache (tests exercise the steal path with this).
    pub fn set_cache_capacity(&mut self, pages: usize) {
        self.cache_cap = pages.max(4);
    }
}
