//! Error type for database operations.

use std::fmt;

use xftl_fs::FsError;
use xftl_ftl::DevError;

/// Errors surfaced by the embedded database.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Underlying file-system error.
    Fs(FsError),
    /// SQL syntax error with a human-readable message.
    Parse(String),
    /// Unknown table, index or column.
    Unknown(String),
    /// Schema object already exists.
    Exists(String),
    /// Statement is invalid against the schema (arity mismatch, etc.).
    Schema(String),
    /// Type error during evaluation.
    Type(String),
    /// Constraint violation (duplicate primary key).
    Constraint(String),
    /// No transaction is active / a transaction is already active.
    TxState(&'static str),
    /// A `BEGIN CONCURRENT` transaction lost first-committer-wins
    /// validation: another transaction committed an overlapping page
    /// first. The transaction has already been rolled back; retry it on
    /// a fresh snapshot (SQLite's `SQLITE_BUSY_SNAPSHOT`).
    Conflict,
    /// Database file is corrupt.
    Corrupt(&'static str),
    /// The storage device has degraded to read-only mode (end of life):
    /// statements that would write fail, queries keep working (SQLite's
    /// `SQLITE_READONLY`).
    ReadOnly,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Fs(e) => write!(f, "storage error: {e}"),
            DbError::Parse(m) => write!(f, "SQL parse error: {m}"),
            DbError::Unknown(m) => write!(f, "no such object: {m}"),
            DbError::Exists(m) => write!(f, "object already exists: {m}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::Type(m) => write!(f, "type error: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::TxState(m) => write!(f, "transaction state error: {m}"),
            DbError::Conflict => {
                write!(f, "transaction conflict: an overlapping commit won (retry)")
            }
            DbError::Corrupt(m) => write!(f, "database corrupt: {m}"),
            DbError::ReadOnly => {
                write!(
                    f,
                    "attempt to write a readonly database (device end-of-life)"
                )
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<FsError> for DbError {
    fn from(e: FsError) -> Self {
        match e {
            FsError::ReadOnly => DbError::ReadOnly,
            other => DbError::Fs(other),
        }
    }
}

impl From<DevError> for DbError {
    fn from(e: DevError) -> Self {
        DbError::from(FsError::from(e))
    }
}

/// Result alias for database operations.
pub type Result<T> = std::result::Result<T, DbError>;
