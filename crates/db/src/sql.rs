//! SQL front end: tokenizer, AST and recursive-descent parser.
//!
//! Covers the dialect the paper's workloads need: CREATE/DROP TABLE and
//! INDEX, INSERT (with OR REPLACE and multi-row VALUES), SELECT with
//! joins, WHERE, ORDER BY, LIMIT and simple aggregates, UPDATE, DELETE,
//! and explicit transactions. `?` placeholders bind positional parameters.

use crate::error::{DbError, Result};
use crate::value::Value;

// --- tokens -----------------------------------------------------------------

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare or quoted identifier (keywords included).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Real(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// Blob literal `x'…'`.
    Blob(Vec<u8>),
    /// Positional bind parameter `?`.
    Param,
    /// Single-character symbol.
    Sym(char),
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// `!=` or `<>`.
    Ne,
    /// End of input.
    Eof,
}

/// Splits SQL text into tokens. Keywords stay `Ident`s (the parser matches
/// them case-insensitively).
pub fn tokenize(sql: &str) -> Result<Vec<Tok>> {
    let b = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return Err(DbError::Parse("unterminated string".into()));
                    }
                    if b[i] == b'\'' {
                        if i + 1 < b.len() && b[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(b[i] as char);
                        i += 1;
                    }
                }
                out.push(Tok::Str(s));
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    s.push(b[i] as char);
                    i += 1;
                }
                if i >= b.len() {
                    return Err(DbError::Parse("unterminated quoted identifier".into()));
                }
                i += 1;
                out.push(Tok::Ident(s));
            }
            'x' | 'X' if i + 1 < b.len() && b[i + 1] == b'\'' => {
                i += 2;
                let start = i;
                while i < b.len() && b[i] != b'\'' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err(DbError::Parse("unterminated blob literal".into()));
                }
                let hex = &sql[start..i];
                i += 1;
                if !hex.len().is_multiple_of(2) {
                    return Err(DbError::Parse("odd-length blob literal".into()));
                }
                let mut bytes = Vec::with_capacity(hex.len() / 2);
                for j in (0..hex.len()).step_by(2) {
                    bytes.push(
                        u8::from_str_radix(&hex[j..j + 2], 16)
                            .map_err(|_| DbError::Parse("bad hex in blob literal".into()))?,
                    );
                }
                out.push(Tok::Blob(bytes));
            }
            '0'..='9' => {
                let start = i;
                let mut is_real = false;
                while i < b.len()
                    && (b[i].is_ascii_digit() || b[i] == b'.' || b[i] == b'e' || b[i] == b'E')
                {
                    if b[i] == b'.' || b[i] == b'e' || b[i] == b'E' {
                        is_real = true;
                    }
                    i += 1;
                }
                let text = &sql[start..i];
                if is_real {
                    out.push(Tok::Real(
                        text.parse()
                            .map_err(|_| DbError::Parse(format!("bad number {text}")))?,
                    ));
                } else {
                    out.push(Tok::Int(
                        text.parse()
                            .map_err(|_| DbError::Parse(format!("bad number {text}")))?,
                    ));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(sql[start..i].to_string()));
            }
            '?' => {
                out.push(Tok::Param);
                i += 1;
            }
            '<' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Tok::Le);
                i += 2;
            }
            '>' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Tok::Ge);
                i += 2;
            }
            '<' if i + 1 < b.len() && b[i + 1] == b'>' => {
                out.push(Tok::Ne);
                i += 2;
            }
            '!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Tok::Ne);
                i += 2;
            }
            '=' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Tok::Sym('='));
                i += 2;
            }
            '(' | ')' | ',' | '*' | '=' | '<' | '>' | '+' | '-' | '/' | '.' | ';' => {
                out.push(Tok::Sym(c));
                i += 1;
            }
            other => return Err(DbError::Parse(format!("unexpected character {other:?}"))),
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

// --- AST --------------------------------------------------------------------

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator names are their own documentation
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Like,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Positional bind parameter (0-based).
    Param(usize),
    /// Column reference, optionally qualified (`t.col`).
    Col(Option<String>, String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr BETWEEN lo AND hi`.
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `expr IN (e1, e2, ...)`.
    InList(Box<Expr>, Vec<Expr>),
    /// Aggregate call: COUNT/SUM/AVG/MIN/MAX. `None` arg = `*`,
    /// bool = DISTINCT.
    Agg(AggFn, Option<Box<Expr>>, bool),
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // function names are their own documentation
pub enum AggFn {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// An expression with an optional `AS` alias.
    Expr(Expr, Option<String>),
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// `AS` alias, if any.
    pub alias: Option<String>,
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColDef {
    /// Column name.
    pub name: String,
    /// Declared type text (informational, like SQLite's type affinity).
    pub decl_type: String,
    /// Declared `INTEGER PRIMARY KEY` (a rowid alias, as in SQLite).
    pub is_pk: bool,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // mirror of the grammar; fields named after clauses
pub enum Stmt {
    CreateTable {
        name: String,
        if_not_exists: bool,
        cols: Vec<ColDef>,
    },
    CreateIndex {
        name: String,
        if_not_exists: bool,
        table: String,
        cols: Vec<String>,
    },
    DropTable {
        name: String,
    },
    DropIndex {
        name: String,
    },
    Insert {
        table: String,
        cols: Vec<String>,
        rows: Vec<Vec<Expr>>,
        or_replace: bool,
    },
    Select {
        items: Vec<SelectItem>,
        from: Option<TableRef>,
        joins: Vec<(TableRef, Expr)>,
        where_: Option<Expr>,
        group_by: Vec<String>,
        having: Option<Expr>,
        order_by: Option<(String, bool)>, // (column, descending)
        limit: Option<u64>,
        offset: u64,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        where_: Option<Expr>,
    },
    Delete {
        table: String,
        where_: Option<Expr>,
    },
    Begin,
    /// `BEGIN CONCURRENT`: snapshot transaction with first-committer-wins
    /// validation at COMMIT (journal mode Off only).
    BeginConcurrent,
    Commit,
    Rollback,
}

// --- parser -----------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    params: usize,
}

/// Parses one statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Stmt> {
    let toks = tokenize(sql)?;
    let mut p = Parser {
        toks,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_sym(';');
    p.expect_eof()?;
    Ok(stmt)
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn kw(&mut self, word: &str) -> bool {
        if let Tok::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(word) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, word: &str) -> Result<()> {
        if self.kw(word) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {word}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if *self.peek() == Tok::Sym(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<()> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {c:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            t => Err(DbError::Parse(format!("expected identifier, found {t:?}"))),
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "trailing tokens at {:?}",
                self.peek()
            )))
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.kw("CREATE") {
            if self.kw("TABLE") {
                return self.create_table();
            }
            if self.kw("INDEX") || (self.kw("UNIQUE") && self.kw("INDEX")) {
                return self.create_index();
            }
            return Err(DbError::Parse(
                "expected TABLE or INDEX after CREATE".into(),
            ));
        }
        if self.kw("DROP") {
            if self.kw("TABLE") {
                return Ok(Stmt::DropTable {
                    name: self.ident()?,
                });
            }
            if self.kw("INDEX") {
                return Ok(Stmt::DropIndex {
                    name: self.ident()?,
                });
            }
            return Err(DbError::Parse("expected TABLE or INDEX after DROP".into()));
        }
        if self.kw("INSERT") {
            return self.insert();
        }
        if self.kw("SELECT") {
            return self.select();
        }
        if self.kw("UPDATE") {
            return self.update();
        }
        if self.kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let where_ = if self.kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Delete { table, where_ });
        }
        if self.kw("BEGIN") {
            if self.kw("CONCURRENT") {
                return Ok(Stmt::BeginConcurrent);
            }
            let _ = self.kw("TRANSACTION") || self.kw("IMMEDIATE") || self.kw("EXCLUSIVE");
            return Ok(Stmt::Begin);
        }
        if self.kw("COMMIT") || self.kw("END") {
            let _ = self.kw("TRANSACTION");
            return Ok(Stmt::Commit);
        }
        if self.kw("ROLLBACK") {
            return Ok(Stmt::Rollback);
        }
        Err(DbError::Parse(format!(
            "unexpected statement start: {:?}",
            self.peek()
        )))
    }

    fn if_not_exists(&mut self) -> bool {
        let save = self.pos;
        if self.kw("IF") && self.kw("NOT") && self.kw("EXISTS") {
            true
        } else {
            self.pos = save;
            false
        }
    }

    fn create_table(&mut self) -> Result<Stmt> {
        let if_not_exists = self.if_not_exists();
        let name = self.ident()?;
        self.expect_sym('(')?;
        let mut cols = Vec::new();
        loop {
            let col_name = self.ident()?;
            let mut decl_type = String::new();
            let mut is_pk = false;
            // Soak up type tokens and constraints until , or ).
            loop {
                match self.peek() {
                    Tok::Sym(',') | Tok::Sym(')') => break,
                    Tok::Ident(s) if s.eq_ignore_ascii_case("PRIMARY") => {
                        self.pos += 1;
                        self.expect_kw("KEY")?;
                        is_pk = true;
                    }
                    Tok::Ident(s)
                        if s.eq_ignore_ascii_case("NOT")
                            || s.eq_ignore_ascii_case("NULL")
                            || s.eq_ignore_ascii_case("UNIQUE")
                            || s.eq_ignore_ascii_case("DEFAULT")
                            || s.eq_ignore_ascii_case("AUTOINCREMENT") =>
                    {
                        // Constraints we accept and ignore (DEFAULT eats
                        // one following literal).
                        let is_default = s.eq_ignore_ascii_case("DEFAULT");
                        self.pos += 1;
                        if is_default {
                            self.next();
                        }
                    }
                    Tok::Ident(s) => {
                        if !decl_type.is_empty() {
                            decl_type.push(' ');
                        }
                        decl_type.push_str(s);
                        self.pos += 1;
                    }
                    Tok::Sym('(') => {
                        // Type size qualifier, e.g. VARCHAR(30).
                        self.pos += 1;
                        while !self.eat_sym(')') {
                            self.pos += 1;
                        }
                    }
                    t => return Err(DbError::Parse(format!("bad column definition at {t:?}"))),
                }
            }
            let pk_is_rowid_alias = is_pk && decl_type.eq_ignore_ascii_case("INTEGER");
            cols.push(ColDef {
                name: col_name,
                decl_type,
                is_pk: pk_is_rowid_alias,
            });
            if !self.eat_sym(',') {
                break;
            }
        }
        self.expect_sym(')')?;
        Ok(Stmt::CreateTable {
            name,
            if_not_exists,
            cols,
        })
    }

    fn create_index(&mut self) -> Result<Stmt> {
        let if_not_exists = self.if_not_exists();
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_sym('(')?;
        let mut cols = Vec::new();
        loop {
            cols.push(self.ident()?);
            let _ = self.kw("ASC") || self.kw("DESC");
            if !self.eat_sym(',') {
                break;
            }
        }
        self.expect_sym(')')?;
        Ok(Stmt::CreateIndex {
            name,
            if_not_exists,
            table,
            cols,
        })
    }

    fn insert(&mut self) -> Result<Stmt> {
        let or_replace = {
            let save = self.pos;
            if self.kw("OR") && self.kw("REPLACE") {
                true
            } else {
                self.pos = save;
                false
            }
        };
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut cols = Vec::new();
        if self.eat_sym('(') {
            loop {
                cols.push(self.ident()?);
                if !self.eat_sym(',') {
                    break;
                }
            }
            self.expect_sym(')')?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym('(')?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(',') {
                    break;
                }
            }
            self.expect_sym(')')?;
            rows.push(row);
            if !self.eat_sym(',') {
                break;
            }
        }
        Ok(Stmt::Insert {
            table,
            cols,
            rows,
            or_replace,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        let has_alias = self.kw("AS") || matches!(self.peek(), Tok::Ident(s) if !is_clause_kw(s));
        let alias = if has_alias { Some(self.ident()?) } else { None };
        Ok(TableRef { table, alias })
    }

    fn select(&mut self) -> Result<Stmt> {
        let mut items = Vec::new();
        loop {
            if self.eat_sym('*') {
                items.push(SelectItem::Star);
            } else {
                let e = self.expr()?;
                let alias = if self.kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr(e, alias));
            }
            if !self.eat_sym(',') {
                break;
            }
        }
        let mut from = None;
        let mut joins = Vec::new();
        if self.kw("FROM") {
            from = Some(self.table_ref()?);
            loop {
                let save = self.pos;
                let inner = self.kw("INNER");
                if self.kw("JOIN") {
                    let t = self.table_ref()?;
                    self.expect_kw("ON")?;
                    let on = self.expr()?;
                    joins.push((t, on));
                } else if self.eat_sym(',') {
                    // Comma join with the condition in WHERE.
                    let t = self.table_ref()?;
                    joins.push((t, Expr::Lit(Value::Int(1))));
                } else {
                    if inner {
                        self.pos = save;
                    }
                    break;
                }
            }
        }
        let where_ = if self.kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.ident()?);
                if !self.eat_sym(',') {
                    break;
                }
            }
        }
        let having = if self.kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.kw("ORDER") {
            self.expect_kw("BY")?;
            let col = self.ident()?;
            let desc = self.kw("DESC");
            let _ = self.kw("ASC");
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.kw("LIMIT") {
            match self.next() {
                Tok::Int(n) if n >= 0 => Some(n as u64),
                t => return Err(DbError::Parse(format!("bad LIMIT {t:?}"))),
            }
        } else {
            None
        };
        let offset = if self.kw("OFFSET") {
            match self.next() {
                Tok::Int(n) if n >= 0 => n as u64,
                t => return Err(DbError::Parse(format!("bad OFFSET {t:?}"))),
            }
        } else {
            0
        };
        Ok(Stmt::Select {
            items,
            from,
            joins,
            where_,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn update(&mut self) -> Result<Stmt> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym('=')?;
            sets.push((col, self.expr()?));
            if !self.eat_sym(',') {
                break;
            }
        }
        let where_ = if self.kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_,
        })
    }

    // Expression precedence: OR < AND < NOT < cmp/LIKE/BETWEEN < add < mul < unary.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Sym('=') => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Sym('<') => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Sym('>') => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            Tok::Ident(s) if s.eq_ignore_ascii_case("LIKE") => Some(BinOp::Like),
            Tok::Ident(s) if s.eq_ignore_ascii_case("IN") => {
                self.pos += 1;
                return self.in_list(lhs, false);
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("NOT") => {
                let save = self.pos;
                self.pos += 1;
                if self.kw("IN") {
                    return self.in_list(lhs, true);
                }
                self.pos = save;
                None
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("BETWEEN") => {
                self.pos += 1;
                let lo = self.add_expr()?;
                self.expect_kw("AND")?;
                let hi = self.add_expr()?;
                return Ok(Expr::Between(Box::new(lhs), Box::new(lo), Box::new(hi)));
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.add_expr()?;
                Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
            }
            None => Ok(lhs),
        }
    }

    fn in_list(&mut self, lhs: Expr, negated: bool) -> Result<Expr> {
        self.expect_sym('(')?;
        let mut list = Vec::new();
        loop {
            list.push(self.expr()?);
            if !self.eat_sym(',') {
                break;
            }
        }
        self.expect_sym(')')?;
        let e = Expr::InList(Box::new(lhs), list);
        Ok(if negated { Expr::Not(Box::new(e)) } else { e })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym('+') => BinOp::Add,
                Tok::Sym('-') => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Sym('*') => BinOp::Mul,
                Tok::Sym('/') => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_sym('-') {
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn agg_fn(name: &str) -> Option<AggFn> {
        if name.eq_ignore_ascii_case("COUNT") {
            Some(AggFn::Count)
        } else if name.eq_ignore_ascii_case("SUM") {
            Some(AggFn::Sum)
        } else if name.eq_ignore_ascii_case("AVG") {
            Some(AggFn::Avg)
        } else if name.eq_ignore_ascii_case("MIN") {
            Some(AggFn::Min)
        } else if name.eq_ignore_ascii_case("MAX") {
            Some(AggFn::Max)
        } else {
            None
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Tok::Int(i) => Ok(Expr::Lit(Value::Int(i))),
            Tok::Real(r) => Ok(Expr::Lit(Value::Real(r))),
            Tok::Str(s) => Ok(Expr::Lit(Value::Text(s))),
            Tok::Blob(b) => Ok(Expr::Lit(Value::Blob(b))),
            Tok::Param => {
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            Tok::Sym('(') => {
                let e = self.expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Expr::Lit(Value::Null)),
            Tok::Ident(name) => {
                if let Some(f) = Self::agg_fn(&name) {
                    if self.eat_sym('(') {
                        if self.eat_sym('*') {
                            self.expect_sym(')')?;
                            return Ok(Expr::Agg(f, None, false));
                        }
                        let distinct = self.kw("DISTINCT");
                        let arg = self.expr()?;
                        self.expect_sym(')')?;
                        return Ok(Expr::Agg(f, Some(Box::new(arg)), distinct));
                    }
                }
                if self.eat_sym('.') {
                    let col = self.ident()?;
                    Ok(Expr::Col(Some(name), col))
                } else {
                    Ok(Expr::Col(None, name))
                }
            }
            t => Err(DbError::Parse(format!(
                "unexpected token {t:?} in expression"
            ))),
        }
    }
}

#[cfg(test)]
mod group_by_tests {
    use super::*;

    #[test]
    fn parses_group_by() {
        let s = parse("SELECT tag, COUNT(*) FROM t GROUP BY tag ORDER BY tag").unwrap();
        match s {
            Stmt::Select {
                group_by, order_by, ..
            } => {
                assert_eq!(group_by, vec!["tag".to_string()]);
                assert_eq!(order_by, Some(("tag".into(), false)));
            }
            _ => panic!("wrong stmt"),
        }
    }

    #[test]
    fn parses_in_having_offset() {
        let s = parse(
            "SELECT g, COUNT(*) FROM t WHERE g IN (1, 2, 3) AND v NOT IN (9)              GROUP BY g HAVING COUNT(*) > 1 ORDER BY g LIMIT 5 OFFSET 2",
        )
        .unwrap();
        match s {
            Stmt::Select {
                where_,
                having,
                limit,
                offset,
                ..
            } => {
                assert!(having.is_some());
                assert_eq!(limit, Some(5));
                assert_eq!(offset, 2);
                let w = where_.unwrap();
                assert!(matches!(w, Expr::Bin(BinOp::And, _, _)));
            }
            _ => panic!("wrong stmt"),
        }
    }

    #[test]
    fn parses_multi_column_group_by() {
        let s = parse("SELECT a, b, SUM(v) FROM t GROUP BY a, b").unwrap();
        match s {
            Stmt::Select { group_by, .. } => {
                assert_eq!(group_by, vec!["a".to_string(), "b".to_string()]);
            }
            _ => panic!("wrong stmt"),
        }
    }
}

fn is_clause_kw(s: &str) -> bool {
    [
        "WHERE", "ORDER", "LIMIT", "JOIN", "INNER", "ON", "SET", "VALUES", "GROUP", "AS",
    ]
    .iter()
    .any(|k| s.eq_ignore_ascii_case(k))
}

/// Simple SQL `LIKE` with `%` and `_`.
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[u8], t: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'%') => (0..=t.len()).any(|i| rec(&p[1..], &t[i..])),
            Some(b'_') => !t.is_empty() && rec(&p[1..], &t[1..]),
            Some(&c) => !t.is_empty() && t[0].eq_ignore_ascii_case(&c) && rec(&p[1..], &t[1..]),
        }
    }
    rec(pattern.as_bytes(), text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basics() {
        let t = tokenize("SELECT a, 'it''s', 3.5, x'0aFF', ? FROM t;").unwrap();
        assert!(t.contains(&Tok::Str("it's".into())));
        assert!(t.contains(&Tok::Real(3.5)));
        assert!(t.contains(&Tok::Blob(vec![0x0A, 0xFF])));
        assert!(t.contains(&Tok::Param));
    }

    #[test]
    fn comments_are_skipped() {
        let t = tokenize("SELECT 1 -- the rest is noise\n, 2").unwrap();
        assert_eq!(t.iter().filter(|x| matches!(x, Tok::Int(_))).count(), 2);
    }

    #[test]
    fn parses_create_table() {
        let s = parse(
            "CREATE TABLE parts (id INTEGER PRIMARY KEY, name VARCHAR(30) NOT NULL, cost REAL)",
        )
        .unwrap();
        match s {
            Stmt::CreateTable { name, cols, .. } => {
                assert_eq!(name, "parts");
                assert_eq!(cols.len(), 3);
                assert!(cols[0].is_pk);
                assert_eq!(cols[1].name, "name");
                assert!(!cols[1].is_pk);
            }
            _ => panic!("wrong stmt"),
        }
    }

    #[test]
    fn text_primary_key_is_not_rowid_alias() {
        let s = parse("CREATE TABLE t (k TEXT PRIMARY KEY, v INT)").unwrap();
        match s {
            Stmt::CreateTable { cols, .. } => assert!(!cols[0].is_pk),
            _ => panic!("wrong stmt"),
        }
    }

    #[test]
    fn parses_insert_multi_row() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, ?)").unwrap();
        match s {
            Stmt::Insert {
                table,
                cols,
                rows,
                or_replace,
            } => {
                assert_eq!(table, "t");
                assert_eq!(cols, vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
                assert!(!or_replace);
                assert_eq!(rows[1][1], Expr::Param(0));
            }
            _ => panic!("wrong stmt"),
        }
    }

    #[test]
    fn parses_select_with_join_where_order_limit() {
        let s = parse(
            "SELECT t.a, u.b FROM t JOIN u ON t.id = u.tid \
             WHERE t.a > 5 AND u.b LIKE 'x%' ORDER BY a DESC LIMIT 10",
        )
        .unwrap();
        match s {
            Stmt::Select {
                items,
                from,
                joins,
                where_,
                order_by,
                limit,
                ..
            } => {
                assert_eq!(items.len(), 2);
                assert_eq!(from.unwrap().table, "t");
                assert_eq!(joins.len(), 1);
                assert!(where_.is_some());
                assert_eq!(order_by, Some(("a".into(), true)));
                assert_eq!(limit, Some(10));
            }
            _ => panic!("wrong stmt"),
        }
    }

    #[test]
    fn parses_aggregates() {
        let s = parse("SELECT COUNT(*), SUM(x), COUNT(DISTINCT y) FROM t").unwrap();
        match s {
            Stmt::Select { items, .. } => {
                assert_eq!(items.len(), 3);
                assert!(matches!(
                    items[0],
                    SelectItem::Expr(Expr::Agg(AggFn::Count, None, false), _)
                ));
                assert!(matches!(
                    items[2],
                    SelectItem::Expr(Expr::Agg(AggFn::Count, Some(_), true), _)
                ));
            }
            _ => panic!("wrong stmt"),
        }
    }

    #[test]
    fn parses_update_delete_tx() {
        assert!(matches!(
            parse("UPDATE t SET a = a + 1 WHERE id = 3").unwrap(),
            Stmt::Update { .. }
        ));
        assert!(matches!(
            parse("DELETE FROM t WHERE a BETWEEN 1 AND 5").unwrap(),
            Stmt::Delete { .. }
        ));
        assert!(matches!(parse("BEGIN TRANSACTION").unwrap(), Stmt::Begin));
        assert!(matches!(parse("COMMIT;").unwrap(), Stmt::Commit));
        assert!(matches!(parse("ROLLBACK").unwrap(), Stmt::Rollback));
    }

    #[test]
    fn parses_begin_concurrent() {
        assert!(matches!(
            parse("BEGIN CONCURRENT").unwrap(),
            Stmt::BeginConcurrent
        ));
        assert!(matches!(
            parse("begin concurrent;").unwrap(),
            Stmt::BeginConcurrent
        ));
        // The modifier must not swallow plain BEGIN variants.
        assert!(matches!(parse("BEGIN IMMEDIATE").unwrap(), Stmt::Begin));
        assert!(matches!(parse("BEGIN").unwrap(), Stmt::Begin));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELEC 1").is_err());
        assert!(parse("INSERT INTO").is_err());
        assert!(parse("CREATE TABLE t (").is_err());
        assert!(tokenize("SELECT 'oops").is_err());
    }

    #[test]
    fn operator_precedence() {
        // a = 1 OR b = 2 AND c = 3  ==  a = 1 OR ((b = 2) AND (c = 3))
        let e = match parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap() {
            Stmt::Select { where_, .. } => where_.unwrap(),
            _ => panic!(),
        };
        match e {
            Expr::Bin(BinOp::Or, _, rhs) => {
                assert!(matches!(*rhs, Expr::Bin(BinOp::And, _, _)));
            }
            _ => panic!("OR should be the top operator"),
        }
    }

    #[test]
    fn like_matching() {
        assert!(like_match("abc", "abc"));
        assert!(like_match("abc", "ABC"));
        assert!(like_match("a%", "abc"));
        assert!(like_match("%c", "abc"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%", ""));
        assert!(!like_match("a%", "b"));
    }
}
