//! The connection: the `sqlite3*`-equivalent handle.
//!
//! A [`Connection`] owns one database file's pager and catalog. Statements
//! run inside the open explicit transaction if there is one (`BEGIN` ...
//! `COMMIT`), otherwise each statement is auto-wrapped in its own
//! transaction — SQLite's autocommit behaviour, which is what makes the
//! per-transaction journal costs of Figure 1 so dominant for the
//! one-statement transactions typical of smartphone apps.

use xftl_ftl::{BlockDevice, Tid};

use crate::catalog::Catalog;
use crate::error::{DbError, Result};
use crate::exec::{run_stmt, ExecOutcome};
use crate::pager::{DbJournalMode, Pager, PagerStats, SharedFs};
use crate::sql::{parse, Stmt};
use crate::value::Value;

/// A connection to one database file.
#[derive(Debug)]
pub struct Connection<D: BlockDevice> {
    pager: Pager<D>,
    catalog: Catalog,
    explicit_tx: bool,
}

impl<D: BlockDevice> Connection<D> {
    /// Opens (creating if needed) the database `name` on the shared file
    /// system, running in the given journal mode. Recovery — rolling back
    /// a hot journal, rebuilding the WAL index — happens here, exactly as
    /// in SQLite's first access after a crash (§6.4).
    pub fn open(fs: SharedFs<D>, name: &str, mode: DbJournalMode) -> Result<Self> {
        let mut pager = Pager::open(fs, name, mode)?;
        let catalog = Catalog::load(&mut pager)?;
        Ok(Connection {
            pager,
            catalog,
            explicit_tx: false,
        })
    }

    /// Executes one SQL statement without parameters.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        self.execute_with(sql, &[])
    }

    /// Installs a telemetry handle and its timestamp clock on the pager
    /// (pass clones of the stack-wide pair) so SQL statements, page
    /// fetches, and commit flushes are recorded.
    pub fn set_recorder(&mut self, clock: xftl_flash::SimClock, recorder: xftl_trace::Telemetry) {
        self.pager.set_recorder(clock, recorder);
    }

    /// Executes one SQL statement with `?` positional parameters.
    pub fn execute_with(&mut self, sql: &str, params: &[Value]) -> Result<ExecOutcome> {
        let t0 = self.pager.span_start();
        let out = self.execute_inner(sql, params);
        self.pager
            .record_span(xftl_trace::OpClass::SqlStatement, 0, 0, t0);
        out
    }

    fn execute_inner(&mut self, sql: &str, params: &[Value]) -> Result<ExecOutcome> {
        let stmt = parse(sql)?;
        match stmt {
            Stmt::Begin => {
                if self.explicit_tx {
                    return Err(DbError::TxState("nested BEGIN"));
                }
                self.pager.begin()?;
                self.explicit_tx = true;
                Ok(ExecOutcome::Done { rows_affected: 0 })
            }
            Stmt::BeginConcurrent => {
                if self.explicit_tx {
                    return Err(DbError::TxState("nested BEGIN"));
                }
                self.pager.begin_concurrent()?;
                // Schema re-read under the snapshot: another connection on
                // the same file may have committed DDL since this catalog
                // was loaded.
                self.catalog = Catalog::load(&mut self.pager)?;
                self.explicit_tx = true;
                Ok(ExecOutcome::Done { rows_affected: 0 })
            }
            Stmt::Commit => {
                if !self.explicit_tx {
                    return Err(DbError::TxState("COMMIT without BEGIN"));
                }
                self.explicit_tx = false;
                if let Err(e) = self.pager.commit() {
                    if e == DbError::Conflict {
                        // A `BEGIN CONCURRENT` loser: the pager already
                        // rolled back; restore the committed schema before
                        // reporting the retryable error.
                        self.catalog = Catalog::load(&mut self.pager)?;
                    }
                    return Err(e);
                }
                Ok(ExecOutcome::Done { rows_affected: 0 })
            }
            Stmt::Rollback => {
                if !self.explicit_tx {
                    return Err(DbError::TxState("ROLLBACK without BEGIN"));
                }
                self.explicit_tx = false;
                self.pager.rollback()?;
                // In-RAM schema may reflect rolled-back DDL: reload.
                self.catalog = Catalog::load(&mut self.pager)?;
                Ok(ExecOutcome::Done { rows_affected: 0 })
            }
            stmt => {
                if self.explicit_tx {
                    run_stmt(&mut self.pager, &mut self.catalog, &stmt, params, sql)
                } else {
                    // Autocommit: one transaction per statement.
                    self.pager.begin()?;
                    match run_stmt(&mut self.pager, &mut self.catalog, &stmt, params, sql) {
                        Ok(out) => {
                            self.pager.commit()?;
                            Ok(out)
                        }
                        Err(e) => {
                            self.pager.rollback()?;
                            self.catalog = Catalog::load(&mut self.pager)?;
                            Err(e)
                        }
                    }
                }
            }
        }
    }

    /// Convenience: runs a SELECT and returns its rows.
    pub fn query(&mut self, sql: &str) -> Result<Vec<Vec<Value>>> {
        Ok(match self.execute(sql)? {
            ExecOutcome::Rows { rows, .. } => rows,
            ExecOutcome::Done { .. } => Vec::new(),
        })
    }

    /// Convenience: runs a parameterized SELECT and returns its rows.
    pub fn query_with(&mut self, sql: &str, params: &[Value]) -> Result<Vec<Vec<Value>>> {
        Ok(match self.execute_with(sql, params)? {
            ExecOutcome::Rows { rows, .. } => rows,
            ExecOutcome::Done { .. } => Vec::new(),
        })
    }

    /// Forces a WAL checkpoint (no-op in other modes).
    pub fn checkpoint(&mut self) -> Result<()> {
        self.pager.wal_checkpoint()
    }

    /// Pager statistics (DB/journal write counts, fsyncs).
    pub fn pager_stats(&self) -> &PagerStats {
        self.pager.stats()
    }

    /// Resets pager statistics.
    pub fn reset_stats(&mut self) {
        self.pager.reset_stats();
    }

    /// Direct pager access (benches tune cache size / checkpoint interval).
    pub fn pager_mut(&mut self) -> &mut Pager<D> {
        &mut self.pager
    }

    /// Number of tables in the schema.
    pub fn table_count(&self) -> usize {
        self.catalog.table_count()
    }

    // --- multi-file transaction plumbing (used by `multidb`) ---------------

    /// Begins a transaction controlled by an external coordinator
    /// (optionally joining a shared device transaction id in Off mode).
    /// Statements then run inside it until `end_external` /
    /// `rollback_external`.
    pub fn begin_external(&mut self, tid: Option<Tid>) -> Result<()> {
        if self.explicit_tx {
            return Err(DbError::TxState("transaction already active"));
        }
        match tid {
            Some(tid) => self.pager.begin_with_tid(tid)?,
            None => self.pager.begin()?,
        }
        self.explicit_tx = true;
        Ok(())
    }

    /// Marks the externally-coordinated transaction finished (the
    /// coordinator already committed at the pager level).
    pub fn end_external(&mut self) {
        self.explicit_tx = false;
    }

    /// Rolls an externally-coordinated transaction back.
    pub fn rollback_external(&mut self) -> Result<()> {
        self.explicit_tx = false;
        if self.pager.in_tx() {
            self.pager.rollback()?;
            self.catalog = Catalog::load(&mut self.pager)?;
        }
        Ok(())
    }
}
