//! Statement execution: expression evaluation, access-path planning
//! (rowid lookup, index prefix scan, range scan, full scan), nested-loop
//! joins (SQLite's only join algorithm, §6.3.2), and the DML write paths
//! with index maintenance.

use std::collections::HashSet;

use xftl_ftl::BlockDevice;

use crate::btree;
use crate::catalog::{Catalog, IndexInfo, TableInfo};
use crate::error::{DbError, Result};
use crate::pager::Pager;
use crate::record::{
    decode_record, encode_index_key, encode_index_prefix, encode_record, index_key_rowid,
};
use crate::sql::{like_match, AggFn, BinOp, Expr, SelectItem, Stmt, TableRef};
use crate::value::Value;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// SELECT output.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Result rows.
        rows: Vec<Vec<Value>>,
    },
    /// DML/DDL completion.
    Done {
        /// Rows inserted/updated/deleted.
        rows_affected: u64,
    },
}

impl ExecOutcome {
    /// The rows of a SELECT, or an empty list.
    pub fn rows(&self) -> &[Vec<Value>] {
        match self {
            ExecOutcome::Rows { rows, .. } => rows,
            ExecOutcome::Done { .. } => &[],
        }
    }

    /// Rows affected by DML (0 for SELECT).
    pub fn affected(&self) -> u64 {
        match self {
            ExecOutcome::Rows { .. } => 0,
            ExecOutcome::Done { rows_affected } => *rows_affected,
        }
    }
}

/// One source relation bound into the row context.
struct Binding {
    alias: String,
    cols: Vec<String>,
}

/// Row context for expression evaluation across joined tables.
struct Ctx<'a> {
    bindings: &'a [Binding],
    rows: Vec<&'a [Value]>,
}

impl Ctx<'_> {
    fn resolve(&self, qual: Option<&str>, name: &str) -> Result<Value> {
        for (b, row) in self.bindings.iter().zip(&self.rows) {
            if let Some(q) = qual {
                if !b.alias.eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            if let Some(i) = b.cols.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                return Ok(row[i].clone());
            }
            if qual.is_some() {
                break;
            }
        }
        Err(DbError::Unknown(match qual {
            Some(q) => format!("column {q}.{name}"),
            None => format!("column {name}"),
        }))
    }
}

fn arith(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    if matches!(a, Value::Null) || matches!(b, Value::Null) {
        return Ok(Value::Null);
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(match op {
            BinOp::Add => Value::Int(x.wrapping_add(*y)),
            BinOp::Sub => Value::Int(x.wrapping_sub(*y)),
            BinOp::Mul => Value::Int(x.wrapping_mul(*y)),
            BinOp::Div => {
                if *y == 0 {
                    Value::Null
                } else {
                    Value::Int(x / y)
                }
            }
            _ => unreachable!(),
        }),
        _ => {
            let (x, y) = (
                a.as_f64()
                    .ok_or_else(|| DbError::Type("arithmetic on non-number".into()))?,
                b.as_f64()
                    .ok_or_else(|| DbError::Type("arithmetic on non-number".into()))?,
            );
            Ok(match op {
                BinOp::Add => Value::Real(x + y),
                BinOp::Sub => Value::Real(x - y),
                BinOp::Mul => Value::Real(x * y),
                BinOp::Div => {
                    if y == 0.0 {
                        Value::Null
                    } else {
                        Value::Real(x / y)
                    }
                }
                _ => unreachable!(),
            })
        }
    }
}

fn eval(expr: &Expr, ctx: &Ctx<'_>, params: &[Value]) -> Result<Value> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Param(i) => params
            .get(*i)
            .cloned()
            .ok_or_else(|| DbError::Schema(format!("missing bind parameter {}", i + 1))),
        Expr::Col(q, name) => ctx.resolve(q.as_deref(), name),
        Expr::Neg(e) => match eval(e, ctx, params)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Real(r) => Ok(Value::Real(-r)),
            Value::Null => Ok(Value::Null),
            _ => Err(DbError::Type("negation of non-number".into())),
        },
        Expr::Not(e) => Ok(Value::Int(!eval(e, ctx, params)?.is_truthy() as i64)),
        Expr::InList(e, list) => {
            let v = eval(e, ctx, params)?;
            if matches!(v, Value::Null) {
                return Ok(Value::Null);
            }
            for item in list {
                if v.sql_eq(&eval(item, ctx, params)?) {
                    return Ok(Value::Int(1));
                }
            }
            Ok(Value::Int(0))
        }
        Expr::Between(e, lo, hi) => {
            let v = eval(e, ctx, params)?;
            let lo = eval(lo, ctx, params)?;
            let hi = eval(hi, ctx, params)?;
            if matches!(v, Value::Null) {
                return Ok(Value::Null);
            }
            let ok = v.sort_cmp(&lo) != std::cmp::Ordering::Less
                && v.sort_cmp(&hi) != std::cmp::Ordering::Greater;
            Ok(Value::Int(ok as i64))
        }
        Expr::Bin(op, l, r) => {
            match op {
                BinOp::And => {
                    return Ok(Value::Int(
                        (eval(l, ctx, params)?.is_truthy() && eval(r, ctx, params)?.is_truthy())
                            as i64,
                    ));
                }
                BinOp::Or => {
                    return Ok(Value::Int(
                        (eval(l, ctx, params)?.is_truthy() || eval(r, ctx, params)?.is_truthy())
                            as i64,
                    ));
                }
                _ => {}
            }
            let a = eval(l, ctx, params)?;
            let b = eval(r, ctx, params)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(*op, &a, &b),
                BinOp::Like => match (&a, &b) {
                    (Value::Text(t), Value::Text(p)) => Ok(Value::Int(like_match(p, t) as i64)),
                    _ => Ok(Value::Int(0)),
                },
                cmp => {
                    if matches!(a, Value::Null) || matches!(b, Value::Null) {
                        return Ok(Value::Null);
                    }
                    let ord = a.sort_cmp(&b);
                    let ok = match cmp {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::Ne => ord != std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::Le => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::Ge => ord != std::cmp::Ordering::Less,
                        _ => unreachable!(),
                    };
                    Ok(Value::Int(ok as i64))
                }
            }
        }
        Expr::Agg(..) => Err(DbError::Schema("aggregate in row context".into())),
    }
}

fn eval_const(expr: &Expr, params: &[Value]) -> Result<Value> {
    let ctx = Ctx {
        bindings: &[],
        rows: Vec::new(),
    };
    eval(expr, &ctx, params)
}

// --- access paths -------------------------------------------------------------

/// Flattens a WHERE tree into AND-ed conjuncts.
fn conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Bin(BinOp::And, l, r) => {
            conjuncts(l, out);
            conjuncts(r, out);
        }
        other => out.push(other.clone()),
    }
}

/// A sargable predicate `col <op> constant` on the given relation alias.
struct Sarg {
    col: String,
    op: BinOp,
    value: Value,
}

fn extract_sargs(where_: Option<&Expr>, alias: &str, params: &[Value]) -> Vec<Sarg> {
    let mut conj = Vec::new();
    if let Some(w) = where_ {
        conjuncts(w, &mut conj);
    }
    let mut out = Vec::new();
    for c in conj {
        let Expr::Bin(op, l, r) = &c else { continue };
        let flip = |op: BinOp| match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        };
        let (col, op, vexpr) = match (l.as_ref(), r.as_ref()) {
            (Expr::Col(q, name), v) if is_const(v) => {
                if q.as_deref()
                    .map(|q| !q.eq_ignore_ascii_case(alias))
                    .unwrap_or(false)
                {
                    continue;
                }
                (name.clone(), *op, v)
            }
            (v, Expr::Col(q, name)) if is_const(v) => {
                if q.as_deref()
                    .map(|q| !q.eq_ignore_ascii_case(alias))
                    .unwrap_or(false)
                {
                    continue;
                }
                (name.clone(), flip(*op), v)
            }
            _ => continue,
        };
        if !matches!(
            op,
            BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        ) {
            continue;
        }
        if let Ok(value) = eval_const(vexpr, params) {
            out.push(Sarg { col, op, value });
        }
    }
    out
}

fn is_const(e: &Expr) -> bool {
    match e {
        Expr::Lit(_) | Expr::Param(_) => true,
        Expr::Neg(i) => is_const(i),
        Expr::Bin(BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div, l, r) => {
            is_const(l) && is_const(r)
        }
        _ => false,
    }
}

/// Materializes a row: record columns, rowid alias filled from the key.
fn materialize(info: &TableInfo, rowid: i64, rec: &[u8]) -> Result<Vec<Value>> {
    let mut vals = decode_record(rec)?;
    vals.resize(info.cols.len(), Value::Null);
    if let Some(i) = info.rowid_alias {
        vals[i] = Value::Int(rowid);
    }
    Ok(vals)
}

/// Scans `info`'s rows using the cheapest access path the sargs allow.
/// Residual filtering is always applied by the caller.
pub fn scan_table<D: BlockDevice>(
    pager: &mut Pager<D>,
    catalog: &Catalog,
    info: &TableInfo,
    alias: &str,
    where_: Option<&Expr>,
    params: &[Value],
) -> Result<Vec<(i64, Vec<Value>)>> {
    let sargs = extract_sargs(where_, alias, params);
    // 1. Rowid-alias point lookup.
    if let Some(pk) = info.rowid_alias {
        let pk_name = &info.cols[pk].name;
        if let Some(s) = sargs
            .iter()
            .find(|s| s.op == BinOp::Eq && s.col.eq_ignore_ascii_case(pk_name))
        {
            if let Some(rowid) = s.value.as_i64() {
                return match btree::table_get(pager, info.root, rowid)? {
                    Some(rec) => Ok(vec![(rowid, materialize(info, rowid, &rec)?)]),
                    None => Ok(Vec::new()),
                };
            }
        }
        // Rowid range scan.
        let mut lo = i64::MIN;
        let mut hi = i64::MAX;
        let mut ranged = false;
        for s in &sargs {
            if !s.col.eq_ignore_ascii_case(pk_name) {
                continue;
            }
            let Some(v) = s.value.as_i64() else { continue };
            match s.op {
                BinOp::Gt => {
                    lo = lo.max(v.saturating_add(1));
                    ranged = true;
                }
                BinOp::Ge => {
                    lo = lo.max(v);
                    ranged = true;
                }
                BinOp::Lt => {
                    hi = hi.min(v.saturating_sub(1));
                    ranged = true;
                }
                BinOp::Le => {
                    hi = hi.min(v);
                    ranged = true;
                }
                _ => {}
            }
        }
        if ranged {
            let mut out = Vec::new();
            btree::table_scan_from(pager, info.root, lo, &mut |_, rowid, rec| {
                if rowid > hi {
                    return Ok(false);
                }
                out.push((rowid, rec));
                Ok(true)
            })?;
            return out
                .into_iter()
                .map(|(rowid, rec)| Ok((rowid, materialize(info, rowid, &rec)?)))
                .collect();
        }
    }
    // 2. Index equality-prefix scan.
    let mut best: Option<(IndexInfo, Vec<Value>)> = None;
    for ix in catalog.indexes_of(&info.name) {
        let mut prefix = Vec::new();
        for col in &ix.cols {
            match sargs
                .iter()
                .find(|s| s.op == BinOp::Eq && s.col.eq_ignore_ascii_case(col))
            {
                Some(s) => prefix.push(s.value.clone()),
                None => break,
            }
        }
        if !prefix.is_empty() && best.as_ref().is_none_or(|(_, p)| prefix.len() > p.len()) {
            best = Some((ix, prefix));
        }
    }
    if let Some((ix, prefix_vals)) = best {
        let prefix = encode_index_prefix(&prefix_vals);
        let mut rowids = Vec::new();
        btree::index_scan_from(pager, ix.root, &prefix, &mut |key| {
            if !key.starts_with(&prefix) {
                return Ok(false);
            }
            rowids.push(index_key_rowid(key)?);
            Ok(true)
        })?;
        let mut out = Vec::with_capacity(rowids.len());
        for rowid in rowids {
            if let Some(rec) = btree::table_get(pager, info.root, rowid)? {
                out.push((rowid, materialize(info, rowid, &rec)?));
            }
        }
        return Ok(out);
    }
    // 3. Full scan.
    let mut raw = Vec::new();
    btree::table_scan_from(pager, info.root, i64::MIN, &mut |_, rowid, rec| {
        raw.push((rowid, rec));
        Ok(true)
    })?;
    raw.into_iter()
        .map(|(rowid, rec)| Ok((rowid, materialize(info, rowid, &rec)?)))
        .collect()
}

// --- DML ----------------------------------------------------------------------

fn index_keys_for(info: &TableInfo, ix: &IndexInfo, row: &[Value], rowid: i64) -> Vec<u8> {
    let _ = info;
    let vals: Vec<Value> = ix.col_idxs.iter().map(|&i| row[i].clone()).collect();
    encode_index_key(&vals, rowid)
}

fn insert_row<D: BlockDevice>(
    pager: &mut Pager<D>,
    catalog: &mut Catalog,
    table: &str,
    row: Vec<Value>,
    or_replace: bool,
) -> Result<()> {
    let info = catalog.table(table)?.clone();
    // Pick the rowid.
    let rowid = match info.rowid_alias.and_then(|i| row[i].as_i64()) {
        Some(explicit) => explicit,
        None => info.next_rowid,
    };
    let existing = btree::table_get(pager, info.root, rowid)?;
    if existing.is_some() && !or_replace {
        return Err(DbError::Constraint(format!("{table} rowid {rowid}")));
    }
    if let Some(old_rec) = existing {
        let old_row = materialize(&info, rowid, &old_rec)?;
        for ix in catalog.indexes_of(table) {
            let key = index_keys_for(&info, &ix, &old_row, rowid);
            btree::index_delete(pager, ix.root, &key)?;
        }
    }
    // Store Null in place of the rowid alias (read back from the key).
    let mut stored = row.clone();
    if let Some(i) = info.rowid_alias {
        stored[i] = Value::Null;
    }
    let rec = encode_record(&stored);
    btree::table_insert(pager, info.root, rowid, &rec)?;
    for ix in catalog.indexes_of(table) {
        let key = index_keys_for(&info, &ix, &row, rowid);
        btree::index_insert(pager, ix.root, &key)?;
    }
    let tinfo = catalog.table_mut(table)?;
    tinfo.next_rowid = tinfo.next_rowid.max(rowid + 1);
    Ok(())
}

fn delete_row<D: BlockDevice>(
    pager: &mut Pager<D>,
    catalog: &Catalog,
    info: &TableInfo,
    rowid: i64,
    row: &[Value],
) -> Result<()> {
    for ix in catalog.indexes_of(&info.name) {
        let key = index_keys_for(info, &ix, row, rowid);
        btree::index_delete(pager, ix.root, &key)?;
    }
    btree::table_delete(pager, info.root, rowid)?;
    Ok(())
}

// --- SELECT -------------------------------------------------------------------

fn has_aggregate(items: &[SelectItem]) -> bool {
    items
        .iter()
        .any(|it| matches!(it, SelectItem::Expr(Expr::Agg(..), _)))
}

fn item_name(item: &SelectItem, idx: usize) -> String {
    match item {
        SelectItem::Star => "*".into(),
        SelectItem::Expr(Expr::Col(_, name), None) => name.clone(),
        SelectItem::Expr(_, Some(alias)) => alias.clone(),
        SelectItem::Expr(..) => format!("col{idx}"),
    }
}

struct Joined {
    bindings: Vec<Binding>,
    /// Each tuple holds one row per binding.
    tuples: Vec<Vec<Vec<Value>>>,
}

fn join_tables<D: BlockDevice>(
    pager: &mut Pager<D>,
    catalog: &Catalog,
    from: &TableRef,
    joins: &[(TableRef, Expr)],
    where_: Option<&Expr>,
    params: &[Value],
) -> Result<Joined> {
    let base_info = catalog.table(&from.table)?.clone();
    let base_alias = from.alias.clone().unwrap_or_else(|| from.table.clone());
    let mut bindings = vec![Binding {
        alias: base_alias.clone(),
        cols: base_info.cols.iter().map(|c| c.name.clone()).collect(),
    }];
    let mut tuples: Vec<Vec<Vec<Value>>> =
        scan_table(pager, catalog, &base_info, &base_alias, where_, params)?
            .into_iter()
            .map(|(_, row)| vec![row])
            .collect();
    for (tref, on) in joins {
        let info = catalog.table(&tref.table)?.clone();
        let alias = tref.alias.clone().unwrap_or_else(|| tref.table.clone());
        // The inner relation is scanned per outer tuple; sargs from the ON
        // clause referencing only the inner table are handled inside
        // scan_table when constant. Equality to outer columns is resolved
        // by pre-evaluating the outer side.
        let inner_rows = scan_table(pager, catalog, &info, &alias, None, params)?;
        let inner_cols: Vec<String> = info.cols.iter().map(|c| c.name.clone()).collect();
        bindings.push(Binding {
            alias: alias.clone(),
            cols: inner_cols,
        });
        let mut next = Vec::new();
        for tuple in tuples {
            for (_, inner) in &inner_rows {
                let mut rows: Vec<&[Value]> = tuple.iter().map(Vec::as_slice).collect();
                rows.push(inner.as_slice());
                let ctx = Ctx {
                    bindings: &bindings,
                    rows,
                };
                if eval(on, &ctx, params)?.is_truthy() {
                    let mut t = tuple.clone();
                    t.push(inner.clone());
                    next.push(t);
                }
            }
        }
        tuples = next;
    }
    Ok(Joined { bindings, tuples })
}

#[allow(clippy::too_many_arguments)]
fn run_select<D: BlockDevice>(
    pager: &mut Pager<D>,
    catalog: &Catalog,
    items: &[SelectItem],
    from: Option<&TableRef>,
    joins: &[(TableRef, Expr)],
    where_: Option<&Expr>,
    group_by: &[String],
    having: Option<&Expr>,
    order_by: Option<&(String, bool)>,
    limit: Option<u64>,
    offset: u64,
    params: &[Value],
) -> Result<ExecOutcome> {
    let joined = match from {
        Some(f) => join_tables(pager, catalog, f, joins, where_, params)?,
        None => Joined {
            bindings: Vec::new(),
            tuples: vec![Vec::new()],
        },
    };
    // Residual WHERE over the joined tuples.
    let mut kept: Vec<Vec<Vec<Value>>> = Vec::new();
    for tuple in joined.tuples {
        let rows: Vec<&[Value]> = tuple.iter().map(Vec::as_slice).collect();
        let ctx = Ctx {
            bindings: &joined.bindings,
            rows,
        };
        let ok = match where_ {
            Some(w) => eval(w, &ctx, params)?.is_truthy(),
            None => true,
        };
        if ok {
            kept.push(tuple);
        }
    }

    if !group_by.is_empty() {
        return run_grouped(
            &joined.bindings,
            kept,
            items,
            group_by,
            having,
            order_by,
            limit,
            offset,
            params,
        );
    }

    if has_aggregate(items) {
        let mut out_row = Vec::new();
        let mut columns = Vec::new();
        for (i, item) in items.iter().enumerate() {
            columns.push(item_name(item, i));
            let SelectItem::Expr(expr, _) = item else {
                return Err(DbError::Schema("* mixed with aggregates".into()));
            };
            out_row.push(eval_aggregate(expr, &joined.bindings, &kept, params)?);
        }
        return Ok(ExecOutcome::Rows {
            columns,
            rows: vec![out_row],
        });
    }

    // ORDER BY before projection (the sort key may not be projected).
    if let Some((col, desc)) = order_by {
        let mut keyed: Vec<(Value, Vec<Vec<Value>>)> = Vec::with_capacity(kept.len());
        for tuple in kept {
            let rows: Vec<&[Value]> = tuple.iter().map(Vec::as_slice).collect();
            let ctx = Ctx {
                bindings: &joined.bindings,
                rows,
            };
            keyed.push((ctx.resolve(None, col)?, tuple));
        }
        keyed.sort_by(|a, b| a.0.sort_cmp(&b.0));
        if *desc {
            keyed.reverse();
        }
        kept = keyed.into_iter().map(|(_, t)| t).collect();
    }
    if offset > 0 {
        kept.drain(..(offset as usize).min(kept.len()));
    }
    if let Some(n) = limit {
        kept.truncate(n as usize);
    }

    // Projection.
    let mut columns = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match item {
            SelectItem::Star => {
                for b in &joined.bindings {
                    columns.extend(b.cols.iter().cloned());
                }
            }
            _ => columns.push(item_name(item, i)),
        }
    }
    let mut rows = Vec::with_capacity(kept.len());
    for tuple in &kept {
        let ctx_rows: Vec<&[Value]> = tuple.iter().map(Vec::as_slice).collect();
        let ctx = Ctx {
            bindings: &joined.bindings,
            rows: ctx_rows,
        };
        let mut out = Vec::new();
        for item in items {
            match item {
                SelectItem::Star => {
                    for row in tuple {
                        out.extend(row.iter().cloned());
                    }
                }
                SelectItem::Expr(e, _) => out.push(eval(e, &ctx, params)?),
            }
        }
        rows.push(out);
    }
    Ok(ExecOutcome::Rows { columns, rows })
}

/// GROUP BY execution: partition the kept tuples by the grouping key,
/// evaluate each select item per group (aggregates over the group's
/// tuples, other expressions against its first tuple — SQLite's
/// permissive bare-column semantics).
#[allow(clippy::too_many_arguments)]
fn run_grouped(
    bindings: &[Binding],
    kept: Vec<Vec<Vec<Value>>>,
    items: &[SelectItem],
    group_by: &[String],
    having: Option<&Expr>,
    order_by: Option<&(String, bool)>,
    limit: Option<u64>,
    offset: u64,
    params: &[Value],
) -> Result<ExecOutcome> {
    use crate::record::encode_index_prefix;
    // Stable grouping via the order-preserving key encoding.
    let mut groups: std::collections::BTreeMap<Vec<u8>, Vec<Vec<Vec<Value>>>> =
        std::collections::BTreeMap::new();
    for tuple in kept {
        let rows: Vec<&[Value]> = tuple.iter().map(Vec::as_slice).collect();
        let ctx = Ctx { bindings, rows };
        let key_vals: Vec<Value> = group_by
            .iter()
            .map(|c| ctx.resolve(None, c))
            .collect::<Result<Vec<_>>>()?;
        groups
            .entry(encode_index_prefix(&key_vals))
            .or_default()
            .push(tuple);
    }
    let mut columns = Vec::new();
    for (i, item) in items.iter().enumerate() {
        if matches!(item, SelectItem::Star) {
            return Err(DbError::Schema("* in a GROUP BY select list".into()));
        }
        columns.push(item_name(item, i));
    }
    let mut rows = Vec::with_capacity(groups.len());
    for tuples in groups.into_values() {
        if let Some(h) = having {
            if !eval_aggregate(h, bindings, &tuples, params)?.is_truthy() {
                continue;
            }
        }
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let SelectItem::Expr(expr, _) = item else {
                unreachable!()
            };
            out.push(eval_aggregate(expr, bindings, &tuples, params)?);
        }
        rows.push(out);
    }
    // ORDER BY over the projected output (by column name / alias).
    if let Some((col, desc)) = order_by {
        if let Some(idx) = columns.iter().position(|c| c.eq_ignore_ascii_case(col)) {
            rows.sort_by(|a, b| a[idx].sort_cmp(&b[idx]));
            if *desc {
                rows.reverse();
            }
        }
    }
    if offset > 0 {
        rows.drain(..(offset as usize).min(rows.len()));
    }
    if let Some(n) = limit {
        rows.truncate(n as usize);
    }
    Ok(ExecOutcome::Rows { columns, rows })
}

fn eval_aggregate(
    expr: &Expr,
    bindings: &[Binding],
    tuples: &[Vec<Vec<Value>>],
    params: &[Value],
) -> Result<Value> {
    let Expr::Agg(f, arg, distinct) = expr else {
        // Comparisons and arithmetic over aggregates (e.g. HAVING
        // COUNT(*) > 1) recurse; bare columns evaluate against the first
        // tuple (SQLite's permissive behaviour).
        if let Expr::Bin(op, l, r) = expr {
            let a = eval_aggregate(l, bindings, tuples, params)?;
            let b = eval_aggregate(r, bindings, tuples, params)?;
            return eval(
                &Expr::Bin(*op, Box::new(Expr::Lit(a)), Box::new(Expr::Lit(b))),
                &Ctx {
                    bindings,
                    rows: Vec::new(),
                },
                params,
            );
        }
        let rows: Vec<&[Value]> = match tuples.first() {
            Some(t) => t.iter().map(Vec::as_slice).collect(),
            None => return Ok(Value::Null),
        };
        return eval(expr, &Ctx { bindings, rows }, params);
    };
    let mut vals = Vec::new();
    for tuple in tuples {
        let rows: Vec<&[Value]> = tuple.iter().map(Vec::as_slice).collect();
        let ctx = Ctx { bindings, rows };
        match arg {
            None => vals.push(Value::Int(1)),
            Some(a) => {
                let v = eval(a, &ctx, params)?;
                if !matches!(v, Value::Null) {
                    vals.push(v);
                }
            }
        }
    }
    if *distinct {
        let mut seen = HashSet::new();
        vals.retain(|v| seen.insert(format!("{v:?}")));
    }
    Ok(match f {
        AggFn::Count => Value::Int(vals.len() as i64),
        AggFn::Sum => {
            if vals.is_empty() {
                Value::Null
            } else if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(vals.iter().filter_map(Value::as_i64).sum())
            } else {
                Value::Real(vals.iter().filter_map(Value::as_f64).sum())
            }
        }
        AggFn::Avg => {
            if vals.is_empty() {
                Value::Null
            } else {
                let sum: f64 = vals.iter().filter_map(Value::as_f64).sum();
                Value::Real(sum / vals.len() as f64)
            }
        }
        AggFn::Min => vals
            .iter()
            .cloned()
            .min_by(Value::sort_cmp)
            .unwrap_or(Value::Null),
        AggFn::Max => vals
            .iter()
            .cloned()
            .max_by(Value::sort_cmp)
            .unwrap_or(Value::Null),
    })
}

// --- entry point -----------------------------------------------------------------

/// Executes one non-transaction-control statement.
pub fn run_stmt<D: BlockDevice>(
    pager: &mut Pager<D>,
    catalog: &mut Catalog,
    stmt: &Stmt,
    params: &[Value],
    raw_sql: &str,
) -> Result<ExecOutcome> {
    match stmt {
        Stmt::CreateTable {
            name,
            if_not_exists,
            cols,
        } => {
            if *if_not_exists && catalog.has_table(name) {
                return Ok(ExecOutcome::Done { rows_affected: 0 });
            }
            catalog.create_table(pager, name, cols, raw_sql)?;
            Ok(ExecOutcome::Done { rows_affected: 0 })
        }
        Stmt::CreateIndex {
            name,
            if_not_exists,
            table,
            cols,
        } => {
            match catalog.create_index(pager, name, table, cols, raw_sql) {
                Err(DbError::Exists(_)) if *if_not_exists => {
                    return Ok(ExecOutcome::Done { rows_affected: 0 });
                }
                other => other?,
            }
            // Populate the index from existing rows.
            let info = catalog.table(table)?.clone();
            let rows = scan_table(pager, catalog, &info, table, None, params)?;
            let ix = catalog
                .indexes_of(table)
                .into_iter()
                .find(|i| i.name.eq_ignore_ascii_case(name))
                .ok_or(DbError::Corrupt("index vanished after creation"))?;
            for (rowid, row) in rows {
                let key = index_keys_for(&info, &ix, &row, rowid);
                btree::index_insert(pager, ix.root, &key)?;
            }
            Ok(ExecOutcome::Done { rows_affected: 0 })
        }
        Stmt::DropTable { name } => {
            catalog.drop_table(pager, name)?;
            Ok(ExecOutcome::Done { rows_affected: 0 })
        }
        Stmt::DropIndex { name } => {
            catalog.drop_index(pager, name)?;
            Ok(ExecOutcome::Done { rows_affected: 0 })
        }
        Stmt::Insert {
            table,
            cols,
            rows,
            or_replace,
        } => {
            let info = catalog.table(table)?.clone();
            let positions: Vec<usize> = if cols.is_empty() {
                (0..info.cols.len()).collect()
            } else {
                cols.iter()
                    .map(|c| {
                        info.col_index(c)
                            .ok_or_else(|| DbError::Unknown(format!("{table}.{c}")))
                    })
                    .collect::<Result<Vec<_>>>()?
            };
            let mut n = 0;
            for row_exprs in rows {
                if row_exprs.len() != positions.len() {
                    return Err(DbError::Schema(format!(
                        "{} values for {} columns",
                        row_exprs.len(),
                        positions.len()
                    )));
                }
                let mut row = vec![Value::Null; info.cols.len()];
                for (pos, e) in positions.iter().zip(row_exprs) {
                    row[*pos] = eval_const(e, params)?;
                }
                insert_row(pager, catalog, table, row, *or_replace)?;
                n += 1;
            }
            Ok(ExecOutcome::Done { rows_affected: n })
        }
        Stmt::Select {
            items,
            from,
            joins,
            where_,
            group_by,
            having,
            order_by,
            limit,
            offset,
        } => run_select(
            pager,
            catalog,
            items,
            from.as_ref(),
            joins,
            where_.as_ref(),
            group_by,
            having.as_ref(),
            order_by.as_ref(),
            *limit,
            *offset,
            params,
        ),
        Stmt::Update {
            table,
            sets,
            where_,
        } => {
            let info = catalog.table(table)?.clone();
            let matches = scan_table(pager, catalog, &info, table, where_.as_ref(), params)?;
            let bindings = vec![Binding {
                alias: info.name.clone(),
                cols: info.cols.iter().map(|c| c.name.clone()).collect(),
            }];
            let set_idx: Vec<(usize, &Expr)> = sets
                .iter()
                .map(|(c, e)| {
                    info.col_index(c)
                        .map(|i| (i, e))
                        .ok_or_else(|| DbError::Unknown(format!("{table}.{c}")))
                })
                .collect::<Result<Vec<_>>>()?;
            let mut n = 0;
            for (rowid, old_row) in matches {
                // Residual filter (scan_table already applied sargs only).
                let ctx = Ctx {
                    bindings: &bindings,
                    rows: vec![old_row.as_slice()],
                };
                if let Some(w) = where_ {
                    if !eval(w, &ctx, params)?.is_truthy() {
                        continue;
                    }
                }
                let mut new_row = old_row.clone();
                for (i, e) in &set_idx {
                    new_row[*i] = eval(e, &ctx, params)?;
                }
                let new_rowid = info
                    .rowid_alias
                    .and_then(|i| new_row[i].as_i64())
                    .unwrap_or(rowid);
                if new_rowid == rowid {
                    // In-place update: touch only the indexes whose key
                    // actually changed (as SQLite does).
                    for ix in catalog.indexes_of(table) {
                        let old_key = index_keys_for(&info, &ix, &old_row, rowid);
                        let new_key = index_keys_for(&info, &ix, &new_row, rowid);
                        if old_key != new_key {
                            btree::index_delete(pager, ix.root, &old_key)?;
                            btree::index_insert(pager, ix.root, &new_key)?;
                        }
                    }
                    let mut stored = new_row.clone();
                    if let Some(i) = info.rowid_alias {
                        stored[i] = Value::Null;
                    }
                    btree::table_insert(pager, info.root, rowid, &encode_record(&stored))?;
                } else {
                    delete_row(pager, catalog, &info, rowid, &old_row)?;
                    let mut stored = new_row.clone();
                    if let Some(i) = info.rowid_alias {
                        stored[i] = Value::Int(new_rowid);
                    }
                    insert_row(pager, catalog, table, stored, true)?;
                }
                n += 1;
            }
            Ok(ExecOutcome::Done { rows_affected: n })
        }
        Stmt::Delete { table, where_ } => {
            let info = catalog.table(table)?.clone();
            let matches = scan_table(pager, catalog, &info, table, where_.as_ref(), params)?;
            let bindings = vec![Binding {
                alias: info.name.clone(),
                cols: info.cols.iter().map(|c| c.name.clone()).collect(),
            }];
            let mut n = 0;
            for (rowid, row) in matches {
                let ctx = Ctx {
                    bindings: &bindings,
                    rows: vec![row.as_slice()],
                };
                if let Some(w) = where_ {
                    if !eval(w, &ctx, params)?.is_truthy() {
                        continue;
                    }
                }
                delete_row(pager, catalog, &info, rowid, &row)?;
                n += 1;
            }
            Ok(ExecOutcome::Done { rows_affected: n })
        }
        Stmt::Begin | Stmt::BeginConcurrent | Stmt::Commit | Stmt::Rollback => Err(
            DbError::TxState("transaction control handled by the connection"),
        ),
    }
}
