//! Multi-file atomic transactions (§4.3).
//!
//! SQLite can update several database files in one transaction. In
//! rollback mode it needs the *master journal* protocol: a master file
//! lists every participant's journal, each journal header references the
//! master, and the atomic deletion of the master file is the group commit
//! point. The paper calls this "awkward or incomplete" — and contrasts it
//! with X-FTL, where all files' pages simply carry the same transaction id
//! and one device `commit(tid)` makes the whole group atomic.
//!
//! Both protocols are implemented here, so the contrast is measurable (see
//! the ablation bench) and the atomicity of each is crash-tested.

use xftl_ftl::BlockDevice;

use crate::db::Connection;
use crate::error::{DbError, Result};
use crate::pager::DbJournalMode;

/// Begins one transaction spanning every connection in `conns`. All
/// connections must live on the same file system and share a journal mode
/// (`Rollback` or `Off`; WAL has no atomic multi-file commit, as in
/// SQLite).
pub fn begin_multi<D: BlockDevice>(conns: &mut [&mut Connection<D>]) -> Result<()> {
    let mode = common_mode(conns)?;
    match mode {
        DbJournalMode::Off => {
            let fs = conns[0].pager_mut().shared_fs();
            let tid = fs.borrow_mut().begin_tx();
            for c in conns.iter_mut() {
                c.begin_external(Some(tid))?;
            }
        }
        m if m.is_rollback() => {
            for c in conns.iter_mut() {
                c.begin_external(None)?;
            }
        }
        _ => {
            return Err(DbError::TxState("WAL mode has no atomic multi-file commit"));
        }
    }
    Ok(())
}

/// Commits the group transaction atomically.
///
/// * `Off` mode: every database flushes its pages under the shared tid,
///   then one device `commit(tid)` seals them all — no extra files, no
///   extra writes (§4.3's "without additional effort").
/// * `Rollback` mode: the SQLite master-journal protocol; `master_name`
///   names the master file, whose deletion is the commit point.
pub fn commit_multi<D: BlockDevice>(
    conns: &mut [&mut Connection<D>],
    master_name: &str,
) -> Result<()> {
    let mode = common_mode(conns)?;
    match mode {
        DbJournalMode::Off => {
            let tid = conns[0]
                .pager_mut()
                .current_tid()
                .ok_or(DbError::TxState("no shared transaction active"))?;
            for c in conns.iter_mut() {
                c.pager_mut().commit_off_deferred()?;
            }
            let fs = conns[0].pager_mut().shared_fs();
            fs.borrow_mut().commit_tx(tid)?;
            for c in conns.iter_mut() {
                c.end_external();
            }
            Ok(())
        }
        m if m.is_rollback() => {
            // 1. Master journal: the participants' journal names, synced.
            let fs = conns[0].pager_mut().shared_fs();
            {
                let mut fsb = fs.borrow_mut();
                let ino = fsb.create(master_name)?;
                let listing: String = conns
                    .iter_mut()
                    .map(|c| c.pager_mut().journal_file_name())
                    .collect::<Vec<_>>()
                    .join("\n");
                fsb.write(ino, 0, listing.as_bytes(), None)?;
                fsb.fsync(ino, None)?;
            }
            // 2. Each journal references the master and each database is
            //    force-written (still revocable).
            for c in conns.iter_mut() {
                c.pager_mut().master_commit_prepare(master_name)?;
            }
            // 3. Commit point: atomically delete the master.
            {
                let mut fsb = fs.borrow_mut();
                fsb.unlink(master_name)?;
                fsb.sync_meta(None)?;
            }
            // 4. Cleanup: the child journals are now stale.
            for c in conns.iter_mut() {
                c.pager_mut().master_commit_cleanup()?;
                c.end_external();
            }
            Ok(())
        }
        _ => unreachable!("rejected at begin_multi"),
    }
}

/// Rolls the group transaction back on every participant.
pub fn rollback_multi<D: BlockDevice>(conns: &mut [&mut Connection<D>]) -> Result<()> {
    for c in conns.iter_mut() {
        c.rollback_external()?;
    }
    Ok(())
}

fn common_mode<D: BlockDevice>(conns: &mut [&mut Connection<D>]) -> Result<DbJournalMode> {
    let mode = conns
        .first_mut()
        .ok_or(DbError::TxState("empty connection group"))?
        .pager_mut()
        .mode();
    for c in conns.iter_mut() {
        if c.pager_mut().mode() != mode {
            return Err(DbError::TxState("mixed journal modes in one group"));
        }
    }
    Ok(mode)
}
