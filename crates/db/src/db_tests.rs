//! End-to-end database tests across all three journal modes, including
//! crash recovery (the behaviours behind §6.4 / Table 5).

use std::cell::RefCell;
use std::rc::Rc;

use xftl_core::XFtl;
use xftl_flash::{FlashChip, FlashConfig, SimClock};
use xftl_fs::{FileSystem, FsConfig, JournalMode};
use xftl_ftl::PageMappedFtl;

use crate::db::Connection;
use crate::error::DbError;
use crate::pager::{DbJournalMode, SharedFs};
use crate::value::Value;

const BLOCKS: usize = 300;
const LOGICAL: u64 = 2200;

fn fs_plain() -> SharedFs<PageMappedFtl> {
    let chip = FlashChip::new(FlashConfig::tiny(BLOCKS), SimClock::new());
    let dev = PageMappedFtl::format(chip, LOGICAL).unwrap();
    let fs = FileSystem::mkfs(
        dev,
        JournalMode::Ordered,
        FsConfig {
            inode_count: 32,
            journal_pages: 48,
            cache_pages: 512,
        },
    )
    .unwrap();
    Rc::new(RefCell::new(fs))
}

fn fs_tx() -> SharedFs<XFtl> {
    let chip = FlashChip::new(FlashConfig::tiny(BLOCKS), SimClock::new());
    let dev = XFtl::format(chip, LOGICAL).unwrap();
    let fs = FileSystem::mkfs_tx(
        dev,
        JournalMode::Off,
        FsConfig {
            inode_count: 32,
            journal_pages: 48,
            cache_pages: 512,
        },
    )
    .unwrap();
    Rc::new(RefCell::new(fs))
}

fn conn(mode: DbJournalMode) -> Connection<PageMappedFtl> {
    Connection::open(fs_plain(), "t.db", mode).unwrap()
}

#[test]
fn create_insert_select() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score REAL)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 'alice', 9.5)")
        .unwrap();
    db.execute("INSERT INTO t (name, score) VALUES ('bob', 7.0)")
        .unwrap();
    let rows = db
        .query("SELECT id, name, score FROM t ORDER BY id")
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(
        rows[0],
        vec![Value::Int(1), Value::Text("alice".into()), Value::Real(9.5)]
    );
    assert_eq!(
        rows[1][0],
        Value::Int(2),
        "auto rowid continues after explicit one"
    );
}

#[test]
fn update_and_delete() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    for i in 1..=10 {
        db.execute_with(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i * 10)],
        )
        .unwrap();
    }
    let n = db
        .execute("UPDATE t SET v = v + 1 WHERE id > 5")
        .unwrap()
        .affected();
    assert_eq!(n, 5);
    let rows = db.query("SELECT v FROM t WHERE id = 6").unwrap();
    assert_eq!(rows[0][0], Value::Int(61));
    let n = db.execute("DELETE FROM t WHERE v < 30").unwrap().affected();
    assert_eq!(n, 2);
    let rows = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rows[0][0], Value::Int(8));
}

#[test]
fn pk_lookup_uses_point_access() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        .unwrap();
    db.execute("BEGIN").unwrap();
    for i in 1..=500 {
        db.execute_with("INSERT INTO t VALUES (?, 'x')", &[Value::Int(i)])
            .unwrap();
    }
    db.execute("COMMIT").unwrap();
    let rows = db.query("SELECT id FROM t WHERE id = 250").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(250)]]);
    let rows = db
        .query("SELECT COUNT(*) FROM t WHERE id >= 100 AND id <= 199")
        .unwrap();
    assert_eq!(rows[0][0], Value::Int(100));
}

#[test]
fn secondary_index_is_used_and_maintained() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE users (id INTEGER PRIMARY KEY, email TEXT, age INT)")
        .unwrap();
    db.execute("CREATE INDEX idx_email ON users (email)")
        .unwrap();
    db.execute("BEGIN").unwrap();
    for i in 1..=200 {
        db.execute_with(
            "INSERT INTO users VALUES (?, ?, ?)",
            &[
                Value::Int(i),
                Value::Text(format!("u{i}@x.com")),
                Value::Int(i % 40),
            ],
        )
        .unwrap();
    }
    db.execute("COMMIT").unwrap();
    let rows = db
        .query("SELECT id FROM users WHERE email = 'u42@x.com'")
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Int(42)]]);
    // Update moves the row in the index.
    db.execute("UPDATE users SET email = 'changed@x.com' WHERE id = 42")
        .unwrap();
    assert!(db
        .query("SELECT id FROM users WHERE email = 'u42@x.com'")
        .unwrap()
        .is_empty());
    let rows = db
        .query("SELECT id FROM users WHERE email = 'changed@x.com'")
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Int(42)]]);
    // Delete removes it.
    db.execute("DELETE FROM users WHERE id = 42").unwrap();
    assert!(db
        .query("SELECT id FROM users WHERE email = 'changed@x.com'")
        .unwrap()
        .is_empty());
}

#[test]
fn index_created_after_data_is_backfilled() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT)")
        .unwrap();
    for i in 1..=50 {
        db.execute_with(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(i), Value::Text(format!("tag{}", i % 5))],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX i_tag ON t (tag)").unwrap();
    let rows = db
        .query("SELECT COUNT(*) FROM t WHERE tag = 'tag3'")
        .unwrap();
    assert_eq!(rows[0][0], Value::Int(10));
}

#[test]
fn join_nested_loop() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, bid INT)")
        .unwrap();
    db.execute("CREATE TABLE b (id INTEGER PRIMARY KEY, name TEXT)")
        .unwrap();
    db.execute("INSERT INTO b VALUES (1, 'one'), (2, 'two')")
        .unwrap();
    db.execute("INSERT INTO a VALUES (10, 1), (11, 2), (12, 1)")
        .unwrap();
    let rows = db
        .query("SELECT a.id, b.name FROM a JOIN b ON a.bid = b.id WHERE b.name = 'one' ORDER BY id")
        .unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(10), Value::Text("one".into())],
            vec![Value::Int(12), Value::Text("one".into())]
        ]
    );
}

#[test]
fn aggregates() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    db.execute("INSERT INTO t (v) VALUES (1), (2), (3), (3), (NULL)")
        .unwrap();
    let rows = db
        .query(
            "SELECT COUNT(*), COUNT(v), COUNT(DISTINCT v), SUM(v), MIN(v), MAX(v), AVG(v) FROM t",
        )
        .unwrap();
    assert_eq!(
        rows[0],
        vec![
            Value::Int(5),
            Value::Int(4),
            Value::Int(3),
            Value::Int(9),
            Value::Int(1),
            Value::Int(3),
            Value::Real(2.25),
        ]
    );
}

#[test]
fn like_and_between() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)")
        .unwrap();
    db.execute("INSERT INTO t (s) VALUES ('apple'), ('apricot'), ('banana')")
        .unwrap();
    let rows = db
        .query("SELECT s FROM t WHERE s LIKE 'ap%' ORDER BY s")
        .unwrap();
    assert_eq!(rows.len(), 2);
    let rows = db
        .query("SELECT COUNT(*) FROM t WHERE id BETWEEN 2 AND 3")
        .unwrap();
    assert_eq!(rows[0][0], Value::Int(2));
}

#[test]
fn blob_roundtrip_through_overflow() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE thumbs (id INTEGER PRIMARY KEY, img BLOB)")
        .unwrap();
    // Bigger than a tiny 512-byte page: forced through overflow chains.
    let blob: Vec<u8> = (0..3000).map(|i| (i % 256) as u8).collect();
    db.execute_with(
        "INSERT INTO thumbs VALUES (1, ?)",
        &[Value::Blob(blob.clone())],
    )
    .unwrap();
    let rows = db.query("SELECT img FROM thumbs WHERE id = 1").unwrap();
    assert_eq!(rows[0][0], Value::Blob(blob));
}

#[test]
fn explicit_transaction_commit_and_rollback() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    db.execute("INSERT INTO t VALUES (2, 20)").unwrap();
    db.execute("COMMIT").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("UPDATE t SET v = 999").unwrap();
    db.execute("DELETE FROM t WHERE id = 1").unwrap();
    db.execute("ROLLBACK").unwrap();
    let rows = db.query("SELECT id, v FROM t ORDER BY id").unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)]
        ]
    );
}

#[test]
fn rollback_in_all_modes_restores_state() {
    for (name, mode) in [
        ("rbj", DbJournalMode::Rollback),
        ("wal", DbJournalMode::Wal),
    ] {
        let mut db = conn(mode);
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 1)").unwrap();
        db.execute("BEGIN").unwrap();
        db.execute("UPDATE t SET v = 2").unwrap();
        db.execute("ROLLBACK").unwrap();
        let rows = db.query("SELECT v FROM t").unwrap();
        assert_eq!(rows[0][0], Value::Int(1), "mode {name}");
    }
    // Off mode over X-FTL.
    let mut db = Connection::open(fs_tx(), "t.db", DbJournalMode::Off).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("UPDATE t SET v = 2").unwrap();
    db.execute("ROLLBACK").unwrap();
    let rows = db.query("SELECT v FROM t").unwrap();
    assert_eq!(rows[0][0], Value::Int(1), "mode off");
}

#[test]
fn constraint_violation_and_or_replace() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    let err = db.execute("INSERT INTO t VALUES (1, 20)").unwrap_err();
    assert!(matches!(err, DbError::Constraint(_)));
    db.execute("INSERT OR REPLACE INTO t VALUES (1, 20)")
        .unwrap();
    assert_eq!(db.query("SELECT v FROM t").unwrap()[0][0], Value::Int(20));
}

#[test]
fn drop_table_frees_and_forgets() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        .unwrap();
    db.execute("INSERT INTO t (v) VALUES ('x')").unwrap();
    db.execute("DROP TABLE t").unwrap();
    assert!(matches!(
        db.execute("SELECT * FROM t"),
        Err(DbError::Unknown(_))
    ));
    // Name reusable.
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (5)").unwrap();
    assert_eq!(db.query("SELECT a FROM t").unwrap()[0][0], Value::Int(5));
}

#[test]
fn schema_persists_across_reopen() {
    let fs = fs_plain();
    {
        let mut db = Connection::open(Rc::clone(&fs), "app.db", DbJournalMode::Rollback).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
            .unwrap();
        db.execute("CREATE INDEX iv ON t (v)").unwrap();
        db.execute("INSERT INTO t (v) VALUES ('persisted')")
            .unwrap();
    }
    let mut db = Connection::open(fs, "app.db", DbJournalMode::Rollback).unwrap();
    let rows = db.query("SELECT id FROM t WHERE v = 'persisted'").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(1)]]);
    db.execute("INSERT INTO t (v) VALUES ('two')").unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap()[0][0],
        Value::Int(2)
    );
}

#[test]
fn wal_reads_see_wal_content_before_checkpoint() {
    let mut db = conn(DbJournalMode::Wal);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 100)").unwrap();
    // No checkpoint yet (threshold 1000): read must come from the WAL.
    assert!(db.pager_stats().checkpoints == 0);
    assert_eq!(
        db.query("SELECT v FROM t WHERE id = 1").unwrap()[0][0],
        Value::Int(100)
    );
    db.checkpoint().unwrap();
    assert_eq!(db.pager_stats().checkpoints, 1);
    assert_eq!(
        db.query("SELECT v FROM t WHERE id = 1").unwrap()[0][0],
        Value::Int(100)
    );
}

#[test]
fn wal_autocheckpoint_fires() {
    let mut db = conn(DbJournalMode::Wal);
    db.pager_mut().wal_autocheckpoint = 20;
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..30 {
        db.execute_with("INSERT INTO t (v) VALUES (?)", &[Value::Int(i)])
            .unwrap();
    }
    assert!(db.pager_stats().checkpoints >= 1);
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap()[0][0],
        Value::Int(30)
    );
}

// --- crash recovery --------------------------------------------------------

/// Runs a committed transaction plus an uncommitted one, crashes the
/// device, reopens, and checks atomicity + durability.
fn crash_roundtrip_plain(mode: DbJournalMode) {
    let fs = fs_plain();
    {
        let mut db = Connection::open(Rc::clone(&fs), "c.db", mode).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
        // Uncommitted transaction in flight at crash time.
        db.execute("BEGIN").unwrap();
        db.execute("UPDATE t SET v = 999 WHERE id = 1").unwrap();
        // no COMMIT — connection and FS dropped (process crash), then the
        // device loses power too.
    }
    let fs_inner = Rc::try_unwrap(fs).expect("sole owner").into_inner();
    let dev = fs_inner.into_device();
    let dev = PageMappedFtl::recover(dev.into_chip()).unwrap();
    let fs = FileSystem::mount(dev, JournalMode::Ordered, 512).unwrap();
    let fs = Rc::new(RefCell::new(fs));
    let mut db = Connection::open(fs, "c.db", mode).unwrap();
    let rows = db.query("SELECT id, v FROM t ORDER BY id").unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)]
        ],
        "mode {mode:?}"
    );
}

#[test]
fn crash_recovery_rollback_mode() {
    crash_roundtrip_plain(DbJournalMode::Rollback);
}

#[test]
fn crash_recovery_wal_mode() {
    crash_roundtrip_plain(DbJournalMode::Wal);
}

#[test]
fn crash_recovery_off_mode_xftl() {
    let fs = fs_tx();
    {
        let mut db = Connection::open(Rc::clone(&fs), "c.db", DbJournalMode::Off).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
        db.execute("BEGIN").unwrap();
        db.execute("UPDATE t SET v = 999 WHERE id = 1").unwrap();
        // crash before COMMIT
    }
    let fs_inner = Rc::try_unwrap(fs).expect("sole owner").into_inner();
    let dev = fs_inner.into_device();
    let dev = XFtl::recover(dev.into_chip()).unwrap();
    let fs = FileSystem::mount_tx(dev, JournalMode::Off, 512).unwrap();
    let fs = Rc::new(RefCell::new(fs));
    let mut db = Connection::open(fs, "c.db", DbJournalMode::Off).unwrap();
    let rows = db.query("SELECT id, v FROM t ORDER BY id").unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)]
        ]
    );
}

#[test]
fn hot_journal_is_rolled_back_on_open() {
    let fs = fs_plain();
    {
        let mut db = Connection::open(Rc::clone(&fs), "c.db", DbJournalMode::Rollback).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    }
    {
        let mut db = Connection::open(Rc::clone(&fs), "c.db", DbJournalMode::Rollback).unwrap();
        db.execute("BEGIN").unwrap();
        db.execute("UPDATE t SET v = 777 WHERE id = 1").unwrap();
        // Force the dirty page and journal to storage mid-transaction
        // through cache pressure (the steal path).
        db.pager_mut().set_cache_capacity(4);
        for i in 0..40 {
            db.execute_with("INSERT INTO t (v) VALUES (?)", &[Value::Int(i)])
                .unwrap();
        }
        // Process dies without COMMIT; journal file remains (hot).
    }
    assert!(fs.borrow().exists("c.db-journal"), "journal must be hot");
    let mut db = Connection::open(Rc::clone(&fs), "c.db", DbJournalMode::Rollback).unwrap();
    assert!(
        !fs.borrow().exists("c.db-journal"),
        "recovery deletes the journal"
    );
    let rows = db.query("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(rows[0][0], Value::Int(10), "uncommitted update rolled back");
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap()[0][0],
        Value::Int(1)
    );
}

#[test]
fn steal_spills_and_commit_still_works() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v BLOB)")
        .unwrap();
    db.pager_mut().set_cache_capacity(6);
    db.execute("BEGIN").unwrap();
    let blob = vec![7u8; 300];
    for i in 1..=60 {
        db.execute_with(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(i), Value::Blob(blob.clone())],
        )
        .unwrap();
    }
    db.execute("COMMIT").unwrap();
    assert!(db.pager_stats().spills > 0, "steal must have happened");
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap()[0][0],
        Value::Int(60)
    );
}

#[test]
fn multi_database_files_share_one_fs() {
    let fs = fs_plain();
    let mut db1 = Connection::open(Rc::clone(&fs), "one.db", DbJournalMode::Rollback).unwrap();
    let mut db2 = Connection::open(Rc::clone(&fs), "two.db", DbJournalMode::Rollback).unwrap();
    db1.execute("CREATE TABLE a (x INT)").unwrap();
    db2.execute("CREATE TABLE b (y INT)").unwrap();
    db1.execute("INSERT INTO a VALUES (1)").unwrap();
    db2.execute("INSERT INTO b VALUES (2)").unwrap();
    assert_eq!(db1.query("SELECT x FROM a").unwrap()[0][0], Value::Int(1));
    assert_eq!(db2.query("SELECT y FROM b").unwrap()[0][0], Value::Int(2));
    assert!(matches!(
        db1.execute("SELECT y FROM b"),
        Err(DbError::Unknown(_))
    ));
}

#[test]
fn fsync_counts_match_figure1_shape() {
    // RBJ: 3 fsyncs per update transaction; WAL: 1; Off: 1 (at the FS).
    let mut rbj = conn(DbJournalMode::Rollback);
    rbj.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    rbj.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    rbj.reset_stats();
    rbj.execute("UPDATE t SET v = 1 WHERE id = 1").unwrap();
    assert_eq!(
        rbj.pager_stats().fsyncs,
        3,
        "journal data + journal header + db"
    );

    let mut wal = conn(DbJournalMode::Wal);
    wal.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    wal.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    wal.reset_stats();
    wal.execute("UPDATE t SET v = 1 WHERE id = 1").unwrap();
    assert_eq!(wal.pager_stats().fsyncs, 1, "single WAL fsync");

    let mut off = Connection::open(fs_tx(), "t.db", DbJournalMode::Off).unwrap();
    off.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    off.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    off.reset_stats();
    off.execute("UPDATE t SET v = 1 WHERE id = 1").unwrap();
    assert_eq!(
        off.pager_stats().fsyncs,
        1,
        "single fsync carrying the commit"
    );
    assert_eq!(off.pager_stats().journal_writes, 0, "no journal at all");
}

#[test]
fn select_without_from() {
    let mut db = conn(DbJournalMode::Rollback);
    let rows = db.query("SELECT 1 + 2 * 3, 'x'").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(7), Value::Text("x".into())]]);
}

#[test]
fn order_by_desc_and_limit() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    for i in 1..=10 {
        db.execute_with("INSERT INTO t (v) VALUES (?)", &[Value::Int(i)])
            .unwrap();
    }
    let rows = db.query("SELECT v FROM t ORDER BY v DESC LIMIT 3").unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(10)],
            vec![Value::Int(9)],
            vec![Value::Int(8)]
        ]
    );
}

// --- multi-file transactions (§4.3) -----------------------------------------

mod multi {
    use super::*;
    use crate::multidb::{begin_multi, commit_multi, rollback_multi};
    use xftl_ftl::BlockDevice;

    fn two_dbs<D: xftl_ftl::BlockDevice>(
        fs: &SharedFs<D>,
        mode: DbJournalMode,
    ) -> (Connection<D>, Connection<D>) {
        let mut a = Connection::open(Rc::clone(fs), "a.db", mode).unwrap();
        let mut b = Connection::open(Rc::clone(fs), "b.db", mode).unwrap();
        a.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
            .unwrap();
        b.execute("CREATE TABLE u (id INTEEGER, w INT)")
            .unwrap_or_else(|_| {
                b.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, w INT)")
                    .unwrap()
            });
        (a, b)
    }

    #[test]
    fn multi_commit_applies_both_rbj() {
        let fs = fs_plain();
        let (mut a, mut b) = two_dbs(&fs, DbJournalMode::Rollback);
        begin_multi(&mut [&mut a, &mut b]).unwrap();
        a.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        b.execute("INSERT INTO u VALUES (1, 20)").unwrap();
        commit_multi(&mut [&mut a, &mut b], "group-master").unwrap();
        assert_eq!(a.query("SELECT v FROM t").unwrap()[0][0], Value::Int(10));
        assert_eq!(b.query("SELECT w FROM u").unwrap()[0][0], Value::Int(20));
        assert!(!fs.borrow().exists("group-master"));
        assert!(!fs.borrow().exists("a.db-journal"));
    }

    #[test]
    fn multi_commit_applies_both_xftl() {
        let fs = fs_tx();
        let (mut a, mut b) = two_dbs(&fs, DbJournalMode::Off);
        begin_multi(&mut [&mut a, &mut b]).unwrap();
        a.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        b.execute("INSERT INTO u VALUES (1, 20)").unwrap();
        let commits_before = fs.borrow().device().counters().commits;
        commit_multi(&mut [&mut a, &mut b], "unused-master").unwrap();
        assert_eq!(
            fs.borrow().device().counters().commits - commits_before,
            1,
            "one device commit seals the whole group"
        );
        assert_eq!(a.query("SELECT v FROM t").unwrap()[0][0], Value::Int(10));
        assert_eq!(b.query("SELECT w FROM u").unwrap()[0][0], Value::Int(20));
        assert!(
            !fs.borrow().exists("unused-master"),
            "X-FTL needs no master file"
        );
    }

    #[test]
    fn multi_rollback_undoes_both() {
        let fs = fs_tx();
        let (mut a, mut b) = two_dbs(&fs, DbJournalMode::Off);
        a.execute("INSERT INTO t VALUES (1, 1)").unwrap();
        b.execute("INSERT INTO u VALUES (1, 1)").unwrap();
        begin_multi(&mut [&mut a, &mut b]).unwrap();
        a.execute("UPDATE t SET v = 99").unwrap();
        b.execute("UPDATE u SET w = 99").unwrap();
        rollback_multi(&mut [&mut a, &mut b]).unwrap();
        assert_eq!(a.query("SELECT v FROM t").unwrap()[0][0], Value::Int(1));
        assert_eq!(b.query("SELECT w FROM u").unwrap()[0][0], Value::Int(1));
    }

    #[test]
    fn crash_before_master_delete_rolls_back_both() {
        // Power fails after phase 1 (journals reference the master, DB
        // files written) but before the master's deletion: recovery must
        // roll BOTH databases back.
        let fs = fs_plain();
        {
            let (mut a, mut b) = two_dbs(&fs, DbJournalMode::Rollback);
            a.execute("INSERT INTO t VALUES (1, 1)").unwrap();
            b.execute("INSERT INTO u VALUES (1, 1)").unwrap();
            begin_multi(&mut [&mut a, &mut b]).unwrap();
            a.execute("UPDATE t SET v = 99").unwrap();
            b.execute("UPDATE u SET w = 99").unwrap();
            // Reproduce phase 1 by hand, then "crash" (drop everything).
            {
                let mut fsb = fs.borrow_mut();
                let ino = fsb.create("m1").unwrap();
                fsb.write(ino, 0, b"a.db-journal\nb.db-journal", None)
                    .unwrap();
                fsb.fsync(ino, None).unwrap();
            }
            a.pager_mut().master_commit_prepare("m1").unwrap();
            b.pager_mut().master_commit_prepare("m1").unwrap();
            // crash here: master still exists
        }
        let fs_inner = Rc::try_unwrap(fs).expect("sole owner").into_inner();
        let dev = PageMappedFtl::recover(fs_inner.into_device().into_chip()).unwrap();
        let fs = Rc::new(RefCell::new(
            FileSystem::mount(dev, JournalMode::Ordered, 512).unwrap(),
        ));
        let mut a = Connection::open(Rc::clone(&fs), "a.db", DbJournalMode::Rollback).unwrap();
        let mut b = Connection::open(Rc::clone(&fs), "b.db", DbJournalMode::Rollback).unwrap();
        assert_eq!(a.query("SELECT v FROM t").unwrap()[0][0], Value::Int(1));
        assert_eq!(b.query("SELECT w FROM u").unwrap()[0][0], Value::Int(1));
    }

    #[test]
    fn crash_after_master_delete_commits_both() {
        // Power fails after the master's deletion but before the child
        // journals are cleaned up: both databases must show the new state
        // (the stale journals are ignored because their master is gone).
        let fs = fs_plain();
        {
            let (mut a, mut b) = two_dbs(&fs, DbJournalMode::Rollback);
            a.execute("INSERT INTO t VALUES (1, 1)").unwrap();
            b.execute("INSERT INTO u VALUES (1, 1)").unwrap();
            begin_multi(&mut [&mut a, &mut b]).unwrap();
            a.execute("UPDATE t SET v = 99").unwrap();
            b.execute("UPDATE u SET w = 99").unwrap();
            {
                let mut fsb = fs.borrow_mut();
                let ino = fsb.create("m2").unwrap();
                fsb.write(ino, 0, b"a.db-journal\nb.db-journal", None)
                    .unwrap();
                fsb.fsync(ino, None).unwrap();
            }
            a.pager_mut().master_commit_prepare("m2").unwrap();
            b.pager_mut().master_commit_prepare("m2").unwrap();
            {
                let mut fsb = fs.borrow_mut();
                fsb.unlink("m2").unwrap();
                fsb.sync_meta(None).unwrap();
            }
            // crash here: child journals still exist, master gone
        }
        let fs_inner = Rc::try_unwrap(fs).expect("sole owner").into_inner();
        let dev = PageMappedFtl::recover(fs_inner.into_device().into_chip()).unwrap();
        let fs = Rc::new(RefCell::new(
            FileSystem::mount(dev, JournalMode::Ordered, 512).unwrap(),
        ));
        assert!(
            fs.borrow().exists("a.db-journal"),
            "stale journal present pre-open"
        );
        let mut a = Connection::open(Rc::clone(&fs), "a.db", DbJournalMode::Rollback).unwrap();
        let mut b = Connection::open(Rc::clone(&fs), "b.db", DbJournalMode::Rollback).unwrap();
        assert_eq!(a.query("SELECT v FROM t").unwrap()[0][0], Value::Int(99));
        assert_eq!(b.query("SELECT w FROM u").unwrap()[0][0], Value::Int(99));
        assert!(
            !fs.borrow().exists("a.db-journal"),
            "stale journal cleaned on open"
        );
    }

    #[test]
    fn crash_mid_group_rolls_back_both_xftl() {
        let fs = fs_tx();
        {
            let (mut a, mut b) = two_dbs(&fs, DbJournalMode::Off);
            a.execute("INSERT INTO t VALUES (1, 1)").unwrap();
            b.execute("INSERT INTO u VALUES (1, 1)").unwrap();
            begin_multi(&mut [&mut a, &mut b]).unwrap();
            a.execute("UPDATE t SET v = 99").unwrap();
            b.execute("UPDATE u SET w = 99").unwrap();
            // Flush a's pages under the shared tid but crash before the
            // single device commit.
            a.pager_mut().commit_off_deferred().unwrap();
            // crash
        }
        let fs_inner = Rc::try_unwrap(fs).expect("sole owner").into_inner();
        let dev = XFtl::recover(fs_inner.into_device().into_chip()).unwrap();
        let fs = Rc::new(RefCell::new(
            FileSystem::mount_tx(dev, JournalMode::Off, 512).unwrap(),
        ));
        let mut a = Connection::open(Rc::clone(&fs), "a.db", DbJournalMode::Off).unwrap();
        let mut b = Connection::open(Rc::clone(&fs), "b.db", DbJournalMode::Off).unwrap();
        assert_eq!(a.query("SELECT v FROM t").unwrap()[0][0], Value::Int(1));
        assert_eq!(b.query("SELECT w FROM u").unwrap()[0][0], Value::Int(1));
    }

    #[test]
    fn wal_groups_are_rejected() {
        let fs = fs_plain();
        let (mut a, mut b) = two_dbs(&fs, DbJournalMode::Wal);
        assert!(matches!(
            begin_multi(&mut [&mut a, &mut b]),
            Err(DbError::TxState(_))
        ));
    }
}

// --- GROUP BY ----------------------------------------------------------------

#[test]
fn group_by_with_aggregates() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE sales (id INTEGER PRIMARY KEY, region TEXT, amount INT)")
        .unwrap();
    db.execute(
        "INSERT INTO sales (region, amount) VALUES \
         ('east', 10), ('west', 5), ('east', 20), ('west', 7), ('north', 1)",
    )
    .unwrap();
    let rows = db
        .query("SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region ORDER BY region")
        .unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Text("east".into()), Value::Int(2), Value::Int(30)],
            vec![Value::Text("north".into()), Value::Int(1), Value::Int(1)],
            vec![Value::Text("west".into()), Value::Int(2), Value::Int(12)],
        ]
    );
}

#[test]
fn group_by_multiple_columns_and_where() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a INT, b INT, v INT)")
        .unwrap();
    for (a, b, v) in [(1, 1, 10), (1, 2, 20), (1, 1, 30), (2, 1, 40), (2, 1, 5)] {
        db.execute_with(
            "INSERT INTO t (a, b, v) VALUES (?, ?, ?)",
            &[Value::Int(a), Value::Int(b), Value::Int(v)],
        )
        .unwrap();
    }
    let rows = db
        .query("SELECT a, b, MAX(v) FROM t WHERE v >= 10 GROUP BY a, b ORDER BY a")
        .unwrap();
    assert_eq!(rows.len(), 3);
    // (1,1)->30, (1,2)->20, (2,1)->40; BTreeMap key order = (a,b) ascending.
    assert_eq!(rows[0], vec![Value::Int(1), Value::Int(1), Value::Int(30)]);
    assert_eq!(rows[1], vec![Value::Int(1), Value::Int(2), Value::Int(20)]);
    assert_eq!(rows[2], vec![Value::Int(2), Value::Int(1), Value::Int(40)]);
}

#[test]
fn group_by_with_limit() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, g INT)")
        .unwrap();
    for i in 0..20 {
        db.execute_with("INSERT INTO t (g) VALUES (?)", &[Value::Int(i % 5)])
            .unwrap();
    }
    let rows = db
        .query("SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g LIMIT 2")
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], vec![Value::Int(0), Value::Int(4)]);
}

#[test]
fn group_by_rejects_star() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, g INT)")
        .unwrap();
    assert!(db.execute("SELECT * FROM t GROUP BY g").is_err());
}

// --- journal finalization variants (TRUNCATE / PERSIST) ----------------------

#[test]
fn truncate_and_persist_modes_commit_and_recover() {
    for mode in [
        DbJournalMode::RollbackTruncate,
        DbJournalMode::RollbackPersist,
    ] {
        let fs = fs_plain();
        {
            let mut db = Connection::open(Rc::clone(&fs), "v.db", mode).unwrap();
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
                .unwrap();
            db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
            db.execute("BEGIN").unwrap();
            db.execute("UPDATE t SET v = 999 WHERE id = 1").unwrap();
            // crash without COMMIT
        }
        let fs_inner = Rc::try_unwrap(fs).expect("sole owner").into_inner();
        let dev = PageMappedFtl::recover(fs_inner.into_device().into_chip()).unwrap();
        let fs = Rc::new(RefCell::new(
            FileSystem::mount(dev, JournalMode::Ordered, 512).unwrap(),
        ));
        let mut db = Connection::open(fs, "v.db", mode).unwrap();
        let rows = db.query("SELECT id, v FROM t ORDER BY id").unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)]
            ],
            "{mode:?}"
        );
    }
}

#[test]
fn persist_mode_leaves_cold_journal_file() {
    let fs = fs_plain();
    let mut db = Connection::open(Rc::clone(&fs), "p.db", DbJournalMode::RollbackPersist).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    // The journal file persists between transactions with a zeroed header.
    assert!(fs.borrow().exists("p.db-journal"));
    db.execute("UPDATE t SET v = 2").unwrap();
    assert_eq!(db.query("SELECT v FROM t").unwrap()[0][0], Value::Int(2));
    // Re-open: the zeroed header must not look like a hot journal.
    drop(db);
    let mut db2 = Connection::open(Rc::clone(&fs), "p.db", DbJournalMode::RollbackPersist).unwrap();
    assert_eq!(db2.query("SELECT v FROM t").unwrap()[0][0], Value::Int(2));
}

#[test]
fn truncate_mode_reuses_empty_journal() {
    let fs = fs_plain();
    let mut db =
        Connection::open(Rc::clone(&fs), "tr.db", DbJournalMode::RollbackTruncate).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..5 {
        db.execute_with("INSERT INTO t (v) VALUES (?)", &[Value::Int(i)])
            .unwrap();
    }
    assert!(fs.borrow().exists("tr.db-journal"));
    let jino = fs.borrow().open("tr.db-journal").unwrap();
    assert_eq!(
        fs.borrow().size(jino).unwrap(),
        0,
        "journal truncated after commit"
    );
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap()[0][0],
        Value::Int(5)
    );
}

#[test]
fn persist_mode_avoids_metadata_churn() {
    // PERSIST should issue no directory syncs after warm-up; DELETE does
    // one per transaction.
    let run = |mode: DbJournalMode| {
        let fs = fs_plain();
        let mut db = Connection::open(Rc::clone(&fs), "m.db", mode).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 0)").unwrap();
        db.reset_stats();
        for i in 0..10 {
            db.execute_with("UPDATE t SET v = ? WHERE id = 1", &[Value::Int(i)])
                .unwrap();
        }
        db.pager_stats().dirsyncs
    };
    assert_eq!(
        run(DbJournalMode::Rollback),
        10,
        "DELETE: one dirsync per txn"
    );
    assert_eq!(run(DbJournalMode::RollbackPersist), 0, "PERSIST: none");
}

#[test]
fn in_list_having_offset_end_to_end() {
    let mut db = conn(DbJournalMode::Rollback);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, g INT, v INT)")
        .unwrap();
    for i in 0..12 {
        db.execute_with(
            "INSERT INTO t (g, v) VALUES (?, ?)",
            &[Value::Int(i % 4), Value::Int(i)],
        )
        .unwrap();
    }
    // IN list.
    let rows = db
        .query("SELECT COUNT(*) FROM t WHERE g IN (1, 3)")
        .unwrap();
    assert_eq!(rows[0][0], Value::Int(6));
    // NOT IN.
    let rows = db
        .query("SELECT COUNT(*) FROM t WHERE g NOT IN (0, 1, 2)")
        .unwrap();
    assert_eq!(rows[0][0], Value::Int(3));
    // HAVING on aggregates.
    // sums: g0=12, g1=15, g2=18, g3=21 — only g3 exceeds 18.
    let rows = db
        .query("SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) > 18 ORDER BY g")
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Int(3), Value::Int(21)]]);
    let rows = db
        .query("SELECT g FROM t GROUP BY g HAVING SUM(v) >= 18 ORDER BY g")
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
    // OFFSET pagination.
    let rows = db
        .query("SELECT id FROM t ORDER BY id LIMIT 3 OFFSET 4")
        .unwrap();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(5)],
            vec![Value::Int(6)],
            vec![Value::Int(7)]
        ]
    );
    // OFFSET with GROUP BY.
    let rows = db
        .query("SELECT g FROM t GROUP BY g ORDER BY g LIMIT 2 OFFSET 1")
        .unwrap();
    assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
}
