//! B+trees over pager pages: table trees (keyed by rowid, like SQLite's
//! table B-trees) and index trees (keyed by the order-preserving encoded
//! key from [`crate::record`]).
//!
//! Pages are read and written whole through the [`Pager`], so every
//! structural change flows through the journal mode under test — B-tree
//! splits are precisely the multi-page updates whose atomicity the paper
//! is about. Large payloads spill to overflow page chains, which is how
//! the Facebook trace's thumbnail blobs (§6.3.2) exercise multi-page
//! writes per insert.

use xftl_ftl::BlockDevice;

use crate::error::{DbError, Result};
use crate::pager::{PageNo, Pager};

const T_TABLE_LEAF: u8 = 1;
const T_TABLE_INT: u8 = 2;
const T_INDEX_LEAF: u8 = 3;
const T_INDEX_INT: u8 = 4;

/// Page header bytes before the cell area.
const HDR: usize = 12;

/// A table-leaf payload: a local prefix plus an optional overflow chain.
#[derive(Debug, Clone, PartialEq)]
struct Payload {
    total_len: u32,
    local: Vec<u8>,
    overflow: PageNo, // 0 = none
}

/// In-RAM image of one B-tree page.
#[derive(Debug, Clone)]
enum Node {
    TableLeaf {
        cells: Vec<(i64, Payload)>,
    },
    TableInterior {
        right: PageNo,
        cells: Vec<(PageNo, i64)>,
    },
    IndexLeaf {
        cells: Vec<Vec<u8>>,
    },
    IndexInterior {
        right: PageNo,
        cells: Vec<(PageNo, Vec<u8>)>,
    },
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn rd_u16(buf: &[u8], off: usize) -> u16 {
    let mut b = [0u8; 2];
    b.copy_from_slice(&buf[off..off + 2]);
    u16::from_le_bytes(b)
}

fn rd_u32(buf: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[off..off + 4]);
    u32::from_le_bytes(b)
}

fn rd_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

impl Node {
    fn encode(&self, page_size: usize) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(page_size);
        match self {
            Node::TableLeaf { cells } => {
                out.push(T_TABLE_LEAF);
                out.push(0);
                out.extend_from_slice(&(cells.len() as u16).to_le_bytes());
                put_u32(&mut out, 0);
                put_u32(&mut out, 0);
                for (rowid, p) in cells {
                    put_u64(&mut out, *rowid as u64);
                    put_u32(&mut out, p.total_len);
                    put_u32(&mut out, p.local.len() as u32);
                    put_u32(&mut out, p.overflow);
                    out.extend_from_slice(&p.local);
                }
            }
            Node::TableInterior { right, cells } => {
                out.push(T_TABLE_INT);
                out.push(0);
                out.extend_from_slice(&(cells.len() as u16).to_le_bytes());
                put_u32(&mut out, *right);
                put_u32(&mut out, 0);
                for (child, key) in cells {
                    put_u32(&mut out, *child);
                    put_u64(&mut out, *key as u64);
                }
            }
            Node::IndexLeaf { cells } => {
                out.push(T_INDEX_LEAF);
                out.push(0);
                out.extend_from_slice(&(cells.len() as u16).to_le_bytes());
                put_u32(&mut out, 0);
                put_u32(&mut out, 0);
                for key in cells {
                    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
                    out.extend_from_slice(key);
                }
            }
            Node::IndexInterior { right, cells } => {
                out.push(T_INDEX_INT);
                out.push(0);
                out.extend_from_slice(&(cells.len() as u16).to_le_bytes());
                put_u32(&mut out, *right);
                put_u32(&mut out, 0);
                for (child, key) in cells {
                    put_u32(&mut out, *child);
                    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
                    out.extend_from_slice(key);
                }
            }
        }
        if out.len() > page_size {
            return None;
        }
        out.resize(page_size, 0);
        Some(out)
    }

    fn decode(buf: &[u8]) -> Result<Node> {
        let count = rd_u16(buf, 2) as usize;
        let mut off = HDR;
        match buf[0] {
            T_TABLE_LEAF => {
                let mut cells = Vec::with_capacity(count);
                for _ in 0..count {
                    let rowid = rd_u64(buf, off) as i64;
                    let total_len = rd_u32(buf, off + 8);
                    let local_len = rd_u32(buf, off + 12) as usize;
                    let overflow = rd_u32(buf, off + 16);
                    off += 20;
                    let local = buf
                        .get(off..off + local_len)
                        .ok_or(DbError::Corrupt("leaf cell overruns page"))?
                        .to_vec();
                    off += local_len;
                    cells.push((
                        rowid,
                        Payload {
                            total_len,
                            local,
                            overflow,
                        },
                    ));
                }
                Ok(Node::TableLeaf { cells })
            }
            T_TABLE_INT => {
                let right = rd_u32(buf, 4);
                let mut cells = Vec::with_capacity(count);
                for _ in 0..count {
                    cells.push((rd_u32(buf, off), rd_u64(buf, off + 4) as i64));
                    off += 12;
                }
                Ok(Node::TableInterior { right, cells })
            }
            T_INDEX_LEAF => {
                let mut cells = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = rd_u16(buf, off) as usize;
                    off += 2;
                    cells.push(
                        buf.get(off..off + len)
                            .ok_or(DbError::Corrupt("index cell overruns page"))?
                            .to_vec(),
                    );
                    off += len;
                }
                Ok(Node::IndexLeaf { cells })
            }
            T_INDEX_INT => {
                let right = rd_u32(buf, 4);
                let mut cells = Vec::with_capacity(count);
                for _ in 0..count {
                    let child = rd_u32(buf, off);
                    let len = rd_u16(buf, off + 4) as usize;
                    off += 6;
                    cells.push((
                        child,
                        buf.get(off..off + len)
                            .ok_or(DbError::Corrupt("index cell overruns page"))?
                            .to_vec(),
                    ));
                    off += len;
                }
                Ok(Node::IndexInterior { right, cells })
            }
            _ => Err(DbError::Corrupt("unknown b-tree page type")),
        }
    }
}

/// Visitor for table scans: receives the pager (for overflow reads by the
/// caller), the rowid, and the row payload; returns `false` to stop.
pub type TableVisitor<'a, D> = dyn FnMut(&mut Pager<D>, i64, Vec<u8>) -> Result<bool> + 'a;

/// Result of a recursive insert: the child split, promoting a separator.
enum Split<K> {
    None,
    Promoted { sep: K, right: PageNo },
}

/// Creates an empty table B-tree, returning its root page.
pub fn create_table_tree<D: BlockDevice>(pager: &mut Pager<D>) -> Result<PageNo> {
    let root = pager.alloc_page()?;
    write_node(pager, root, &Node::TableLeaf { cells: Vec::new() })?;
    Ok(root)
}

/// Creates an empty index B-tree, returning its root page.
pub fn create_index_tree<D: BlockDevice>(pager: &mut Pager<D>) -> Result<PageNo> {
    let root = pager.alloc_page()?;
    write_node(pager, root, &Node::IndexLeaf { cells: Vec::new() })?;
    Ok(root)
}

fn read_node<D: BlockDevice>(pager: &mut Pager<D>, pgno: PageNo) -> Result<Node> {
    let page = pager.page(pgno)?;
    Node::decode(&page)
}

fn write_node<D: BlockDevice>(pager: &mut Pager<D>, pgno: PageNo, node: &Node) -> Result<()> {
    let Some(page) = node.encode(pager.page_size()) else {
        unreachable!("caller splits before a node can overflow a page")
    };
    pager.put(pgno, page)
}

/// Largest payload prefix stored in-page; the rest goes to overflow pages.
fn max_local(page_size: usize) -> usize {
    page_size / 4
}

/// Split index such that both halves stay within a page even when cell
/// sizes are skewed: accumulate encoded sizes until half the total, while
/// keeping both sides non-empty.
fn split_point_by_size<T>(cells: &[T], size_of: impl Fn(&T) -> usize) -> usize {
    debug_assert!(cells.len() >= 2, "cannot split fewer than two cells");
    let total: usize = cells.iter().map(&size_of).sum();
    let mut acc = 0;
    for (i, c) in cells.iter().enumerate() {
        acc += size_of(c);
        if acc * 2 >= total {
            return (i + 1).min(cells.len() - 1).max(1);
        }
    }
    cells.len() / 2
}

fn write_overflow<D: BlockDevice>(pager: &mut Pager<D>, rest: &[u8]) -> Result<PageNo> {
    // Build the chain back to front so each page knows its successor.
    let ps = pager.page_size();
    let per_page = ps - 8;
    let mut next: PageNo = 0;
    let chunks: Vec<&[u8]> = rest.chunks(per_page).collect();
    for chunk in chunks.iter().rev() {
        let pgno = pager.alloc_page()?;
        let mut page = vec![0u8; ps];
        page[0..4].copy_from_slice(&next.to_le_bytes());
        page[4..8].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
        page[8..8 + chunk.len()].copy_from_slice(chunk);
        pager.put(pgno, page)?;
        next = pgno;
    }
    Ok(next)
}

fn read_overflow<D: BlockDevice>(
    pager: &mut Pager<D>,
    mut pgno: PageNo,
    out: &mut Vec<u8>,
) -> Result<()> {
    while pgno != 0 {
        let page = pager.page(pgno)?;
        let next = rd_u32(&page, 0);
        let len = rd_u32(&page, 4) as usize;
        out.extend_from_slice(&page[8..8 + len]);
        pgno = next;
    }
    Ok(())
}

fn free_overflow<D: BlockDevice>(pager: &mut Pager<D>, mut pgno: PageNo) -> Result<()> {
    while pgno != 0 {
        let page = pager.page(pgno)?;
        let next = rd_u32(&page, 0);
        pager.free_page(pgno)?;
        pgno = next;
    }
    Ok(())
}

fn make_payload<D: BlockDevice>(pager: &mut Pager<D>, value: &[u8]) -> Result<Payload> {
    let cap = max_local(pager.page_size());
    if value.len() <= cap {
        Ok(Payload {
            total_len: value.len() as u32,
            local: value.to_vec(),
            overflow: 0,
        })
    } else {
        let overflow = write_overflow(pager, &value[cap..])?;
        Ok(Payload {
            total_len: value.len() as u32,
            local: value[..cap].to_vec(),
            overflow,
        })
    }
}

fn payload_value<D: BlockDevice>(pager: &mut Pager<D>, p: &Payload) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(p.total_len as usize);
    out.extend_from_slice(&p.local);
    if p.overflow != 0 {
        read_overflow(pager, p.overflow, &mut out)?;
    }
    Ok(out)
}

// --- table tree ------------------------------------------------------------

/// Inserts (or replaces) `value` under `rowid`.
pub fn table_insert<D: BlockDevice>(
    pager: &mut Pager<D>,
    root: PageNo,
    rowid: i64,
    value: &[u8],
) -> Result<()> {
    let payload = make_payload(pager, value)?;
    match table_insert_rec(pager, root, rowid, payload)? {
        Split::None => Ok(()),
        Split::Promoted { sep, right } => {
            // The root keeps its page number: move its (left-half) content
            // aside and turn the root page into an interior node.
            let left = pager.alloc_page()?;
            let old = read_node(pager, root)?;
            write_node(pager, left, &old)?;
            write_node(
                pager,
                root,
                &Node::TableInterior {
                    right,
                    cells: vec![(left, sep)],
                },
            )
        }
    }
}

fn table_insert_rec<D: BlockDevice>(
    pager: &mut Pager<D>,
    pgno: PageNo,
    rowid: i64,
    payload: Payload,
) -> Result<Split<i64>> {
    let node = read_node(pager, pgno)?;
    match node {
        Node::TableLeaf { mut cells } => {
            match cells.binary_search_by_key(&rowid, |(r, _)| *r) {
                Ok(i) => {
                    if cells[i].1.overflow != 0 {
                        free_overflow(pager, cells[i].1.overflow)?;
                    }
                    cells[i].1 = payload;
                }
                Err(i) => cells.insert(i, (rowid, payload)),
            }
            finish_table_leaf(pager, pgno, cells)
        }
        Node::TableInterior { right, cells } => {
            let idx = cells.partition_point(|(_, key)| *key < rowid);
            let child = if idx == cells.len() {
                right
            } else {
                cells[idx].0
            };
            match table_insert_rec(pager, child, rowid, payload)? {
                Split::None => Ok(Split::None),
                Split::Promoted {
                    sep,
                    right: new_right,
                } => {
                    let mut cells = cells;
                    let mut right = right;
                    // The child kept its lower half; new_right holds the
                    // upper half. Wire new_right after child.
                    if idx == cells.len() {
                        cells.push((child, sep));
                        right = new_right;
                    } else {
                        cells.insert(idx, (child, sep));
                        cells[idx + 1].0 = new_right;
                    }
                    finish_table_interior(pager, pgno, right, cells)
                }
            }
        }
        _ => Err(DbError::Corrupt("index node in table tree")),
    }
}

fn finish_table_leaf<D: BlockDevice>(
    pager: &mut Pager<D>,
    pgno: PageNo,
    cells: Vec<(i64, Payload)>,
) -> Result<Split<i64>> {
    let node = Node::TableLeaf { cells };
    if let Some(page) = node.encode(pager.page_size()) {
        pager.put(pgno, page)?;
        return Ok(Split::None);
    }
    let Node::TableLeaf { mut cells } = node else {
        unreachable!()
    };
    let mid = split_point_by_size(&cells, |(_, p): &(i64, Payload)| 20 + p.local.len());
    let upper = cells.split_off(mid);
    let Some(&(sep, _)) = cells.last() else {
        unreachable!("non-empty lower half")
    };
    let right = pager.alloc_page()?;
    write_node(pager, right, &Node::TableLeaf { cells: upper })?;
    write_node(pager, pgno, &Node::TableLeaf { cells })?;
    Ok(Split::Promoted { sep, right })
}

fn finish_table_interior<D: BlockDevice>(
    pager: &mut Pager<D>,
    pgno: PageNo,
    right: PageNo,
    cells: Vec<(PageNo, i64)>,
) -> Result<Split<i64>> {
    let node = Node::TableInterior { right, cells };
    if let Some(page) = node.encode(pager.page_size()) {
        pager.put(pgno, page)?;
        return Ok(Split::None);
    }
    let Node::TableInterior { right, mut cells } = node else {
        unreachable!()
    };
    let mid = cells.len() / 2; // interior cells are fixed-size
    let mut upper = cells.split_off(mid);
    // The separator moves up; its child becomes the left node's right.
    let (sep_child, sep_key) = upper.remove(0);
    let new_right = pager.alloc_page()?;
    write_node(
        pager,
        new_right,
        &Node::TableInterior {
            right,
            cells: upper,
        },
    )?;
    write_node(
        pager,
        pgno,
        &Node::TableInterior {
            right: sep_child,
            cells,
        },
    )?;
    Ok(Split::Promoted {
        sep: sep_key,
        right: new_right,
    })
}

/// Fetches the value stored under `rowid`.
pub fn table_get<D: BlockDevice>(
    pager: &mut Pager<D>,
    root: PageNo,
    rowid: i64,
) -> Result<Option<Vec<u8>>> {
    let mut pgno = root;
    loop {
        match read_node(pager, pgno)? {
            Node::TableLeaf { cells } => {
                return match cells.binary_search_by_key(&rowid, |(r, _)| *r) {
                    Ok(i) => Ok(Some(payload_value(pager, &cells[i].1)?)),
                    Err(_) => Ok(None),
                };
            }
            Node::TableInterior { right, cells } => {
                let idx = cells.partition_point(|(_, key)| *key < rowid);
                pgno = if idx == cells.len() {
                    right
                } else {
                    cells[idx].0
                };
            }
            _ => return Err(DbError::Corrupt("index node in table tree")),
        }
    }
}

/// Walks rows with `rowid >= start` in order; the callback returns `false`
/// to stop.
pub fn table_scan_from<D: BlockDevice>(
    pager: &mut Pager<D>,
    root: PageNo,
    start: i64,
    f: &mut TableVisitor<'_, D>,
) -> Result<()> {
    scan_table_rec(pager, root, start, f).map(|_| ())
}

fn scan_table_rec<D: BlockDevice>(
    pager: &mut Pager<D>,
    pgno: PageNo,
    start: i64,
    f: &mut TableVisitor<'_, D>,
) -> Result<bool> {
    match read_node(pager, pgno)? {
        Node::TableLeaf { cells } => {
            let from = cells.partition_point(|(r, _)| *r < start);
            for (rowid, payload) in &cells[from..] {
                let value = payload_value(pager, payload)?;
                if !f(pager, *rowid, value)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Node::TableInterior { right, cells } => {
            let from = cells.partition_point(|(_, key)| *key < start);
            for (child, _) in &cells[from..] {
                if !scan_table_rec(pager, *child, start, f)? {
                    return Ok(false);
                }
            }
            scan_table_rec(pager, right, start, f)
        }
        _ => Err(DbError::Corrupt("index node in table tree")),
    }
}

/// Largest rowid in the tree (for rowid assignment).
pub fn table_last_rowid<D: BlockDevice>(pager: &mut Pager<D>, root: PageNo) -> Result<Option<i64>> {
    let mut pgno = root;
    loop {
        match read_node(pager, pgno)? {
            Node::TableLeaf { cells } => return Ok(cells.last().map(|(r, _)| *r)),
            Node::TableInterior { right, .. } => pgno = right,
            _ => return Err(DbError::Corrupt("index node in table tree")),
        }
    }
}

/// Deletes `rowid`; returns true if it existed.
pub fn table_delete<D: BlockDevice>(
    pager: &mut Pager<D>,
    root: PageNo,
    rowid: i64,
) -> Result<bool> {
    let removed = table_delete_rec(pager, root, rowid)?;
    collapse_root(pager, root)?;
    Ok(removed)
}

fn table_delete_rec<D: BlockDevice>(
    pager: &mut Pager<D>,
    pgno: PageNo,
    rowid: i64,
) -> Result<bool> {
    match read_node(pager, pgno)? {
        Node::TableLeaf { mut cells } => match cells.binary_search_by_key(&rowid, |(r, _)| *r) {
            Ok(i) => {
                let (_, payload) = cells.remove(i);
                if payload.overflow != 0 {
                    free_overflow(pager, payload.overflow)?;
                }
                write_node(pager, pgno, &Node::TableLeaf { cells })?;
                Ok(true)
            }
            Err(_) => Ok(false),
        },
        Node::TableInterior {
            mut right,
            mut cells,
        } => {
            let idx = cells.partition_point(|(_, key)| *key < rowid);
            let child = if idx == cells.len() {
                right
            } else {
                cells[idx].0
            };
            let removed = table_delete_rec(pager, child, rowid)?;
            if removed {
                let mut changed = false;
                if node_is_empty_leafless(pager, child)? && !cells.is_empty() {
                    if idx == cells.len() {
                        let Some((new_right, _)) = cells.pop() else {
                            unreachable!("non-empty")
                        };
                        right = new_right;
                    } else {
                        cells.remove(idx);
                    }
                    pager.free_page(child)?;
                    changed = true;
                }
                // Merge an underfull leaf with a neighbour: at its own
                // position, or as the right neighbour of the previous one.
                if !cells.is_empty() {
                    let anchor = idx.min(cells.len() - 1);
                    if merge_table_leaves(pager, &mut right, &mut cells, anchor)?
                        || (anchor > 0
                            && merge_table_leaves(pager, &mut right, &mut cells, anchor - 1)?)
                    {
                        changed = true;
                    }
                }
                if changed {
                    write_node(pager, pgno, &Node::TableInterior { right, cells })?;
                }
            }
            Ok(removed)
        }
        _ => Err(DbError::Corrupt("index node in table tree")),
    }
}

/// Serialized size of a node (for underflow detection).
fn node_size(node: &Node) -> usize {
    HDR + match node {
        Node::TableLeaf { cells } => cells.iter().map(|(_, p)| 20 + p.local.len()).sum::<usize>(),
        Node::TableInterior { cells, .. } => cells.len() * 12,
        Node::IndexLeaf { cells } => cells.iter().map(|k| 2 + k.len()).sum::<usize>(),
        Node::IndexInterior { cells, .. } => cells.iter().map(|(_, k)| 6 + k.len()).sum::<usize>(),
    }
}

/// A node smaller than this fraction of a page is "underfull": deletes
/// try to merge it with a leaf neighbour.
fn is_underfull(node: &Node, page_size: usize) -> bool {
    node_size(node) < page_size / 4
}

/// Tries to merge the leaf child at parent position `idx` with its right
/// neighbour (position `idx + 1`, or the rightmost child). Fires only
/// when one of the two is underfull and the combined cells fit in 90 % of
/// a page. On success the left page absorbs the neighbour, the
/// neighbour's page is freed, and the parent's arrays are fixed up;
/// returns whether the parent changed.
fn merge_table_leaves<D: BlockDevice>(
    pager: &mut Pager<D>,
    right: &mut PageNo,
    cells: &mut Vec<(PageNo, i64)>,
    idx: usize,
) -> Result<bool> {
    if idx >= cells.len() {
        return Ok(false); // the rightmost child has no right neighbour
    }
    let left_pg = cells[idx].0;
    let neighbour_pg = if idx + 1 < cells.len() {
        cells[idx + 1].0
    } else {
        *right
    };
    let (Node::TableLeaf { cells: lc }, Node::TableLeaf { cells: rc }) =
        (read_node(pager, left_pg)?, read_node(pager, neighbour_pg)?)
    else {
        return Ok(false);
    };
    let ps = pager.page_size();
    let l = Node::TableLeaf { cells: lc };
    let r = Node::TableLeaf { cells: rc };
    if !is_underfull(&l, ps) && !is_underfull(&r, ps) {
        return Ok(false);
    }
    let (Node::TableLeaf { cells: mut cells_l }, Node::TableLeaf { cells: cells_r }) = (l, r)
    else {
        unreachable!()
    };
    cells_l.extend(cells_r);
    let merged = Node::TableLeaf { cells: cells_l };
    if node_size(&merged) > ps * 9 / 10 {
        return Ok(false);
    }
    write_node(pager, left_pg, &merged)?;
    // The merged node takes over the neighbour's key range: drop this
    // entry's separator and point the neighbour's slot at the left page.
    cells.remove(idx);
    if idx < cells.len() {
        cells[idx].0 = left_pg;
    } else {
        *right = left_pg;
    }
    pager.free_page(neighbour_pg)?;
    Ok(true)
}

/// Index-tree sibling merge (same shape as [`merge_table_leaves`]).
fn merge_index_leaves<D: BlockDevice>(
    pager: &mut Pager<D>,
    right: &mut PageNo,
    cells: &mut Vec<(PageNo, Vec<u8>)>,
    idx: usize,
) -> Result<bool> {
    if idx >= cells.len() {
        return Ok(false);
    }
    let left_pg = cells[idx].0;
    let neighbour_pg = if idx + 1 < cells.len() {
        cells[idx + 1].0
    } else {
        *right
    };
    let (Node::IndexLeaf { cells: lc }, Node::IndexLeaf { cells: rc }) =
        (read_node(pager, left_pg)?, read_node(pager, neighbour_pg)?)
    else {
        return Ok(false);
    };
    let ps = pager.page_size();
    let l = Node::IndexLeaf { cells: lc };
    let r = Node::IndexLeaf { cells: rc };
    if !is_underfull(&l, ps) && !is_underfull(&r, ps) {
        return Ok(false);
    }
    let (Node::IndexLeaf { cells: mut cells_l }, Node::IndexLeaf { cells: cells_r }) = (l, r)
    else {
        unreachable!()
    };
    cells_l.extend(cells_r);
    let merged = Node::IndexLeaf { cells: cells_l };
    if node_size(&merged) > ps * 9 / 10 {
        return Ok(false);
    }
    write_node(pager, left_pg, &merged)?;
    cells.remove(idx);
    if idx < cells.len() {
        cells[idx].0 = left_pg;
    } else {
        *right = left_pg;
    }
    pager.free_page(neighbour_pg)?;
    Ok(true)
}

/// True if the page is a leaf with no cells.
fn node_is_empty_leafless<D: BlockDevice>(pager: &mut Pager<D>, pgno: PageNo) -> Result<bool> {
    Ok(match read_node(pager, pgno)? {
        Node::TableLeaf { cells } => cells.is_empty(),
        Node::IndexLeaf { cells } => cells.is_empty(),
        _ => false,
    })
}

/// If the root is an interior node with no separators, absorb its only
/// child so the tree shrinks (keeping the root page number stable).
fn collapse_root<D: BlockDevice>(pager: &mut Pager<D>, root: PageNo) -> Result<()> {
    loop {
        let only_child = match read_node(pager, root)? {
            Node::TableInterior { right, cells } if cells.is_empty() => Some(right),
            Node::IndexInterior { right, cells } if cells.is_empty() => Some(right),
            _ => None,
        };
        let Some(child) = only_child else {
            return Ok(());
        };
        let node = read_node(pager, child)?;
        write_node(pager, root, &node)?;
        pager.free_page(child)?;
    }
}

// --- index tree --------------------------------------------------------------

/// Inserts an encoded key (keys are unique: they embed the rowid).
pub fn index_insert<D: BlockDevice>(pager: &mut Pager<D>, root: PageNo, key: &[u8]) -> Result<()> {
    assert!(key.len() < pager.page_size() / 4, "index key too large");
    match index_insert_rec(pager, root, key)? {
        Split::None => Ok(()),
        Split::Promoted { sep, right } => {
            let left = pager.alloc_page()?;
            let old = read_node(pager, root)?;
            write_node(pager, left, &old)?;
            write_node(
                pager,
                root,
                &Node::IndexInterior {
                    right,
                    cells: vec![(left, sep)],
                },
            )
        }
    }
}

fn index_insert_rec<D: BlockDevice>(
    pager: &mut Pager<D>,
    pgno: PageNo,
    key: &[u8],
) -> Result<Split<Vec<u8>>> {
    match read_node(pager, pgno)? {
        Node::IndexLeaf { mut cells } => {
            match cells.binary_search_by(|c| c.as_slice().cmp(key)) {
                Ok(_) => {} // duplicate exact key: nothing to do
                Err(i) => cells.insert(i, key.to_vec()),
            }
            let node = Node::IndexLeaf { cells };
            if let Some(page) = node.encode(pager.page_size()) {
                pager.put(pgno, page)?;
                return Ok(Split::None);
            }
            let Node::IndexLeaf { mut cells } = node else {
                unreachable!()
            };
            let mid = split_point_by_size(&cells, |k: &Vec<u8>| 2 + k.len());
            let upper = cells.split_off(mid);
            let Some(sep) = cells.last().cloned() else {
                unreachable!("non-empty")
            };
            let right = pager.alloc_page()?;
            write_node(pager, right, &Node::IndexLeaf { cells: upper })?;
            write_node(pager, pgno, &Node::IndexLeaf { cells })?;
            Ok(Split::Promoted { sep, right })
        }
        Node::IndexInterior { right, cells } => {
            let idx = cells.partition_point(|(_, k)| k.as_slice() < key);
            let child = if idx == cells.len() {
                right
            } else {
                cells[idx].0
            };
            match index_insert_rec(pager, child, key)? {
                Split::None => Ok(Split::None),
                Split::Promoted {
                    sep,
                    right: new_right,
                } => {
                    let mut cells = cells;
                    let mut right = right;
                    if idx == cells.len() {
                        cells.push((child, sep));
                        right = new_right;
                    } else {
                        cells.insert(idx, (child, sep));
                        cells[idx + 1].0 = new_right;
                    }
                    let node = Node::IndexInterior { right, cells };
                    if let Some(page) = node.encode(pager.page_size()) {
                        pager.put(pgno, page)?;
                        return Ok(Split::None);
                    }
                    let Node::IndexInterior { right, mut cells } = node else {
                        unreachable!()
                    };
                    let mid = split_point_by_size(&cells, |(_, k): &(u32, Vec<u8>)| 6 + k.len());
                    let mut upper = cells.split_off(mid);
                    let (sep_child, sep_key) = upper.remove(0);
                    let new_right2 = pager.alloc_page()?;
                    write_node(
                        pager,
                        new_right2,
                        &Node::IndexInterior {
                            right,
                            cells: upper,
                        },
                    )?;
                    write_node(
                        pager,
                        pgno,
                        &Node::IndexInterior {
                            right: sep_child,
                            cells,
                        },
                    )?;
                    Ok(Split::Promoted {
                        sep: sep_key,
                        right: new_right2,
                    })
                }
            }
        }
        _ => Err(DbError::Corrupt("table node in index tree")),
    }
}

/// Deletes an exact key; returns true if it existed.
pub fn index_delete<D: BlockDevice>(
    pager: &mut Pager<D>,
    root: PageNo,
    key: &[u8],
) -> Result<bool> {
    let removed = index_delete_rec(pager, root, key)?;
    collapse_root(pager, root)?;
    Ok(removed)
}

fn index_delete_rec<D: BlockDevice>(
    pager: &mut Pager<D>,
    pgno: PageNo,
    key: &[u8],
) -> Result<bool> {
    match read_node(pager, pgno)? {
        Node::IndexLeaf { mut cells } => match cells.binary_search_by(|c| c.as_slice().cmp(key)) {
            Ok(i) => {
                cells.remove(i);
                write_node(pager, pgno, &Node::IndexLeaf { cells })?;
                Ok(true)
            }
            Err(_) => Ok(false),
        },
        Node::IndexInterior {
            mut right,
            mut cells,
        } => {
            let idx = cells.partition_point(|(_, k)| k.as_slice() < key);
            let child = if idx == cells.len() {
                right
            } else {
                cells[idx].0
            };
            let removed = index_delete_rec(pager, child, key)?;
            if removed {
                let mut changed = false;
                if node_is_empty_leafless(pager, child)? && !cells.is_empty() {
                    if idx == cells.len() {
                        let Some((new_right, _)) = cells.pop() else {
                            unreachable!("non-empty")
                        };
                        right = new_right;
                    } else {
                        cells.remove(idx);
                    }
                    pager.free_page(child)?;
                    changed = true;
                }
                if !cells.is_empty() {
                    let anchor = idx.min(cells.len() - 1);
                    if merge_index_leaves(pager, &mut right, &mut cells, anchor)?
                        || (anchor > 0
                            && merge_index_leaves(pager, &mut right, &mut cells, anchor - 1)?)
                    {
                        changed = true;
                    }
                }
                if changed {
                    write_node(pager, pgno, &Node::IndexInterior { right, cells })?;
                }
            }
            Ok(removed)
        }
        _ => Err(DbError::Corrupt("table node in index tree")),
    }
}

/// Walks keys `>= start` in order; the callback returns `false` to stop.
pub fn index_scan_from<D: BlockDevice>(
    pager: &mut Pager<D>,
    root: PageNo,
    start: &[u8],
    f: &mut dyn FnMut(&[u8]) -> Result<bool>,
) -> Result<()> {
    scan_index_rec(pager, root, start, f).map(|_| ())
}

fn scan_index_rec<D: BlockDevice>(
    pager: &mut Pager<D>,
    pgno: PageNo,
    start: &[u8],
    f: &mut dyn FnMut(&[u8]) -> Result<bool>,
) -> Result<bool> {
    match read_node(pager, pgno)? {
        Node::IndexLeaf { cells } => {
            let from = cells.partition_point(|c| c.as_slice() < start);
            for key in &cells[from..] {
                if !f(key)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Node::IndexInterior { right, cells } => {
            let from = cells.partition_point(|(_, k)| k.as_slice() < start);
            for (child, _) in &cells[from..] {
                if !scan_index_rec(pager, *child, start, f)? {
                    return Ok(false);
                }
            }
            scan_index_rec(pager, right, start, f)
        }
        _ => Err(DbError::Corrupt("table node in index tree")),
    }
}

/// Frees every page of a tree except the root itself, then resets the
/// root to an empty leaf (DROP TABLE / DROP INDEX).
pub fn clear_tree<D: BlockDevice>(
    pager: &mut Pager<D>,
    root: PageNo,
    is_table: bool,
) -> Result<()> {
    clear_rec(pager, root, true)?;
    let node = if is_table {
        Node::TableLeaf { cells: Vec::new() }
    } else {
        Node::IndexLeaf { cells: Vec::new() }
    };
    write_node(pager, root, &node)
}

fn clear_rec<D: BlockDevice>(pager: &mut Pager<D>, pgno: PageNo, is_root: bool) -> Result<()> {
    match read_node(pager, pgno)? {
        Node::TableLeaf { cells } => {
            for (_, p) in &cells {
                if p.overflow != 0 {
                    free_overflow(pager, p.overflow)?;
                }
            }
        }
        Node::TableInterior { right, cells } => {
            for (child, _) in &cells {
                clear_rec(pager, *child, false)?;
            }
            clear_rec(pager, right, false)?;
        }
        Node::IndexLeaf { .. } => {}
        Node::IndexInterior { right, cells } => {
            for (child, _) in &cells {
                clear_rec(pager, *child, false)?;
            }
            clear_rec(pager, right, false)?;
        }
    }
    if !is_root {
        pager.free_page(pgno)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::{DbJournalMode, SharedFs};
    use std::cell::RefCell;
    use std::rc::Rc;
    use xftl_flash::{FlashChip, FlashConfig, SimClock};
    use xftl_fs::{FileSystem, FsConfig, JournalMode};
    use xftl_ftl::PageMappedFtl;

    fn pager() -> Pager<PageMappedFtl> {
        let chip = FlashChip::new(FlashConfig::tiny(220), SimClock::new());
        let dev = PageMappedFtl::format(chip, 1600).unwrap();
        let fs = FileSystem::mkfs(
            dev,
            JournalMode::Ordered,
            FsConfig {
                inode_count: 16,
                journal_pages: 32,
                cache_pages: 256,
            },
        )
        .unwrap();
        let fs: SharedFs<PageMappedFtl> = Rc::new(RefCell::new(fs));
        Pager::open(fs, "test.db", DbJournalMode::Rollback).unwrap()
    }

    #[test]
    fn insert_get_small() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        table_insert(&mut p, root, 1, b"one").unwrap();
        table_insert(&mut p, root, 2, b"two").unwrap();
        p.commit().unwrap();
        assert_eq!(table_get(&mut p, root, 1).unwrap().unwrap(), b"one");
        assert_eq!(table_get(&mut p, root, 2).unwrap().unwrap(), b"two");
        assert_eq!(table_get(&mut p, root, 3).unwrap(), None);
    }

    #[test]
    fn replace_overwrites() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        table_insert(&mut p, root, 1, b"v1").unwrap();
        table_insert(&mut p, root, 1, b"v2").unwrap();
        p.commit().unwrap();
        assert_eq!(table_get(&mut p, root, 1).unwrap().unwrap(), b"v2");
    }

    #[test]
    fn thousands_of_rows_split_correctly() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        let n = 3000i64;
        for i in 0..n {
            let v = format!("row-{i:06}");
            table_insert(&mut p, root, i, v.as_bytes()).unwrap();
        }
        p.commit().unwrap();
        for i in (0..n).step_by(97) {
            let got = table_get(&mut p, root, i).unwrap().unwrap();
            assert_eq!(got, format!("row-{i:06}").as_bytes());
        }
        assert_eq!(table_last_rowid(&mut p, root).unwrap(), Some(n - 1));
    }

    #[test]
    fn random_order_inserts_scan_sorted() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        // Deterministic pseudo-shuffle.
        let n = 1000i64;
        for i in 0..n {
            let rowid = (i * 7919) % n;
            table_insert(&mut p, root, rowid, format!("{rowid}").as_bytes()).unwrap();
        }
        p.commit().unwrap();
        let mut seen = Vec::new();
        table_scan_from(&mut p, root, 0, &mut |_, rowid, _| {
            seen.push(rowid);
            Ok(true)
        })
        .unwrap();
        let expect: Vec<i64> = (0..n).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn scan_from_midpoint_and_early_stop() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        for i in 0..500i64 {
            table_insert(&mut p, root, i, b"x").unwrap();
        }
        p.commit().unwrap();
        let mut seen = Vec::new();
        table_scan_from(&mut p, root, 250, &mut |_, rowid, _| {
            seen.push(rowid);
            Ok(seen.len() < 10)
        })
        .unwrap();
        assert_eq!(seen, (250..260).collect::<Vec<i64>>());
    }

    #[test]
    fn delete_then_get_misses() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        for i in 0..800i64 {
            table_insert(&mut p, root, i, format!("{i}").as_bytes()).unwrap();
        }
        for i in (0..800i64).step_by(2) {
            assert!(table_delete(&mut p, root, i).unwrap());
        }
        assert!(!table_delete(&mut p, root, 0).unwrap());
        p.commit().unwrap();
        for i in 0..800i64 {
            let got = table_get(&mut p, root, i).unwrap();
            if i % 2 == 0 {
                assert!(got.is_none(), "rowid {i} should be gone");
            } else {
                assert_eq!(got.unwrap(), format!("{i}").as_bytes());
            }
        }
    }

    #[test]
    fn delete_everything_leaves_usable_tree() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        for i in 0..600i64 {
            table_insert(&mut p, root, i, b"payload-payload").unwrap();
        }
        for i in 0..600i64 {
            assert!(table_delete(&mut p, root, i).unwrap());
        }
        assert_eq!(table_last_rowid(&mut p, root).unwrap(), None);
        // Reusable after total deletion.
        table_insert(&mut p, root, 42, b"back").unwrap();
        p.commit().unwrap();
        assert_eq!(table_get(&mut p, root, 42).unwrap().unwrap(), b"back");
    }

    #[test]
    fn skewed_cell_sizes_split_by_size() {
        // Many tiny cells plus interleaved near-max-local cells: a split
        // by cell count would leave one half overflowing the page.
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        let big = vec![0xBBu8; max_local(p.page_size())];
        for i in 0..400i64 {
            if i % 10 == 0 {
                table_insert(&mut p, root, i, &big).unwrap();
            } else {
                table_insert(&mut p, root, i, b"t").unwrap();
            }
        }
        p.commit().unwrap();
        for i in (0..400i64).step_by(10) {
            assert_eq!(table_get(&mut p, root, i).unwrap().unwrap(), big);
        }
        assert_eq!(table_get(&mut p, root, 1).unwrap().unwrap(), b"t");
    }

    #[test]
    fn overflow_payload_roundtrip() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        // A blob much larger than a tiny 512-byte page (thumbnail-style).
        let blob: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        table_insert(&mut p, root, 7, &blob).unwrap();
        p.commit().unwrap();
        assert_eq!(table_get(&mut p, root, 7).unwrap().unwrap(), blob);
    }

    #[test]
    fn overflow_pages_freed_on_delete() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        let blob = vec![9u8; 4000];
        table_insert(&mut p, root, 1, &blob).unwrap();
        let grown = p.page_count();
        table_delete(&mut p, root, 1).unwrap();
        // Freed pages are reusable: a second insert must not grow the file.
        table_insert(&mut p, root, 2, &blob).unwrap();
        p.commit().unwrap();
        assert!(p.page_count() <= grown + 1, "overflow chain leaked");
    }

    #[test]
    fn index_insert_scan_ordered() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_index_tree(&mut p).unwrap();
        for i in 0..1200i64 {
            let key =
                crate::record::encode_index_key(&[crate::value::Value::Int((i * 37) % 1200)], i);
            index_insert(&mut p, root, &key).unwrap();
        }
        p.commit().unwrap();
        let mut last: Option<Vec<u8>> = None;
        let mut count = 0;
        index_scan_from(&mut p, root, &[], &mut |k| {
            if let Some(prev) = &last {
                assert!(prev.as_slice() <= k, "index out of order");
            }
            last = Some(k.to_vec());
            count += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(count, 1200);
    }

    #[test]
    fn index_delete_removes_exact_key() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_index_tree(&mut p).unwrap();
        let k1 = crate::record::encode_index_key(&[crate::value::Value::Int(5)], 1);
        let k2 = crate::record::encode_index_key(&[crate::value::Value::Int(5)], 2);
        index_insert(&mut p, root, &k1).unwrap();
        index_insert(&mut p, root, &k2).unwrap();
        assert!(index_delete(&mut p, root, &k1).unwrap());
        assert!(!index_delete(&mut p, root, &k1).unwrap());
        p.commit().unwrap();
        let mut count = 0;
        index_scan_from(&mut p, root, &[], &mut |_| {
            count += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn clear_tree_resets_and_frees() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        for i in 0..500i64 {
            table_insert(&mut p, root, i, b"0123456789abcdef").unwrap();
        }
        clear_tree(&mut p, root, true).unwrap();
        assert_eq!(table_last_rowid(&mut p, root).unwrap(), None);
        // Space was recycled: refilling should not balloon the file.
        let before = p.page_count();
        for i in 0..500i64 {
            table_insert(&mut p, root, i, b"0123456789abcdef").unwrap();
        }
        p.commit().unwrap();
        assert!(p.page_count() <= before + 2);
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use crate::pager::{DbJournalMode, SharedFs};
    use std::cell::RefCell;
    use std::rc::Rc;
    use xftl_flash::{FlashChip, FlashConfig, SimClock};
    use xftl_fs::{FileSystem, FsConfig, JournalMode};
    use xftl_ftl::PageMappedFtl;

    fn pager() -> Pager<PageMappedFtl> {
        let chip = FlashChip::new(FlashConfig::tiny(260), SimClock::new());
        let dev = PageMappedFtl::format(chip, 2_000).unwrap();
        let fs = FileSystem::mkfs(
            dev,
            JournalMode::Ordered,
            FsConfig {
                inode_count: 16,
                journal_pages: 32,
                cache_pages: 256,
            },
        )
        .unwrap();
        let fs: SharedFs<PageMappedFtl> = Rc::new(RefCell::new(fs));
        Pager::open(fs, "merge.db", DbJournalMode::Rollback).unwrap()
    }

    #[test]
    fn mass_delete_merges_leaves_and_reclaims_pages() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_table_tree(&mut p).unwrap();
        for i in 0..2_000i64 {
            table_insert(&mut p, root, i, b"sixteen-bytes-xx").unwrap();
        }
        let full_pages = p.page_count();
        // Delete 95% of the rows, scattered.
        for i in 0..2_000i64 {
            if i % 20 != 0 {
                table_delete(&mut p, root, i).unwrap();
            }
        }
        // Survivors intact.
        for i in (0..2_000i64).step_by(20) {
            assert!(table_get(&mut p, root, i).unwrap().is_some(), "rowid {i}");
        }
        // Freed pages are reusable: inserting a fresh batch must not grow
        // the file beyond its prior footprint.
        for i in 10_000..11_500i64 {
            table_insert(&mut p, root, i, b"sixteen-bytes-xx").unwrap();
        }
        p.commit().unwrap();
        assert!(
            p.page_count() <= full_pages + 2,
            "merging should have recycled leaves: {} vs {}",
            p.page_count(),
            full_pages
        );
        // Order preserved across merges.
        let mut last = i64::MIN;
        table_scan_from(&mut p, root, i64::MIN, &mut |_, rowid, _| {
            assert!(rowid > last);
            last = rowid;
            Ok(true)
        })
        .unwrap();
    }

    #[test]
    fn index_mass_delete_merges() {
        let mut p = pager();
        p.begin().unwrap();
        let root = create_index_tree(&mut p).unwrap();
        let key = |i: i64| crate::record::encode_index_key(&[crate::value::Value::Int(i)], i);
        for i in 0..3_000i64 {
            index_insert(&mut p, root, &key(i)).unwrap();
        }
        for i in 0..3_000i64 {
            if i % 10 != 0 {
                assert!(index_delete(&mut p, root, &key(i)).unwrap());
            }
        }
        p.commit().unwrap();
        let mut n = 0;
        index_scan_from(&mut p, root, &[], &mut |_| {
            n += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(n, 300);
    }
}
