//! SQL values and their comparison semantics.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed SQL value (SQLite's five storage classes).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // the five storage classes are self-describing
pub enum Value {
    Null,
    Int(i64),
    Real(f64),
    Text(String),
    Blob(Vec<u8>),
}

impl Value {
    /// SQLite-style cross-type ordering: NULL < numbers < text < blob,
    /// with ints and reals compared numerically.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn class(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) | Real(_) => 1,
                Text(_) => 2,
                Blob(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Real(a), Real(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Real(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Real(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Text(a), Text(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            _ => class(self).cmp(&class(other)),
        }
    }

    /// SQL equality (`=`); NULL never equals anything.
    pub fn sql_eq(&self, other: &Value) -> bool {
        if matches!(self, Value::Null) || matches!(other, Value::Null) {
            return false;
        }
        self.sort_cmp(other) == Ordering::Equal
    }

    /// Numeric view, for arithmetic.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Real(r) => Some(*r as i64),
            _ => None,
        }
    }

    /// True in a WHERE context.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Real(r) => *r != 0.0,
            Value::Text(_) | Value::Blob(_) => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Blob(b) => write!(
                f,
                "x'{}'",
                b.iter().map(|x| format!("{x:02x}")).collect::<String>()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_ordering() {
        let vals = [
            Value::Null,
            Value::Int(5),
            Value::Real(7.5),
            Value::Text("a".into()),
            Value::Blob(vec![0]),
        ];
        for w in vals.windows(2) {
            assert_eq!(
                w[0].sort_cmp(&w[1]),
                Ordering::Less,
                "{:?} < {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn numeric_comparison_mixes_int_and_real() {
        assert_eq!(Value::Int(2).sort_cmp(&Value::Real(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).sort_cmp(&Value::Real(2.5)), Ordering::Less);
        assert_eq!(Value::Real(3.5).sort_cmp(&Value::Int(3)), Ordering::Greater);
    }

    #[test]
    fn null_never_equals() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(0)));
        assert!(Value::Int(1).sql_eq(&Value::Int(1)));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Text("x".into()).is_truthy());
    }
}
