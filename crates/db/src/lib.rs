//! # xftl-db — a SQLite-like embedded SQL database
//!
//! The paper's host-side workload generator: an embedded, serverless SQL
//! engine whose pager reproduces SQLite 3.7.10's storage protocols —
//! rollback-journal mode, WAL mode (checkpoint every 1000 frames), and
//! journaling-`Off` mode over X-FTL — on top of the `xftl-fs` file system.
//! Tables and indexes are B+trees of whole 8 KB pages; rows use SQLite's
//! record format; large blobs spill to overflow page chains; the buffer
//! pool is managed steal/force.
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use xftl_core::XFtl;
//! use xftl_db::{Connection, DbJournalMode, Value};
//! use xftl_flash::{FlashChip, FlashConfig, SimClock};
//! use xftl_fs::{FileSystem, FsConfig, JournalMode};
//!
//! let clock = SimClock::new();
//! let chip = FlashChip::new(FlashConfig::tiny(220), clock.clone());
//! let dev = XFtl::format(chip, 1600).unwrap();
//! let fs = FileSystem::mkfs_tx(dev, JournalMode::Off, FsConfig::default()).unwrap();
//! let fs = Rc::new(RefCell::new(fs));
//!
//! let mut db = Connection::open(fs, "app.db", DbJournalMode::Off).unwrap();
//! db.execute("CREATE TABLE msgs (id INTEGER PRIMARY KEY, body TEXT)").unwrap();
//! db.execute_with("INSERT INTO msgs (body) VALUES (?)",
//!                 &[Value::Text("hello".into())]).unwrap();
//! let rows = db.query("SELECT body FROM msgs WHERE id = 1").unwrap();
//! assert_eq!(rows[0][0], Value::Text("hello".into()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree;
pub mod catalog;
pub mod db;
pub mod error;
pub mod exec;
pub mod multidb;
pub mod pager;
pub mod record;
pub mod sql;
pub mod value;

pub use catalog::{Catalog, IndexInfo, TableInfo};
pub use db::Connection;
pub use error::{DbError, Result};
pub use exec::ExecOutcome;
pub use multidb::{begin_multi, commit_multi, rollback_multi};
pub use pager::{DbJournalMode, Pager, PagerStats, SharedFs};
pub use value::Value;

#[cfg(test)]
mod db_tests;
