//! Row serialization.
//!
//! Two encodings, mirroring SQLite's design:
//!
//! * **Record format** — rows stored in table B-trees: a header of varint
//!   serial types followed by the value bodies (SQLite's record format).
//! * **Key encoding** — index keys: an order-preserving byte encoding so
//!   that `memcmp` order equals SQL comparison order, which lets the index
//!   B-tree compare keys without decoding.

use crate::error::{DbError, Result};
use crate::value::Value;

// --- varints (SQLite's 1..9-byte big-endian varint) -----------------------

/// Appends a varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    let mut tmp = [0u8; 10];
    let mut n = 0;
    loop {
        tmp[n] = (v & 0x7F) as u8;
        v >>= 7;
        n += 1;
        if v == 0 {
            break;
        }
    }
    for i in (0..n).rev() {
        let mut b = tmp[i];
        if i != 0 {
            b |= 0x80;
        }
        out.push(b);
    }
}

/// Reads a varint, returning (value, bytes consumed).
pub fn get_varint(buf: &[u8]) -> Result<(u64, usize)> {
    let mut v: u64 = 0;
    for (i, &b) in buf.iter().take(10).enumerate() {
        v = (v << 7) | (b & 0x7F) as u64;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
    }
    Err(DbError::Corrupt("truncated varint"))
}

// --- record format ---------------------------------------------------------

/// Serializes a row of values into SQLite's record format.
pub fn encode_record(values: &[Value]) -> Vec<u8> {
    let mut header = Vec::new();
    let mut body = Vec::new();
    for v in values {
        match v {
            Value::Null => put_varint(&mut header, 0),
            Value::Int(i) => {
                put_varint(&mut header, 6); // 8-byte big-endian int
                body.extend_from_slice(&i.to_be_bytes());
            }
            Value::Real(r) => {
                put_varint(&mut header, 7);
                body.extend_from_slice(&r.to_be_bytes());
            }
            Value::Blob(b) => {
                put_varint(&mut header, 12 + 2 * b.len() as u64);
                body.extend_from_slice(b);
            }
            Value::Text(s) => {
                put_varint(&mut header, 13 + 2 * s.len() as u64);
                body.extend_from_slice(s.as_bytes());
            }
        }
    }
    let mut out = Vec::with_capacity(header.len() + body.len() + 2);
    put_varint(&mut out, header.len() as u64);
    out.extend_from_slice(&header);
    out.extend_from_slice(&body);
    out
}

/// Parses a record back into values.
pub fn decode_record(buf: &[u8]) -> Result<Vec<Value>> {
    let (hlen, n0) = get_varint(buf)?;
    let header_end = n0 + hlen as usize;
    if header_end > buf.len() {
        return Err(DbError::Corrupt("record header overruns buffer"));
    }
    let mut types = Vec::new();
    let mut off = n0;
    while off < header_end {
        let (t, n) = get_varint(&buf[off..])?;
        types.push(t);
        off += n;
    }
    let mut values = Vec::with_capacity(types.len());
    let mut body = header_end;
    for t in types {
        let v = match t {
            0 => Value::Null,
            6 => {
                let src = buf
                    .get(body..body + 8)
                    .ok_or(DbError::Corrupt("record body truncated"))?;
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(src);
                body += 8;
                Value::Int(i64::from_be_bytes(bytes))
            }
            7 => {
                let src = buf
                    .get(body..body + 8)
                    .ok_or(DbError::Corrupt("record body truncated"))?;
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(src);
                body += 8;
                Value::Real(f64::from_be_bytes(bytes))
            }
            t if t >= 12 && t % 2 == 0 => {
                let len = ((t - 12) / 2) as usize;
                let bytes = buf
                    .get(body..body + len)
                    .ok_or(DbError::Corrupt("record body truncated"))?;
                body += len;
                Value::Blob(bytes.to_vec())
            }
            t if t >= 13 => {
                let len = ((t - 13) / 2) as usize;
                let bytes = buf
                    .get(body..body + len)
                    .ok_or(DbError::Corrupt("record body truncated"))?;
                body += len;
                Value::Text(String::from_utf8_lossy(bytes).into_owned())
            }
            _ => return Err(DbError::Corrupt("unknown serial type")),
        };
        values.push(v);
    }
    Ok(values)
}

// --- order-preserving index key encoding ------------------------------------

const TAG_NULL: u8 = 0x05;
const TAG_NUM: u8 = 0x10;
const TAG_TEXT: u8 = 0x20;
const TAG_BLOB: u8 = 0x25;

fn push_f64_ordered(out: &mut Vec<u8>, f: f64) {
    // IEEE-754 trick: flip all bits for negatives, the sign bit for
    // positives, so the byte order matches numeric order.
    let bits = f.to_bits();
    let ordered = if bits & 0x8000_0000_0000_0000 != 0 {
        !bits
    } else {
        bits ^ 0x8000_0000_0000_0000
    };
    out.extend_from_slice(&ordered.to_be_bytes());
}

fn push_escaped(out: &mut Vec<u8>, bytes: &[u8]) {
    // 0x00 bytes are escaped as 0x00 0xFF so the 0x00 0x00 terminator
    // sorts before any continuation.
    for &b in bytes {
        out.push(b);
        if b == 0 {
            out.push(0xFF);
        }
    }
    out.push(0);
    out.push(0);
}

/// Appends one value in memcmp-order-preserving form.
pub fn push_key_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_NUM);
            push_f64_ordered(out, *i as f64);
            // Preserve exact integers beyond f64 precision with a suffix.
            out.extend_from_slice(&(*i as u64 ^ 0x8000_0000_0000_0000).to_be_bytes());
        }
        Value::Real(r) => {
            out.push(TAG_NUM);
            push_f64_ordered(out, *r);
            // Reals sort with integers via the shared f64 prefix; suffix
            // keeps int/real with equal value adjacent but distinct.
            out.extend_from_slice(&(*r as i64 as u64 ^ 0x8000_0000_0000_0000).to_be_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            push_escaped(out, s.as_bytes());
        }
        Value::Blob(b) => {
            out.push(TAG_BLOB);
            push_escaped(out, b);
        }
    }
}

/// Encodes a composite index key: the indexed values followed by the rowid
/// (which makes every key unique).
pub fn encode_index_key(values: &[Value], rowid: i64) -> Vec<u8> {
    let mut out = Vec::new();
    for v in values {
        push_key_value(&mut out, v);
    }
    out.push(0x7F); // separator below no tag
    out.extend_from_slice(&(rowid as u64 ^ 0x8000_0000_0000_0000).to_be_bytes());
    out
}

/// Prefix of an index key covering only the indexed values (for range
/// scans over all rowids with those values).
pub fn encode_index_prefix(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::new();
    for v in values {
        push_key_value(&mut out, v);
    }
    out
}

/// Recovers the rowid from a composite index key.
pub fn index_key_rowid(key: &[u8]) -> Result<i64> {
    if key.len() < 8 {
        return Err(DbError::Corrupt("index key too short"));
    }
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&key[key.len() - 8..]);
    Ok((u64::from_be_bytes(bytes) ^ 0x8000_0000_0000_0000) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX / 3,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let (got, n) = get_varint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn record_roundtrip() {
        let row = vec![
            Value::Null,
            Value::Int(-42),
            Value::Real(3.25),
            Value::Text("héllo".into()),
            Value::Blob(vec![1, 2, 3, 0, 255]),
        ];
        let rec = encode_record(&row);
        assert_eq!(decode_record(&rec).unwrap(), row);
    }

    #[test]
    fn empty_record() {
        let rec = encode_record(&[]);
        assert_eq!(decode_record(&rec).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn corrupt_record_rejected() {
        assert!(decode_record(&[0x85]).is_err());
        let row = vec![Value::Int(7)];
        let mut rec = encode_record(&row);
        rec.truncate(rec.len() - 2);
        assert!(decode_record(&rec).is_err());
    }

    #[test]
    fn key_encoding_preserves_int_order() {
        let ints = [-1000i64, -2, -1, 0, 1, 2, 999, i64::MAX / 2];
        let keys: Vec<Vec<u8>> = ints
            .iter()
            .map(|&i| encode_index_key(&[Value::Int(i)], 0))
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn key_encoding_preserves_real_order_and_mixes_with_ints() {
        let a = encode_index_prefix(&[Value::Real(-2.5)]);
        let b = encode_index_prefix(&[Value::Int(-2)]);
        let c = encode_index_prefix(&[Value::Real(0.5)]);
        let d = encode_index_prefix(&[Value::Int(1)]);
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn key_encoding_preserves_text_order() {
        let mk = |s: &str| encode_index_prefix(&[Value::Text(s.into())]);
        assert!(mk("") < mk("a"));
        assert!(mk("a") < mk("aa"));
        assert!(mk("aa") < mk("ab"));
        // Embedded NULs must not confuse prefix ordering.
        assert!(mk("a\0") < mk("a\0b"));
        assert!(mk("a\0b") < mk("ab"));
    }

    #[test]
    fn key_types_sort_null_num_text_blob() {
        let n = encode_index_prefix(&[Value::Null]);
        let i = encode_index_prefix(&[Value::Int(0)]);
        let t = encode_index_prefix(&[Value::Text("".into())]);
        let b = encode_index_prefix(&[Value::Blob(vec![])]);
        assert!(n < i && i < t && t < b);
    }

    #[test]
    fn rowid_recoverable() {
        for rid in [-5i64, 0, 1, 1 << 40] {
            let key = encode_index_key(&[Value::Text("k".into())], rid);
            assert_eq!(index_key_rowid(&key).unwrap(), rid);
        }
    }

    #[test]
    fn prefix_matches_its_full_keys() {
        let prefix = encode_index_prefix(&[Value::Int(42)]);
        let key = encode_index_key(&[Value::Int(42)], 7);
        assert!(key.starts_with(&prefix));
        let other = encode_index_key(&[Value::Int(43)], 7);
        assert!(!other.starts_with(&prefix));
    }
}
