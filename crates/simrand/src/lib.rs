//! # xftl-simrand — deterministic PRNG, dependency-free
//!
//! The workspace builds in hermetic environments with no access to
//! crates.io, so the `rand` crate is replaced by this shim: it exposes the
//! exact API subset the workloads use (`rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::gen_range`/`gen_bool`) over an xoshiro256**
//! generator. The workspace manifest aliases this package as `rand`, so
//! call sites are source-compatible with the real crate.
//!
//! Determinism is the point, not statistical quality: every workload seed
//! maps to one fixed operation sequence, which the determinism tests rely
//! on. Range sampling uses simple rejection-free reduction; the slight
//! modulo bias is irrelevant at the range sizes the workloads draw from.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a [`Range`]/[`RangeInclusive`] can sample, used by
/// [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Draws one value uniformly from `[low, high]` (inclusive bounds).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw generator interface: a stream of 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high-quality mantissa bits, as the real crate uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let span = (high as i128) - (low as i128) + 1;
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                low + unit * (high - low)
            }
        }
        impl OneStep for $t {
            // Floats sample from the half-open range already; the unit draw
            // in [0, 1) never lands exactly on the upper bound for any
            // non-degenerate range, so "stepping down" is the identity.
            fn step_down(self) -> Self { self }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform + PartialOrd + OneStep> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.step_down())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Decrement by one, to convert a half-open bound into an inclusive one.
pub trait OneStep {
    /// `self - 1` in the type's own arithmetic.
    fn step_down(self) -> Self;
}

macro_rules! impl_one_step {
    ($($t:ty),*) => {$(
        impl OneStep for $t {
            fn step_down(self) -> Self { self - 1 }
        }
    )*};
}

impl_one_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// An xoshiro256** generator standing in for `rand::rngs::StdRng`.
    ///
    /// Not the same stream as the real `StdRng` (which is ChaCha-based),
    /// but every consumer in this workspace only requires that a fixed
    /// seed yields a fixed stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seeding, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10i64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
            let z = r.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
