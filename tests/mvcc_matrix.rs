//! Deterministic MVCC concurrency matrix: writer interleavings crossed
//! with conflict kinds, at every layer of the stack.
//!
//! The device cells drive N snapshot transactions (`begin` →
//! interleaved `write_tx` → ordered commits) against an exact
//! first-committer-wins prediction: a writer loses if and only if some
//! page it wrote was committed by an earlier writer after its snapshot
//! began. The file-system cells run the same shapes through
//! [`Rig::run_concurrent_writers`]; the SQL cells through two
//! `Connection`s and `BEGIN CONCURRENT`.
//!
//! All randomness in the soak flows from a single seed, overridable with
//! `XFTL_MVCC_SEED=<n>` (mirroring the fault matrix's `XFTL_FAULT_SEED`),
//! so CI replays identical schedules. Under `--features verify` the
//! device cells run behind the shadow oracle, which independently
//! checks snapshot visibility, lost updates, and spurious conflicts.

// Test/demo code: unwrap/expect on a setup failure is the right failure
// mode here; clippy.toml's `allow-unwrap-in-tests` only covers `#[test]`
// fns, not the shared helpers, so the allow is restated file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xftl_core::XFtl;
use xftl_db::DbError;
use xftl_flash::{FlashChip, FlashConfig, SimClock};
use xftl_ftl::{BlockDevice, DevError, Lpn, Tid, TxBlockDevice};
#[cfg(feature = "verify")]
use xftl_verify::ShadowDevice;
use xftl_workloads::{concurrent_fill, ConcurrentPlan, Mode, Rig, RigConfig};

const BLOCKS: usize = 24;
const LOGICAL: u64 = 48;

/// Seed for the randomized soak; override with `XFTL_MVCC_SEED=<n>` to
/// replay a different deterministic schedule.
fn mvcc_seed() -> u64 {
    std::env::var("XFTL_MVCC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x4D5F_CC13)
}

// --- verify wiring ------------------------------------------------------

#[cfg(feature = "verify")]
type Dev = ShadowDevice<XFtl>;
#[cfg(not(feature = "verify"))]
type Dev = XFtl;

fn wrap(d: XFtl) -> Dev {
    #[cfg(feature = "verify")]
    {
        ShadowDevice::new(d)
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

fn ftl(d: &Dev) -> &XFtl {
    #[cfg(feature = "verify")]
    {
        d.inner()
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

fn dev() -> Dev {
    let clock = SimClock::new();
    let chip = FlashChip::new(FlashConfig::tiny(BLOCKS), clock);
    wrap(XFtl::format(chip, LOGICAL).unwrap())
}

fn power_cycle_and_recover(d: Dev) -> Dev {
    #[cfg(feature = "verify")]
    {
        let (inner, model) = d.into_parts();
        let mut chip = inner.into_chip();
        chip.power_cycle();
        let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
        dev.verify_recovered();
        dev.audit();
        dev
    }
    #[cfg(not(feature = "verify"))]
    {
        let mut chip = d.into_chip();
        chip.power_cycle();
        XFtl::recover(chip).unwrap()
    }
}

// --- the device-level schedule runner -----------------------------------

/// How the writers' page writes interleave on the device queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Interleave {
    /// Writer 0 step 0, writer 1 step 0, …, writer 0 step 1, … — the
    /// maximally mixed order.
    RoundRobin,
    /// Each writer issues its whole script before the next starts; only
    /// the commits overlap the snapshots.
    Batched,
}

/// One writer's script: its transaction id and the (page, fill) writes.
type Script = (Tid, Vec<(Lpn, u8)>);

/// Runs one round: begins every writer's snapshot, interleaves the
/// writes, then commits in `commit_order`. Each commit outcome is checked
/// against the exact first-committer-wins prediction, and `expect` is
/// advanced to the winners' values. Returns which writers committed.
fn run_schedule(
    dev: &mut Dev,
    interleave: Interleave,
    writers: &[Script],
    commit_order: &[usize],
    expect: &mut [u8],
) -> Vec<bool> {
    for (tid, _) in writers {
        dev.begin(*tid).unwrap();
    }
    match interleave {
        Interleave::RoundRobin => {
            let depth = writers.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
            for step in 0..depth {
                for (tid, script) in writers {
                    if let Some(&(lpn, fill)) = script.get(step) {
                        let ps = dev.page_size();
                        dev.write_tx(*tid, lpn, &vec![fill; ps]).unwrap();
                    }
                }
            }
        }
        Interleave::Batched => {
            for (tid, script) in writers {
                for &(lpn, fill) in script {
                    let ps = dev.page_size();
                    dev.write_tx(*tid, lpn, &vec![fill; ps]).unwrap();
                }
            }
        }
    }
    // First-committer-wins, predicted exactly: every snapshot began
    // before any of this round's commits, so writer w loses iff an
    // earlier committer already took one of w's pages this round.
    let mut taken: HashSet<Lpn> = HashSet::new();
    let mut committed = vec![false; writers.len()];
    for &w in commit_order {
        let (tid, script) = &writers[w];
        let conflicts = script.iter().any(|(lpn, _)| taken.contains(lpn));
        if conflicts {
            assert_eq!(
                dev.commit(*tid),
                Err(DevError::Conflict),
                "writer {w} (tid {tid}) overlapped an earlier committer but was admitted"
            );
        } else {
            dev.commit(*tid)
                .unwrap_or_else(|e| panic!("writer {w} (tid {tid}) spuriously refused: {e:?}"));
            committed[w] = true;
            for &(lpn, fill) in script {
                taken.insert(lpn);
                expect[lpn as usize] = fill;
            }
        }
    }
    committed
}

fn assert_image(dev: &mut Dev, expect: &[u8], ctx: &str) {
    let ps = dev.page_size();
    let mut buf = vec![0u8; ps];
    for (lpn, &fill) in expect.iter().enumerate() {
        dev.read(lpn as Lpn, &mut buf).unwrap();
        assert_eq!(buf[0], fill, "{ctx}: lpn {lpn} holds the wrong version");
        assert!(
            buf.iter().all(|&b| b == buf[0]),
            "{ctx}: lpn {lpn} holds a torn page"
        );
    }
}

// --- device cells: interleaving × conflict kind -------------------------

#[test]
fn device_disjoint_writers_all_commit() {
    for interleave in [Interleave::RoundRobin, Interleave::Batched] {
        for commit_order in [[0usize, 1, 2], [2, 1, 0]] {
            let mut d = dev();
            let mut expect = vec![0u8; 16];
            let writers: Vec<Script> = vec![
                (1, vec![(0, 11), (1, 12)]),
                (2, vec![(2, 21), (3, 22)]),
                (3, vec![(4, 31), (5, 32)]),
            ];
            let committed = run_schedule(&mut d, interleave, &writers, &commit_order, &mut expect);
            assert_eq!(committed, vec![true; 3], "disjoint writers must all win");
            assert_eq!(ftl(&d).stats().conflict_aborts, 0);
            assert_eq!(ftl(&d).active_snapshots(), 0, "snapshots must release");
            assert_image(&mut d, &expect, &format!("{interleave:?}/{commit_order:?}"));
        }
    }
}

#[test]
fn device_overlapping_writers_lose_exactly_one() {
    for interleave in [Interleave::RoundRobin, Interleave::Batched] {
        for commit_order in [[0usize, 1, 2], [1, 0, 2], [2, 1, 0]] {
            let mut d = dev();
            let mut expect = vec![0u8; 16];
            // Writers 0 and 1 share page 5; writer 2 is disjoint.
            let writers: Vec<Script> = vec![
                (1, vec![(0, 11), (5, 12)]),
                (2, vec![(5, 21), (3, 22)]),
                (3, vec![(7, 31)]),
            ];
            let committed = run_schedule(&mut d, interleave, &writers, &commit_order, &mut expect);
            let winners = committed.iter().filter(|&&c| c).count();
            assert_eq!(winners, 2, "exactly one of the overlapping pair loses");
            assert!(committed[2], "the disjoint writer never conflicts");
            assert_eq!(ftl(&d).stats().conflict_aborts, 1);
            assert_eq!(ftl(&d).active_snapshots(), 0);
            assert_eq!(
                ftl(&d).xl2p().intent_pages(),
                0,
                "the loser's write intents must release"
            );
            assert_image(&mut d, &expect, &format!("{interleave:?}/{commit_order:?}"));
        }
    }
}

#[test]
fn device_read_only_snapshot_ignores_concurrent_commits() {
    let mut d = dev();
    let ps = d.page_size();
    d.write(2, &vec![0xAA; ps]).unwrap();
    d.begin(1).unwrap();

    // A folded commit after the snapshot: invisible to the reader.
    d.write_tx(5, 2, &vec![0xBB; ps]).unwrap();
    d.commit(5).unwrap();
    let mut buf = vec![0u8; ps];
    d.read(2, &mut buf).unwrap();
    assert_eq!(buf[0], 0xBB, "live image moved");
    d.read_tx(1, 2, &mut buf).unwrap();
    assert_eq!(buf[0], 0xAA, "snapshot leaked a folded commit");

    // A staged (submitted, unflushed) commit: equally invisible.
    d.write_tx(6, 3, &vec![0xCC; ps]).unwrap();
    let ticket = d.commit_submit(6).unwrap();
    d.read_tx(1, 3, &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == 0),
        "snapshot leaked a staged commit"
    );
    d.commit_wait(ticket).unwrap();
    d.read_tx(1, 3, &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == 0),
        "snapshot leaked after the group flush"
    );

    // The read-only commit succeeds and releases the snapshot.
    d.commit(1).unwrap();
    assert_eq!(ftl(&d).active_snapshots(), 0);
    assert_eq!(ftl(&d).stats().conflict_aborts, 0);
}

#[test]
fn device_abort_releases_intents_for_the_survivor() {
    let mut d = dev();
    let ps = d.page_size();
    d.begin(1).unwrap();
    d.begin(2).unwrap();
    d.write_tx(1, 4, &vec![0x11; ps]).unwrap();
    d.write_tx(2, 4, &vec![0x22; ps]).unwrap();
    // The aborter never committed, so its writes must not count against
    // the survivor's first-committer-wins check.
    d.abort(1).unwrap();
    d.commit(2).unwrap();
    assert_eq!(ftl(&d).stats().conflict_aborts, 0);
    assert_eq!(ftl(&d).active_snapshots(), 0);
    assert_eq!(ftl(&d).xl2p().intent_pages(), 0);
    let mut buf = vec![0u8; ps];
    d.read(4, &mut buf).unwrap();
    assert_eq!(buf[0], 0x22);
}

#[test]
fn device_plain_overwrite_conflicts_snapshot_writer() {
    let mut d = dev();
    let ps = d.page_size();
    d.begin(1).unwrap();
    d.write_tx(1, 3, &vec![0x11; ps]).unwrap();
    // Non-transactional traffic bumps the page's version while the
    // snapshot is open: the snapshot writer is now stale and must lose.
    d.write(3, &vec![0x99; ps]).unwrap();
    assert_eq!(d.commit(1), Err(DevError::Conflict));
    let mut buf = vec![0u8; ps];
    d.read(3, &mut buf).unwrap();
    assert_eq!(buf[0], 0x99, "the plain write is the surviving version");
    // A retry on a fresh snapshot wins.
    d.begin(1).unwrap();
    d.write_tx(1, 3, &vec![0x11; ps]).unwrap();
    d.commit(1).unwrap();
    d.read(3, &mut buf).unwrap();
    assert_eq!(buf[0], 0x11);
}

// --- the seeded soak ----------------------------------------------------

/// Random concurrent schedules for many rounds, each checked against the
/// exact prediction, then a power cut: committed versions survive, open
/// snapshots die, and no retained pre-image outlives recovery.
#[test]
fn mvcc_soak_random_schedules() {
    let mut rng = StdRng::seed_from_u64(mvcc_seed());
    let mut d = dev();
    let ps = d.page_size();
    let mut expect = vec![0u8; 12];
    let mut conflicts_seen = 0u64;
    for round in 0..30u64 {
        let n_writers = rng.gen_range(2..=4);
        let writers: Vec<Script> = (0..n_writers)
            .map(|w| {
                let tid = round * 8 + w + 1;
                let n_pages = rng.gen_range(1..=3);
                let script = (0..n_pages)
                    .map(|_| (rng.gen_range(0..12u64), rng.gen_range(1..=250u8)))
                    .collect();
                (tid, script)
            })
            .collect();
        let mut commit_order: Vec<usize> = (0..n_writers as usize).collect();
        // A deterministic shuffle from the same seed stream.
        for i in (1..commit_order.len()).rev() {
            commit_order.swap(i, rng.gen_range(0..=i));
        }
        let interleave = if rng.gen_bool(0.5) {
            Interleave::RoundRobin
        } else {
            Interleave::Batched
        };
        let committed = run_schedule(&mut d, interleave, &writers, &commit_order, &mut expect);
        conflicts_seen += committed.iter().filter(|&&c| !c).count() as u64;
        // Occasional plain traffic between rounds (no snapshots open).
        if rng.gen_bool(0.3) {
            let lpn = rng.gen_range(0..12u64);
            let fill = rng.gen_range(1..=250u8);
            d.write(lpn, &vec![fill; ps]).unwrap();
            expect[lpn as usize] = fill;
        }
    }
    assert!(
        conflicts_seen > 0,
        "the soak never produced a conflict — overlap probability too low to test anything"
    );
    assert_eq!(
        ftl(&d).stats().conflict_aborts,
        conflicts_seen,
        "device conflict tally disagrees with the prediction"
    );
    assert_image(&mut d, &expect, "pre-crash soak image");

    // Power cut: everything committed survives; MVCC state is RAM-only.
    d.flush().unwrap();
    let mut d = power_cycle_and_recover(d);
    assert_eq!(ftl(&d).active_snapshots(), 0);
    assert_eq!(ftl(&d).xl2p().intent_pages(), 0);
    assert_image(&mut d, &expect, "post-crash soak image");
}

// --- file-system cells (Rig harness) ------------------------------------

fn fs_rig() -> Rig {
    Rig::build(RigConfig::small(Mode::XFtl))
}

#[test]
fn fs_disjoint_writers_all_commit() {
    let rig = fs_rig();
    let ino = rig.prepare_concurrent_file("conc.dat", 16);
    let plan = ConcurrentPlan {
        writers: vec![vec![0, 1], vec![2, 3], vec![4, 5]],
        tag: 7,
    };
    let out = rig.run_concurrent_writers(ino, &plan);
    assert_eq!(
        out.committed,
        vec![0, 1, 2],
        "disjoint writers must all win"
    );
    assert!(out.conflicted.is_empty());
    let mut fs = rig.fs.borrow_mut();
    let ps = fs.page_size();
    let mut buf = vec![0u8; ps];
    for (w, pages) in plan.writers.iter().enumerate() {
        for &page in pages {
            fs.read(ino, page * ps as u64, &mut buf, None).unwrap();
            assert_eq!(
                buf,
                concurrent_fill(ps, plan.tag, w, page),
                "writer {w} page {page} lost its committed image"
            );
        }
    }
    assert!(fs.check_consistency().unwrap().is_clean());
}

#[test]
fn fs_overlapping_writers_lose_exactly_one() {
    let rig = fs_rig();
    let ino = rig.prepare_concurrent_file("conc.dat", 16);
    let plan = ConcurrentPlan {
        writers: vec![vec![0, 1], vec![1, 2]],
        tag: 9,
    };
    let out = rig.run_concurrent_writers(ino, &plan);
    assert_eq!(out.committed, vec![0], "the first committer wins page 1");
    assert_eq!(out.conflicted, vec![1], "the overlapping writer loses");
    let mut fs = rig.fs.borrow_mut();
    let ps = fs.page_size();
    let mut buf = vec![0u8; ps];
    fs.read(ino, ps as u64, &mut buf, None).unwrap();
    assert_eq!(buf, concurrent_fill(ps, plan.tag, 0, 1));
    // The loser's page 2 keeps its pre-round zeros.
    fs.read(ino, 2 * ps as u64, &mut buf, None).unwrap();
    assert!(buf.iter().all(|&b| b == 0), "the loser's write leaked");
    drop(fs);
    // The loser retries alone on a fresh snapshot and wins.
    let retry = rig.run_concurrent_writers(
        ino,
        &ConcurrentPlan {
            writers: vec![vec![1, 2]],
            tag: 10,
        },
    );
    assert_eq!(retry.committed, vec![0]);
    let mut fs = rig.fs.borrow_mut();
    fs.read(ino, 2 * ps as u64, &mut buf, None).unwrap();
    assert_eq!(buf, concurrent_fill(ps, 10, 0, 2));
    assert!(fs.check_consistency().unwrap().is_clean());
}

// --- SQL cells: BEGIN CONCURRENT over shared storage --------------------

#[test]
fn sql_disjoint_concurrent_transactions_both_commit() {
    let rig = fs_rig();
    let mut a = rig.open_db("app.db");
    let mut b = rig.open_db("app.db");
    a.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    a.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, w INT)")
        .unwrap();
    a.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    a.execute("INSERT INTO u VALUES (1, 100), (2, 200)")
        .unwrap();

    // Updates to different tables dirty different pages: both snapshots
    // commit.
    a.execute("BEGIN CONCURRENT").unwrap();
    b.execute("BEGIN CONCURRENT").unwrap();
    a.execute("UPDATE t SET v = 11 WHERE id = 1").unwrap();
    b.execute("UPDATE u SET w = 101 WHERE id = 1").unwrap();
    a.execute("COMMIT").unwrap();
    b.execute("COMMIT").unwrap();

    assert_eq!(
        a.query("SELECT v FROM t WHERE id = 1").unwrap(),
        vec![vec![xftl_db::Value::Int(11)]]
    );
    assert_eq!(
        a.query("SELECT w FROM u WHERE id = 1").unwrap(),
        vec![vec![xftl_db::Value::Int(101)]]
    );
}

#[test]
fn sql_overlapping_concurrent_transactions_one_conflicts() {
    let rig = fs_rig();
    let mut a = rig.open_db("app.db");
    let mut b = rig.open_db("app.db");
    a.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    a.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();

    // Both rows live in the same leaf page: the second committer loses.
    a.execute("BEGIN CONCURRENT").unwrap();
    b.execute("BEGIN CONCURRENT").unwrap();
    a.execute("UPDATE t SET v = 11 WHERE id = 1").unwrap();
    b.execute("UPDATE t SET v = 21 WHERE id = 2").unwrap();
    a.execute("COMMIT").unwrap();
    assert_eq!(b.execute("COMMIT"), Err(DbError::Conflict));

    // The loser was rolled back in full; a retry on a fresh snapshot
    // lands both updates.
    assert_eq!(
        b.query("SELECT v FROM t ORDER BY id").unwrap(),
        vec![vec![xftl_db::Value::Int(11)], vec![xftl_db::Value::Int(20)]]
    );
    b.execute("BEGIN CONCURRENT").unwrap();
    b.execute("UPDATE t SET v = 21 WHERE id = 2").unwrap();
    b.execute("COMMIT").unwrap();
    assert_eq!(
        a.query("SELECT v FROM t ORDER BY id").unwrap(),
        vec![vec![xftl_db::Value::Int(11)], vec![xftl_db::Value::Int(21)]]
    );
}

#[test]
fn sql_snapshot_select_ignores_concurrent_commit() {
    let rig = fs_rig();
    let mut a = rig.open_db("app.db");
    let mut b = rig.open_db("app.db");
    a.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    a.execute("INSERT INTO t VALUES (1, 10)").unwrap();

    b.execute("BEGIN CONCURRENT").unwrap();
    assert_eq!(
        b.query("SELECT v FROM t WHERE id = 1").unwrap(),
        vec![vec![xftl_db::Value::Int(10)]]
    );
    // An autocommit writer moves the live image mid-snapshot.
    a.execute("UPDATE t SET v = 99 WHERE id = 1").unwrap();
    assert_eq!(
        b.query("SELECT v FROM t WHERE id = 1").unwrap(),
        vec![vec![xftl_db::Value::Int(10)]],
        "snapshot SELECT leaked a concurrent commit"
    );
    // Read-only: commits clean (releases the snapshot), then sees the
    // new state outside the transaction.
    b.execute("COMMIT").unwrap();
    assert_eq!(
        b.query("SELECT v FROM t WHERE id = 1").unwrap(),
        vec![vec![xftl_db::Value::Int(99)]]
    );
}
