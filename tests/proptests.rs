//! Property-based tests: core data structures checked against reference
//! models under arbitrary operation sequences.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use proptest::prelude::*;

use xftl_core::XFtl;
use xftl_db::pager::{DbJournalMode, Pager, SharedFs};
use xftl_db::record::{
    decode_record, encode_index_key, encode_index_prefix, encode_record, index_key_rowid,
};
use xftl_db::{btree, Value};
use xftl_flash::{FlashChip, FlashConfig, SimClock};
use xftl_fs::{FileSystem, FsConfig, JournalMode};
use xftl_ftl::{BlockDevice, PageMappedFtl};

// --- generators ---------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1.0e12f64..1.0e12).prop_map(Value::Real),
        "[a-zA-Z0-9 _%\\x00-\\x7f]{0,40}".prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..60).prop_map(Value::Blob),
    ]
}

// --- record format -------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any row survives the record encoding round trip.
    #[test]
    fn record_roundtrip(row in proptest::collection::vec(arb_value(), 0..8)) {
        let enc = encode_record(&row);
        let dec = decode_record(&enc).expect("well-formed record decodes");
        prop_assert_eq!(dec.len(), row.len());
        for (a, b) in dec.iter().zip(&row) {
            match (a, b) {
                (Value::Real(x), Value::Real(y)) => prop_assert!(x == y || (x.is_nan() && y.is_nan())),
                _ => prop_assert_eq!(a, b),
            }
        }
    }

    /// Truncated records never decode successfully into the full row
    /// (decoding either errors or yields fewer/equal values — it must not
    /// fabricate data or panic).
    #[test]
    fn record_truncation_is_safe(
        row in proptest::collection::vec(arb_value(), 1..6),
        cut in 1usize..32,
    ) {
        let enc = encode_record(&row);
        let cut = cut.min(enc.len());
        let _ = decode_record(&enc[..enc.len() - cut]); // must not panic
    }

    /// The index key encoding preserves SQL comparison order.
    #[test]
    fn index_key_order_preserving(a in arb_value(), b in arb_value()) {
        // NaN has no total order in SQL; skip it.
        let is_nan = |v: &Value| matches!(v, Value::Real(r) if r.is_nan());
        prop_assume!(!is_nan(&a) && !is_nan(&b));
        let ka = encode_index_prefix(std::slice::from_ref(&a));
        let kb = encode_index_prefix(std::slice::from_ref(&b));
        let cmp_vals = a.sort_cmp(&b);
        if cmp_vals == std::cmp::Ordering::Less {
            prop_assert!(ka < kb, "{a:?} < {b:?} but keys disagree");
        } else if cmp_vals == std::cmp::Ordering::Greater {
            prop_assert!(ka > kb, "{a:?} > {b:?} but keys disagree");
        }
    }

    /// Rowids embedded in composite keys always come back intact.
    #[test]
    fn index_key_rowid_roundtrip(v in arb_value(), rowid in any::<i64>()) {
        let key = encode_index_key(&[v], rowid);
        prop_assert_eq!(index_key_rowid(&key).expect("rowid"), rowid);
    }
}

// --- B-tree vs BTreeMap model ---------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(i64, Vec<u8>),
    Delete(i64),
    Get(i64),
}

fn arb_tree_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0i64..500, proptest::collection::vec(any::<u8>(), 0..120))
                .prop_map(|(k, v)| TreeOp::Insert(k, v)),
            (0i64..500).prop_map(TreeOp::Delete),
            (0i64..500).prop_map(TreeOp::Get),
        ],
        1..120,
    )
}

fn test_pager() -> Pager<PageMappedFtl> {
    let chip = FlashChip::new(FlashConfig::tiny(220), SimClock::new());
    let dev = PageMappedFtl::format(chip, 1_600).unwrap();
    let fs = FileSystem::mkfs(
        dev,
        JournalMode::Ordered,
        FsConfig {
            inode_count: 16,
            journal_pages: 32,
            cache_pages: 256,
        },
    )
    .unwrap();
    let fs: SharedFs<PageMappedFtl> = Rc::new(RefCell::new(fs));
    Pager::open(fs, "prop.db", DbJournalMode::Rollback).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The table B-tree behaves exactly like a BTreeMap under arbitrary
    /// insert/delete/get sequences, including ordered iteration.
    #[test]
    fn btree_matches_model(ops in arb_tree_ops()) {
        let mut pager = test_pager();
        pager.begin().unwrap();
        let root = btree::create_table_tree(&mut pager).unwrap();
        let mut model: BTreeMap<i64, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                TreeOp::Insert(k, v) => {
                    btree::table_insert(&mut pager, root, *k, v).unwrap();
                    model.insert(*k, v.clone());
                }
                TreeOp::Delete(k) => {
                    let removed = btree::table_delete(&mut pager, root, *k).unwrap();
                    prop_assert_eq!(removed, model.remove(k).is_some());
                }
                TreeOp::Get(k) => {
                    let got = btree::table_get(&mut pager, root, *k).unwrap();
                    prop_assert_eq!(got.as_deref(), model.get(k).map(|v| v.as_slice()));
                }
            }
        }
        // Final state: ordered scan equals the model.
        let mut scanned = Vec::new();
        btree::table_scan_from(&mut pager, root, i64::MIN, &mut |_, rowid, val| {
            scanned.push((rowid, val));
            Ok(true)
        })
        .unwrap();
        let expect: Vec<(i64, Vec<u8>)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
        pager.commit().unwrap();
    }
}

// --- file system vs byte-vector model ---------------------------------------------

#[derive(Debug, Clone)]
enum FsOp {
    Write { off: u64, len: usize, byte: u8 },
    Read { off: u64, len: usize },
    Truncate { size: u64 },
    Fsync,
}

fn arb_fs_ops() -> impl Strategy<Value = Vec<FsOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..40_000, 1usize..3_000, any::<u8>()).prop_map(|(off, len, byte)| FsOp::Write {
                off,
                len,
                byte
            }),
            (0u64..45_000, 1usize..3_000).prop_map(|(off, len)| FsOp::Read { off, len }),
            (0u64..40_000).prop_map(|size| FsOp::Truncate { size }),
            Just(FsOp::Fsync),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Byte-granular file I/O matches a plain Vec<u8> model, across cache
    /// pressure and fsyncs.
    #[test]
    fn fs_matches_model(ops in arb_fs_ops()) {
        let chip = FlashChip::new(FlashConfig::tiny(300), SimClock::new());
        let dev = PageMappedFtl::format(chip, 2_200).unwrap();
        let mut fs = FileSystem::mkfs(
            dev,
            JournalMode::Ordered,
            FsConfig { inode_count: 8, journal_pages: 32, cache_pages: 16 },
        )
        .unwrap();
        let f = fs.create("model").unwrap();
        let mut model: Vec<u8> = Vec::new();
        for op in &ops {
            match op {
                FsOp::Write { off, len, byte } => {
                    let data = vec![*byte; *len];
                    fs.write(f, *off, &data, None).unwrap();
                    let end = *off as usize + *len;
                    if model.len() < end {
                        model.resize(end, 0);
                    }
                    model[*off as usize..end].fill(*byte);
                }
                FsOp::Read { off, len } => {
                    let mut buf = vec![0u8; *len];
                    let n = fs.read(f, *off, &mut buf, None).unwrap();
                    let expect_n = model.len().saturating_sub(*off as usize).min(*len);
                    prop_assert_eq!(n, expect_n);
                    if n > 0 {
                        prop_assert_eq!(&buf[..n], &model[*off as usize..*off as usize + n]);
                    }
                }
                FsOp::Truncate { size } => {
                    fs.truncate(f, *size).unwrap();
                    model.truncate(*size as usize);
                }
                FsOp::Fsync => fs.fsync(f, None).unwrap(),
            }
            prop_assert_eq!(fs.size(f).unwrap(), model.len() as u64);
        }
        // Durability: sync, remount, and compare the whole file.
        let dev = fs.unmount().unwrap();
        let mut fs = FileSystem::mount(dev, JournalMode::Ordered, 16).unwrap();
        let f = fs.open("model").unwrap();
        let mut buf = vec![0u8; model.len()];
        let n = fs.read(f, 0, &mut buf, None).unwrap();
        prop_assert_eq!(n, model.len());
        prop_assert_eq!(buf, model);
    }
}

// --- X-FTL transactional semantics vs model ------------------------------------------

#[derive(Debug, Clone)]
enum TxOp {
    Write { tid: u64, lpn: u64, byte: u8 },
    PlainWrite { lpn: u64, byte: u8 },
    Commit { tid: u64 },
    Abort { tid: u64 },
    Flush,
    Crash,
}

fn arb_tx_ops() -> impl Strategy<Value = Vec<TxOp>> {
    // Host contract (§3.3/§4.3): X-FTL does not arbitrate write-write
    // conflicts — SQLite's database-level write lock guarantees a single
    // writer per page. The generator honours that contract by giving each
    // transaction id its own page-number stripe (lpn % 4 == tid - 1) and
    // keeping plain writes on pages 20..24.
    proptest::collection::vec(
        prop_oneof![
            4 => (1u64..5, 0u64..5, any::<u8>())
                .prop_map(|(tid, row, byte)| TxOp::Write { tid, lpn: row * 4 + (tid - 1), byte }),
            2 => (20u64..24, any::<u8>()).prop_map(|(lpn, byte)| TxOp::PlainWrite { lpn, byte }),
            2 => (1u64..5).prop_map(|tid| TxOp::Commit { tid }),
            1 => (1u64..5).prop_map(|tid| TxOp::Abort { tid }),
            1 => Just(TxOp::Flush),
            1 => Just(TxOp::Crash),
        ],
        1..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// X-FTL's committed state always equals a model where transactional
    /// writes become visible only at commit, vanish on abort, and crashes
    /// abort everything in flight while preserving all committed data.
    #[test]
    fn xftl_transactions_match_model(ops in arb_tx_ops()) {
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(40), clock);
        let mut dev = XFtl::format_with_capacity(chip, 24, 64).unwrap();
        let ps = dev.page_size();
        // committed[lpn] and per-tid pending writes.
        let mut committed: HashMap<u64, u8> = HashMap::new();
        let mut pending: HashMap<u64, HashMap<u64, u8>> = HashMap::new();
        for op in &ops {
            match op {
                TxOp::Write { tid, lpn, byte } => {
                    dev.write_tx(*tid, *lpn, &vec![*byte; ps]).unwrap();
                    pending.entry(*tid).or_default().insert(*lpn, *byte);
                }
                TxOp::PlainWrite { lpn, byte } => {
                    dev.write(*lpn, &vec![*byte; ps]).unwrap();
                    committed.insert(*lpn, *byte);
                }
                TxOp::Commit { tid } => {
                    dev.commit(*tid).unwrap();
                    for (lpn, byte) in pending.remove(tid).unwrap_or_default() {
                        committed.insert(lpn, byte);
                    }
                }
                TxOp::Abort { tid } => {
                    dev.abort(*tid).unwrap();
                    pending.remove(tid);
                }
                TxOp::Flush => dev.flush().unwrap(),
                TxOp::Crash => {
                    dev = XFtl::recover_with_capacity(dev.into_chip(), 64).unwrap();
                    pending.clear();
                }
            }
            // Committed view must match the model at every step.
            let mut buf = vec![0u8; ps];
            for lpn in 0..24u64 {
                dev.read(lpn, &mut buf).unwrap();
                let expect = committed.get(&lpn).copied().unwrap_or(0);
                prop_assert_eq!(buf[0], expect, "lpn {} after {:?}", lpn, op);
            }
            // Each in-flight transaction sees its own writes.
            for (tid, writes) in &pending {
                for (lpn, byte) in writes {
                    dev.read_tx(*tid, *lpn, &mut buf).unwrap();
                    prop_assert_eq!(buf[0], *byte);
                }
            }
        }
        // Final crash: only committed state survives.
        let mut dev = XFtl::recover_with_capacity(dev.into_chip(), 64).unwrap();
        let mut buf = vec![0u8; ps];
        for lpn in 0..24u64 {
            dev.read(lpn, &mut buf).unwrap();
            prop_assert_eq!(buf[0], committed.get(&lpn).copied().unwrap_or(0));
        }
    }
}

// --- TxFlash SCC semantics vs model ------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The TxFlash baseline obeys the same transactional model as X-FTL
    /// (visible at commit, gone on abort/crash), via its cyclic-commit
    /// mechanism instead of a mapping table.
    #[test]
    fn txflash_transactions_match_model(ops in arb_tx_ops()) {
        use xftl_ftl::TxFlashFtl;
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(40), clock);
        let mut dev = TxFlashFtl::format(chip, 24).unwrap();
        let ps = dev.page_size();
        let mut committed: HashMap<u64, u8> = HashMap::new();
        let mut pending: HashMap<u64, HashMap<u64, u8>> = HashMap::new();
        for op in &ops {
            match op {
                TxOp::Write { tid, lpn, byte } => {
                    dev.write_tx(*tid, *lpn, &vec![*byte; ps]).unwrap();
                    pending.entry(*tid).or_default().insert(*lpn, *byte);
                }
                TxOp::PlainWrite { lpn, byte } => {
                    dev.write(*lpn, &vec![*byte; ps]).unwrap();
                    committed.insert(*lpn, *byte);
                }
                TxOp::Commit { tid } => {
                    dev.commit(*tid).unwrap();
                    for (lpn, byte) in pending.remove(tid).unwrap_or_default() {
                        committed.insert(lpn, byte);
                    }
                }
                TxOp::Abort { tid } => {
                    dev.abort(*tid).unwrap();
                    pending.remove(tid);
                }
                TxOp::Flush => dev.flush().unwrap(),
                TxOp::Crash => {
                    dev = TxFlashFtl::recover(dev.into_chip()).unwrap();
                    pending.clear();
                }
            }
            let mut buf = vec![0u8; ps];
            for lpn in 0..24u64 {
                dev.read(lpn, &mut buf).unwrap();
                let expect = committed.get(&lpn).copied().unwrap_or(0);
                prop_assert_eq!(buf[0], expect, "lpn {} after {:?}", lpn, op);
            }
            for (tid, writes) in &pending {
                for (lpn, byte) in writes {
                    dev.read_tx(*tid, *lpn, &mut buf).unwrap();
                    prop_assert_eq!(buf[0], *byte);
                }
            }
        }
        let mut dev = TxFlashFtl::recover(dev.into_chip()).unwrap();
        let mut buf = vec![0u8; ps];
        for lpn in 0..24u64 {
            dev.read(lpn, &mut buf).unwrap();
            prop_assert_eq!(buf[0], committed.get(&lpn).copied().unwrap_or(0));
        }
    }
}

// --- SQL engine vs key-value model ---------------------------------------------

#[derive(Debug, Clone)]
enum SqlOp {
    Insert { id: i64, v: i64 },
    Update { id: i64, v: i64 },
    Delete { id: i64 },
    Rollbacked { id: i64, v: i64 },
}

fn arb_sql_ops() -> impl Strategy<Value = Vec<SqlOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0i64..40, any::<i64>()).prop_map(|(id, v)| SqlOp::Insert { id, v }),
            2 => (0i64..40, any::<i64>()).prop_map(|(id, v)| SqlOp::Update { id, v }),
            1 => (0i64..40).prop_map(|id| SqlOp::Delete { id }),
            1 => (0i64..40, any::<i64>()).prop_map(|(id, v)| SqlOp::Rollbacked { id, v }),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The SQL engine over the full stack matches a BTreeMap model under
    /// arbitrary insert/update/delete sequences, including rolled-back
    /// transactions and a crash at the end.
    #[test]
    fn sql_engine_matches_model(ops in arb_sql_ops()) {
        use xftl_core::XFtl;
        use xftl_db::{Connection, DbJournalMode, Value};
        let chip = FlashChip::new(FlashConfig::tiny(300), SimClock::new());
        let dev = XFtl::format(chip, 2_200).unwrap();
        let fs = FileSystem::mkfs(
            dev,
            JournalMode::Off,
            FsConfig { inode_count: 16, journal_pages: 32, cache_pages: 256 },
        )
        .unwrap();
        let fs = Rc::new(RefCell::new(fs));
        let mut db = Connection::open(Rc::clone(&fs), "prop.db", DbJournalMode::Off).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)").unwrap();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in &ops {
            match op {
                SqlOp::Insert { id, v } => {
                    db.execute_with(
                        "INSERT OR REPLACE INTO t VALUES (?, ?)",
                        &[Value::Int(*id), Value::Int(*v)],
                    )
                    .unwrap();
                    model.insert(*id, *v);
                }
                SqlOp::Update { id, v } => {
                    let n = db
                        .execute_with(
                            "UPDATE t SET v = ? WHERE id = ?",
                            &[Value::Int(*v), Value::Int(*id)],
                        )
                        .unwrap()
                        .affected();
                    if model.contains_key(id) {
                        prop_assert_eq!(n, 1);
                        model.insert(*id, *v);
                    } else {
                        prop_assert_eq!(n, 0);
                    }
                }
                SqlOp::Delete { id } => {
                    let n = db
                        .execute_with("DELETE FROM t WHERE id = ?", &[Value::Int(*id)])
                        .unwrap()
                        .affected();
                    prop_assert_eq!(n, u64::from(model.remove(id).is_some()));
                }
                SqlOp::Rollbacked { id, v } => {
                    db.execute("BEGIN").unwrap();
                    db.execute_with(
                        "INSERT OR REPLACE INTO t VALUES (?, ?)",
                        &[Value::Int(*id), Value::Int(*v)],
                    )
                    .unwrap();
                    db.execute("ROLLBACK").unwrap();
                    // model unchanged
                }
            }
        }
        // Full table scan matches the model.
        let rows = db.query("SELECT id, v FROM t ORDER BY id").unwrap();
        let expect: Vec<Vec<Value>> =
            model.iter().map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)]).collect();
        prop_assert_eq!(&rows, &expect);
        // Crash and reopen: autocommitted state survives.
        drop(db);
        let fs_inner = Rc::try_unwrap(fs).ok().expect("sole owner").into_inner();
        let dev = XFtl::recover(fs_inner.into_device().into_chip()).unwrap();
        let fs = Rc::new(RefCell::new(FileSystem::mount(dev, JournalMode::Off, 256).unwrap()));
        let mut db = Connection::open(fs, "prop.db", DbJournalMode::Off).unwrap();
        let rows = db.query("SELECT id, v FROM t ORDER BY id").unwrap();
        prop_assert_eq!(&rows, &expect);
    }
}
