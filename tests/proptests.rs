//! Randomized model tests: core data structures checked against reference
//! models under pseudo-random operation sequences.
//!
//! Formerly written with `proptest`; the workspace now builds hermetically
//! with no external crates, so each family runs a fixed number of cases
//! from the deterministic in-tree PRNG instead. Every failure message
//! carries the case seed, so a red run reproduces exactly.

// Test/demo code: unwrap/expect on a setup failure is the right failure
// mode here; clippy.toml's `allow-unwrap-in-tests` only covers `#[test]`
// fns, not the shared helpers, so the allow is restated file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use rand::{rngs::StdRng, Rng, SeedableRng};

use xftl_core::XFtl;
use xftl_db::pager::{DbJournalMode, Pager, SharedFs};
use xftl_db::record::{
    decode_record, encode_index_key, encode_index_prefix, encode_record, index_key_rowid,
};
use xftl_db::{btree, Value};
use xftl_flash::{FaultKind, FaultPlan, FaultTrigger, FlashChip, FlashConfig, SimClock};
use xftl_fs::{FileSystem, FsConfig, JournalMode};
use xftl_ftl::{BlockDevice, DevError, PageMappedFtl, TxBlockDevice, TxFlashFtl};

/// One generator per (family, case): fully determined by the pair, so any
/// failing case replays from its printed seed alone.
fn case_rng(family: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(family.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case)
}

// --- generators ---------------------------------------------------------------

fn rand_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen_range(0u8..=255)).collect()
}

fn rand_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0u32..5) {
        0 => Value::Null,
        1 => Value::Int(rng.gen_range(i64::MIN..=i64::MAX)),
        2 => Value::Real(rng.gen_range(-1.0e12f64..1.0e12)),
        3 => {
            let len = rng.gen_range(0usize..40);
            Value::Text((0..len).map(|_| rng.gen_range(0u8..0x80) as char).collect())
        }
        _ => Value::Blob(rand_bytes(rng, 60)),
    }
}

// --- record format -------------------------------------------------------------

/// Any row survives the record encoding round trip.
#[test]
fn record_roundtrip() {
    for case in 0..256u64 {
        let mut rng = case_rng(1, case);
        let row: Vec<Value> = (0..rng.gen_range(0usize..8))
            .map(|_| rand_value(&mut rng))
            .collect();
        let enc = encode_record(&row);
        let dec = decode_record(&enc).expect("well-formed record decodes");
        assert_eq!(dec.len(), row.len(), "case {case}");
        for (a, b) in dec.iter().zip(&row) {
            match (a, b) {
                (Value::Real(x), Value::Real(y)) => {
                    assert!(x == y || (x.is_nan() && y.is_nan()), "case {case}");
                }
                _ => assert_eq!(a, b, "case {case}"),
            }
        }
    }
}

/// Truncated records never decode successfully into the full row (decoding
/// either errors or yields fewer/equal values — it must not fabricate data
/// or panic).
#[test]
fn record_truncation_is_safe() {
    for case in 0..256u64 {
        let mut rng = case_rng(2, case);
        let row: Vec<Value> = (0..rng.gen_range(1usize..6))
            .map(|_| rand_value(&mut rng))
            .collect();
        let enc = encode_record(&row);
        let cut = rng.gen_range(1usize..32).min(enc.len());
        let _ = decode_record(&enc[..enc.len() - cut]); // must not panic
    }
}

/// The index key encoding preserves SQL comparison order.
#[test]
fn index_key_order_preserving() {
    for case in 0..512u64 {
        let mut rng = case_rng(3, case);
        let a = rand_value(&mut rng);
        let b = rand_value(&mut rng);
        // NaN has no total order in SQL; skip it.
        let is_nan = |v: &Value| matches!(v, Value::Real(r) if r.is_nan());
        if is_nan(&a) || is_nan(&b) {
            continue;
        }
        let ka = encode_index_prefix(std::slice::from_ref(&a));
        let kb = encode_index_prefix(std::slice::from_ref(&b));
        let cmp_vals = a.sort_cmp(&b);
        if cmp_vals == std::cmp::Ordering::Less {
            assert!(ka < kb, "case {case}: {a:?} < {b:?} but keys disagree");
        } else if cmp_vals == std::cmp::Ordering::Greater {
            assert!(ka > kb, "case {case}: {a:?} > {b:?} but keys disagree");
        }
    }
}

/// Rowids embedded in composite keys always come back intact.
#[test]
fn index_key_rowid_roundtrip() {
    for case in 0..256u64 {
        let mut rng = case_rng(4, case);
        let v = rand_value(&mut rng);
        let rowid = rng.gen_range(i64::MIN..=i64::MAX);
        let key = encode_index_key(&[v], rowid);
        assert_eq!(index_key_rowid(&key).expect("rowid"), rowid, "case {case}");
    }
}

// --- B-tree vs BTreeMap model ---------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(i64, Vec<u8>),
    Delete(i64),
    Get(i64),
}

fn rand_tree_ops(rng: &mut StdRng) -> Vec<TreeOp> {
    let n = rng.gen_range(1usize..120);
    (0..n)
        .map(|_| match rng.gen_range(0u32..3) {
            0 => {
                let k = rng.gen_range(0i64..500);
                let v = rand_bytes(rng, 120);
                TreeOp::Insert(k, v)
            }
            1 => TreeOp::Delete(rng.gen_range(0i64..500)),
            _ => TreeOp::Get(rng.gen_range(0i64..500)),
        })
        .collect()
}

fn test_pager() -> Pager<PageMappedFtl> {
    let chip = FlashChip::new(FlashConfig::tiny(220), SimClock::new());
    let dev = PageMappedFtl::format(chip, 1_600).unwrap();
    let fs = FileSystem::mkfs(
        dev,
        JournalMode::Ordered,
        FsConfig {
            inode_count: 16,
            journal_pages: 32,
            cache_pages: 256,
        },
    )
    .unwrap();
    let fs: SharedFs<PageMappedFtl> = Rc::new(RefCell::new(fs));
    Pager::open(fs, "prop.db", DbJournalMode::Rollback).unwrap()
}

/// The table B-tree behaves exactly like a BTreeMap under arbitrary
/// insert/delete/get sequences, including ordered iteration.
#[test]
fn btree_matches_model() {
    for case in 0..48u64 {
        let mut rng = case_rng(5, case);
        let ops = rand_tree_ops(&mut rng);
        let mut pager = test_pager();
        pager.begin().unwrap();
        let root = btree::create_table_tree(&mut pager).unwrap();
        let mut model: BTreeMap<i64, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                TreeOp::Insert(k, v) => {
                    btree::table_insert(&mut pager, root, *k, v).unwrap();
                    model.insert(*k, v.clone());
                }
                TreeOp::Delete(k) => {
                    let removed = btree::table_delete(&mut pager, root, *k).unwrap();
                    assert_eq!(removed, model.remove(k).is_some(), "case {case}");
                }
                TreeOp::Get(k) => {
                    let got = btree::table_get(&mut pager, root, *k).unwrap();
                    assert_eq!(
                        got.as_deref(),
                        model.get(k).map(Vec::as_slice),
                        "case {case}"
                    );
                }
            }
        }
        // Final state: ordered scan equals the model.
        let mut scanned = Vec::new();
        btree::table_scan_from(&mut pager, root, i64::MIN, &mut |_, rowid, val| {
            scanned.push((rowid, val));
            Ok(true)
        })
        .unwrap();
        let expect: Vec<(i64, Vec<u8>)> = model.into_iter().collect();
        assert_eq!(scanned, expect, "case {case}");
        pager.commit().unwrap();
    }
}

// --- file system vs byte-vector model ---------------------------------------------

#[derive(Debug, Clone)]
enum FsOp {
    Write { off: u64, len: usize, byte: u8 },
    Read { off: u64, len: usize },
    Truncate { size: u64 },
    Fsync,
}

fn rand_fs_ops(rng: &mut StdRng) -> Vec<FsOp> {
    let n = rng.gen_range(1usize..60);
    (0..n)
        .map(|_| match rng.gen_range(0u32..4) {
            0 => FsOp::Write {
                off: rng.gen_range(0u64..40_000),
                len: rng.gen_range(1usize..3_000),
                byte: rng.gen_range(0u8..=255),
            },
            1 => FsOp::Read {
                off: rng.gen_range(0u64..45_000),
                len: rng.gen_range(1usize..3_000),
            },
            2 => FsOp::Truncate {
                size: rng.gen_range(0u64..40_000),
            },
            _ => FsOp::Fsync,
        })
        .collect()
}

/// Byte-granular file I/O matches a plain Vec<u8> model, across cache
/// pressure and fsyncs.
#[test]
fn fs_matches_model() {
    for case in 0..48u64 {
        let mut rng = case_rng(6, case);
        let ops = rand_fs_ops(&mut rng);
        let chip = FlashChip::new(FlashConfig::tiny(300), SimClock::new());
        let dev = PageMappedFtl::format(chip, 2_200).unwrap();
        let mut fs = FileSystem::mkfs(
            dev,
            JournalMode::Ordered,
            FsConfig {
                inode_count: 8,
                journal_pages: 32,
                cache_pages: 16,
            },
        )
        .unwrap();
        let f = fs.create("model").unwrap();
        let mut model: Vec<u8> = Vec::new();
        for op in &ops {
            match op {
                FsOp::Write { off, len, byte } => {
                    let data = vec![*byte; *len];
                    fs.write(f, *off, &data, None).unwrap();
                    let end = *off as usize + *len;
                    if model.len() < end {
                        model.resize(end, 0);
                    }
                    model[*off as usize..end].fill(*byte);
                }
                FsOp::Read { off, len } => {
                    let mut buf = vec![0u8; *len];
                    let n = fs.read(f, *off, &mut buf, None).unwrap();
                    let expect_n = model.len().saturating_sub(*off as usize).min(*len);
                    assert_eq!(n, expect_n, "case {case}");
                    if n > 0 {
                        assert_eq!(
                            &buf[..n],
                            &model[*off as usize..*off as usize + n],
                            "case {case}"
                        );
                    }
                }
                FsOp::Truncate { size } => {
                    fs.truncate(f, *size).unwrap();
                    model.truncate(*size as usize);
                }
                FsOp::Fsync => fs.fsync(f, None).unwrap(),
            }
            assert_eq!(fs.size(f).unwrap(), model.len() as u64, "case {case}");
        }
        // Durability: sync, remount, and compare the whole file.
        let dev = fs.unmount().unwrap();
        let mut fs = FileSystem::mount(dev, JournalMode::Ordered, 16).unwrap();
        let f = fs.open("model").unwrap();
        let mut buf = vec![0u8; model.len()];
        let n = fs.read(f, 0, &mut buf, None).unwrap();
        assert_eq!(n, model.len(), "case {case}");
        assert_eq!(buf, model, "case {case}");
    }
}

// --- X-FTL transactional semantics vs model ------------------------------------------

#[derive(Debug, Clone)]
enum TxOp {
    Write {
        tid: u64,
        lpn: u64,
        byte: u8,
    },
    PlainWrite {
        lpn: u64,
        byte: u8,
    },
    Commit {
        tid: u64,
    },
    /// Split-phase: stage the commit (visible immediately) and keep the
    /// ticket outstanding.
    CommitSubmit {
        tid: u64,
    },
    /// Redeem the newest outstanding ticket — its group covers everything
    /// currently staged, so the whole pipeline drains durable.
    CommitWait,
    Abort {
        tid: u64,
    },
    Flush,
    Crash,
}

fn rand_tx_ops(rng: &mut StdRng) -> Vec<TxOp> {
    // Host contract (§3.3/§4.3): X-FTL does not arbitrate write-write
    // conflicts — SQLite's database-level write lock guarantees a single
    // writer per page. The generator honours that contract by giving each
    // transaction id its own page-number stripe (lpn % 4 == tid - 1) and
    // keeping plain writes on pages 20..24.
    let n = rng.gen_range(1usize..50);
    (0..n)
        .map(|_| match rng.gen_range(0u32..13) {
            0..=3 => {
                let tid = rng.gen_range(1u64..5);
                let row = rng.gen_range(0u64..5);
                TxOp::Write {
                    tid,
                    lpn: row * 4 + (tid - 1),
                    byte: rng.gen_range(0u8..=255),
                }
            }
            4 | 5 => TxOp::PlainWrite {
                lpn: rng.gen_range(20u64..24),
                byte: rng.gen_range(0u8..=255),
            },
            6 | 7 => TxOp::Commit {
                tid: rng.gen_range(1u64..5),
            },
            8 => TxOp::Abort {
                tid: rng.gen_range(1u64..5),
            },
            9 => TxOp::Flush,
            10 => TxOp::Crash,
            11 => TxOp::CommitSubmit {
                tid: rng.gen_range(1u64..5),
            },
            _ => TxOp::CommitWait,
        })
        .collect()
}

/// Resolves the post-crash state of the split-phase model. Group commits
/// flush strictly in submission order and a group is all-or-nothing, so
/// whatever internal flushes (capacity checkpoints, conflict flushes)
/// happened before the crash, the surviving image must equal `durable`
/// plus some *prefix* of the staged records. Returns that world.
fn resolve_crash_world<D: BlockDevice>(
    dev: &mut D,
    durable: &HashMap<u64, u8>,
    staged: &[HashMap<u64, u8>],
    case: u64,
) -> HashMap<u64, u8> {
    let ps = dev.page_size();
    let mut buf = vec![0u8; ps];
    let mut image = [0u8; 24];
    for lpn in 0..24u64 {
        dev.read(lpn, &mut buf).unwrap();
        image[usize::try_from(lpn).unwrap()] = buf[0];
    }
    let mut world = durable.clone();
    let mut k = 0usize;
    loop {
        let matched = (0..24u64).all(|lpn| {
            image[usize::try_from(lpn).unwrap()] == world.get(&lpn).copied().unwrap_or(0)
        });
        if matched {
            return world;
        }
        assert!(
            k < staged.len(),
            "case {case}: post-crash image matches no prefix of the {} staged commit(s)\n\
             image: {image:?}\ndurable: {durable:?}\nstaged: {staged:?}",
            staged.len()
        );
        for (lpn, byte) in &staged[k] {
            world.insert(*lpn, *byte);
        }
        k += 1;
    }
}

// With the `verify` feature the FTL model tests run through the shadow
// oracle: every command is mirrored into `ShadowDevice`'s reference
// model, every read is checked against it, and each crash/recovery is
// followed by a durability sweep plus a flash-physics audit. The op
// loops below are oblivious to the wrapping — they only use the device
// traits, which the wrapper forwards.
#[cfg(feature = "verify")]
use xftl_verify::ShadowDevice;

#[cfg(feature = "verify")]
type XDev = ShadowDevice<XFtl>;
#[cfg(not(feature = "verify"))]
type XDev = XFtl;

fn x_format(chip: FlashChip, logical: u64, xl2p_cap: usize) -> XDev {
    let dev = XFtl::format_with_capacity(chip, logical, xl2p_cap).unwrap();
    #[cfg(feature = "verify")]
    let dev = ShadowDevice::new(dev);
    dev
}

fn x_crash(dev: XDev, xl2p_cap: usize) -> XDev {
    #[cfg(feature = "verify")]
    {
        let (inner, model) = dev.into_parts();
        let recovered = XFtl::recover_with_capacity(inner.into_chip(), xl2p_cap).unwrap();
        let mut dev = ShadowDevice::resume(recovered, model);
        dev.verify_recovered();
        dev.audit();
        dev
    }
    #[cfg(not(feature = "verify"))]
    {
        XFtl::recover_with_capacity(dev.into_chip(), xl2p_cap).unwrap()
    }
}

#[cfg(feature = "verify")]
type TDev = ShadowDevice<TxFlashFtl>;
#[cfg(not(feature = "verify"))]
type TDev = TxFlashFtl;

fn t_format(chip: FlashChip, logical: u64) -> TDev {
    let dev = TxFlashFtl::format(chip, logical).unwrap();
    #[cfg(feature = "verify")]
    let dev = ShadowDevice::new(dev);
    dev
}

fn t_crash(dev: TDev) -> TDev {
    #[cfg(feature = "verify")]
    {
        let (inner, model) = dev.into_parts();
        let recovered = TxFlashFtl::recover(inner.into_chip()).unwrap();
        let mut dev = ShadowDevice::resume(recovered, model);
        dev.verify_recovered();
        dev.audit();
        dev
    }
    #[cfg(not(feature = "verify"))]
    {
        TxFlashFtl::recover(dev.into_chip()).unwrap()
    }
}

/// X-FTL's committed state always equals a model where transactional
/// writes become visible only at commit (blocking or submitted), vanish
/// on abort, and crashes preserve durable data plus — group-atomically,
/// in submission order — any staged split-phase commits an internal
/// flush happened to persist.
#[test]
fn xftl_transactions_match_model() {
    for case in 0..48u64 {
        let mut rng = case_rng(7, case);
        let ops = rand_tx_ops(&mut rng);
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(40), clock);
        let mut dev = x_format(chip, 24, 64);
        let ps = dev.page_size();
        // What reads return / what certainly survives a crash / staged
        // split-phase records (visible, not yet certainly durable) in
        // submission order / outstanding tickets, oldest first.
        let mut visible: HashMap<u64, u8> = HashMap::new();
        let mut durable: HashMap<u64, u8> = HashMap::new();
        let mut staged_model: Vec<HashMap<u64, u8>> = Vec::new();
        let mut outstanding = Vec::new();
        let mut pending: HashMap<u64, HashMap<u64, u8>> = HashMap::new();
        for op in &ops {
            match op {
                TxOp::Write { tid, lpn, byte } => {
                    dev.write_tx(*tid, *lpn, &vec![*byte; ps]).unwrap();
                    pending.entry(*tid).or_default().insert(*lpn, *byte);
                }
                TxOp::PlainWrite { lpn, byte } => {
                    dev.write(*lpn, &vec![*byte; ps]).unwrap();
                    // A plain write landing on a staged page forces the
                    // device to flush the group first (the fold must not
                    // clobber the new batch), so the pipeline drains here.
                    if staged_model.iter().any(|rec| rec.contains_key(lpn)) {
                        for rec in staged_model.drain(..) {
                            durable.extend(rec);
                        }
                    }
                    visible.insert(*lpn, *byte);
                    durable.insert(*lpn, *byte);
                }
                TxOp::Commit { tid } => {
                    dev.commit(*tid).unwrap();
                    let writes = pending.remove(tid).unwrap_or_default();
                    // Blocking commit = submit + wait: a *real* commit
                    // flushes the whole staged pipeline along with this
                    // tx. An empty transaction is durable by vacuity —
                    // its ticket is immediate, so nothing need flush.
                    if !writes.is_empty() {
                        for rec in staged_model.drain(..) {
                            durable.extend(rec);
                        }
                    }
                    for (lpn, byte) in writes {
                        visible.insert(lpn, byte);
                        durable.insert(lpn, byte);
                    }
                }
                TxOp::CommitSubmit { tid } => {
                    let t = dev.commit_submit(*tid).unwrap();
                    outstanding.push(t);
                    let writes = pending.remove(tid).unwrap_or_default();
                    for (lpn, byte) in &writes {
                        visible.insert(*lpn, *byte);
                    }
                    // An immediate ticket stages nothing — waiting on it
                    // later is only a queue barrier, never a flush.
                    if !t.is_immediate() {
                        staged_model.push(writes);
                    }
                }
                TxOp::CommitWait => {
                    // The newest ticket's group covers everything staged;
                    // older tickets become no-ops once it flushes. An
                    // immediate ticket never implies a group flush.
                    if let Some(t) = outstanding.pop() {
                        dev.commit_wait(t).unwrap();
                        if !t.is_immediate() {
                            for rec in staged_model.drain(..) {
                                durable.extend(rec);
                            }
                        }
                    }
                }
                TxOp::Abort { tid } => {
                    dev.abort(*tid).unwrap();
                    pending.remove(tid);
                }
                TxOp::Flush => {
                    dev.flush().unwrap();
                    for rec in staged_model.drain(..) {
                        durable.extend(rec);
                    }
                }
                TxOp::Crash => {
                    dev = x_crash(dev, 64);
                    pending.clear();
                    // Tickets die with the power; resolve which prefix of
                    // the staged pipeline an internal flush saved.
                    outstanding.clear();
                    durable = resolve_crash_world(&mut dev, &durable, &staged_model, case);
                    staged_model.clear();
                    visible = durable.clone();
                }
            }
            // Committed view must match the model at every step.
            let mut buf = vec![0u8; ps];
            for lpn in 0..24u64 {
                dev.read(lpn, &mut buf).unwrap();
                let expect = visible.get(&lpn).copied().unwrap_or(0);
                assert_eq!(buf[0], expect, "case {case}: lpn {lpn} after {op:?}");
            }
            // Each in-flight transaction sees its own writes.
            for (tid, writes) in &pending {
                for (lpn, byte) in writes {
                    dev.read_tx(*tid, *lpn, &mut buf).unwrap();
                    assert_eq!(buf[0], *byte, "case {case}");
                }
            }
        }
        // Final crash: durable state plus a staged prefix survives.
        let mut dev = x_crash(dev, 64);
        resolve_crash_world(&mut dev, &durable, &staged_model, case);
    }
}

// --- X-FTL transactional semantics vs model, under injected faults -------------

/// Generates a deterministic fault environment alongside the command
/// schedule: modest background rates (kept low enough that bounded FTL
/// retries always converge) plus up to three one-shot triggers aimed at
/// random ops, blocks, or logical pages. Every draw comes from the case
/// RNG, so a failing case replays from its printed seed alone.
fn rand_fault_plan(rng: &mut StdRng) -> FaultPlan {
    let seed = rng.gen_range(0u64..=u64::MAX);
    let mut plan = FaultPlan::new(seed)
        .program_fail_rate(rng.gen_range(0.0..4e-3))
        .erase_fail_rate(rng.gen_range(0.0..2e-3))
        .read_flip_rate(rng.gen_range(0.0..4e-2))
        .uncorrectable_rate(rng.gen_range(0.0..2e-3));
    for _ in 0..rng.gen_range(0usize..4) {
        let kind = match rng.gen_range(0u32..4) {
            0 => FaultKind::ProgramFail,
            1 => FaultKind::EraseFail,
            2 => FaultKind::ReadFlips(rng.gen_range(1u32..=4)),
            _ => FaultKind::ReadFlips(64), // far past ECC: uncorrectable
        };
        let trigger = FaultTrigger::new(kind);
        // Erases carry no logical page, so an LPN selector would never
        // match an EraseFail; steer those at ops or physical blocks.
        let trigger = match rng.gen_range(0u32..3) {
            0 => trigger.at_op(rng.gen_range(0u64..2_000)),
            1 => trigger.on_block(rng.gen_range(2u32..40)),
            _ if !matches!(kind, FaultKind::EraseFail) => trigger.on_lpn(rng.gen_range(0u64..24)),
            _ => trigger.on_block(rng.gen_range(2u32..40)),
        };
        plan = plan.trigger(trigger);
    }
    plan
}

/// Family 7's transactional model must keep holding when the chip runs
/// under a generated [`FaultPlan`]: program failures, block retirements,
/// and read errors are the FTL's problem to retry and remap — never
/// visible in the committed image, to in-flight readers, or (under
/// `--features verify`) to the shadow oracle and flash auditor.
#[test]
fn xftl_transactions_match_model_under_faults() {
    for case in 0..32u64 {
        let mut rng = case_rng(10, case);
        let plan = rand_fault_plan(&mut rng);
        let ops = rand_tx_ops(&mut rng);
        let clock = SimClock::new();
        let mut chip = FlashChip::new(FlashConfig::tiny(40), clock);
        // Installed before format so even the first metadata writes run
        // in the fault environment; the plan survives every power cycle.
        chip.set_fault_plan(plan);
        let mut dev = x_format(chip, 24, 64);
        let ps = dev.page_size();
        let mut visible: HashMap<u64, u8> = HashMap::new();
        let mut durable: HashMap<u64, u8> = HashMap::new();
        let mut staged_model: Vec<HashMap<u64, u8>> = Vec::new();
        let mut outstanding = Vec::new();
        let mut pending: HashMap<u64, HashMap<u64, u8>> = HashMap::new();
        for op in &ops {
            match op {
                TxOp::Write { tid, lpn, byte } => {
                    dev.write_tx(*tid, *lpn, &vec![*byte; ps]).unwrap();
                    pending.entry(*tid).or_default().insert(*lpn, *byte);
                }
                TxOp::PlainWrite { lpn, byte } => {
                    dev.write(*lpn, &vec![*byte; ps]).unwrap();
                    // Plain write over a staged page ⇒ the device flushed
                    // the group before programming the new version.
                    if staged_model.iter().any(|rec| rec.contains_key(lpn)) {
                        for rec in staged_model.drain(..) {
                            durable.extend(rec);
                        }
                    }
                    visible.insert(*lpn, *byte);
                    durable.insert(*lpn, *byte);
                }
                TxOp::Commit { tid } => {
                    dev.commit(*tid).unwrap();
                    let writes = pending.remove(tid).unwrap_or_default();
                    // Only a non-empty commit flushes the staged pipeline;
                    // an empty one redeems an immediate ticket (barrier).
                    if !writes.is_empty() {
                        for rec in staged_model.drain(..) {
                            durable.extend(rec);
                        }
                    }
                    for (lpn, byte) in writes {
                        visible.insert(lpn, byte);
                        durable.insert(lpn, byte);
                    }
                }
                TxOp::CommitSubmit { tid } => {
                    let t = dev.commit_submit(*tid).unwrap();
                    outstanding.push(t);
                    let writes = pending.remove(tid).unwrap_or_default();
                    for (lpn, byte) in &writes {
                        visible.insert(*lpn, *byte);
                    }
                    if !t.is_immediate() {
                        staged_model.push(writes);
                    }
                }
                TxOp::CommitWait => {
                    if let Some(t) = outstanding.pop() {
                        dev.commit_wait(t).unwrap();
                        if !t.is_immediate() {
                            for rec in staged_model.drain(..) {
                                durable.extend(rec);
                            }
                        }
                    }
                }
                TxOp::Abort { tid } => {
                    dev.abort(*tid).unwrap();
                    pending.remove(tid);
                }
                TxOp::Flush => {
                    dev.flush().unwrap();
                    for rec in staged_model.drain(..) {
                        durable.extend(rec);
                    }
                }
                TxOp::Crash => {
                    dev = x_crash(dev, 64);
                    pending.clear();
                    outstanding.clear();
                    durable = resolve_crash_world(&mut dev, &durable, &staged_model, case);
                    staged_model.clear();
                    visible = durable.clone();
                }
            }
            let mut buf = vec![0u8; ps];
            for lpn in 0..24u64 {
                dev.read(lpn, &mut buf).unwrap();
                let expect = visible.get(&lpn).copied().unwrap_or(0);
                assert_eq!(buf[0], expect, "case {case}: lpn {lpn} after {op:?}");
            }
            for (tid, writes) in &pending {
                for (lpn, byte) in writes {
                    dev.read_tx(*tid, *lpn, &mut buf).unwrap();
                    assert_eq!(buf[0], *byte, "case {case}");
                }
            }
        }
        let mut dev = x_crash(dev, 64);
        resolve_crash_world(&mut dev, &durable, &staged_model, case);
    }
}

// --- TxFlash SCC semantics vs model ------------------------------------------

/// The TxFlash baseline obeys the same transactional model as X-FTL
/// (visible at commit, gone on abort/crash), via its cyclic-commit
/// mechanism instead of a mapping table.
#[test]
fn txflash_transactions_match_model() {
    for case in 0..48u64 {
        let mut rng = case_rng(8, case);
        let ops = rand_tx_ops(&mut rng);
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(40), clock);
        let mut dev = t_format(chip, 24);
        let ps = dev.page_size();
        let mut committed: HashMap<u64, u8> = HashMap::new();
        let mut pending: HashMap<u64, HashMap<u64, u8>> = HashMap::new();
        for op in &ops {
            match op {
                TxOp::Write { tid, lpn, byte } => {
                    dev.write_tx(*tid, *lpn, &vec![*byte; ps]).unwrap();
                    pending.entry(*tid).or_default().insert(*lpn, *byte);
                }
                TxOp::PlainWrite { lpn, byte } => {
                    dev.write(*lpn, &vec![*byte; ps]).unwrap();
                    committed.insert(*lpn, *byte);
                }
                TxOp::Commit { tid } => {
                    dev.commit(*tid).unwrap();
                    for (lpn, byte) in pending.remove(tid).unwrap_or_default() {
                        committed.insert(lpn, byte);
                    }
                }
                TxOp::CommitSubmit { tid } => {
                    // The synchronous personality has no pipeline: submit
                    // IS the durable commit and the ticket is immediate.
                    let t = dev.commit_submit(*tid).unwrap();
                    assert!(t.is_immediate(), "case {case}: TxFlash staged a commit");
                    dev.commit_wait(t).unwrap();
                    for (lpn, byte) in pending.remove(tid).unwrap_or_default() {
                        committed.insert(lpn, byte);
                    }
                }
                // Immediate tickets are redeemed on the spot above;
                // nothing is ever outstanding.
                TxOp::CommitWait => {}
                TxOp::Abort { tid } => {
                    dev.abort(*tid).unwrap();
                    pending.remove(tid);
                }
                TxOp::Flush => dev.flush().unwrap(),
                TxOp::Crash => {
                    dev = t_crash(dev);
                    pending.clear();
                }
            }
            let mut buf = vec![0u8; ps];
            for lpn in 0..24u64 {
                dev.read(lpn, &mut buf).unwrap();
                let expect = committed.get(&lpn).copied().unwrap_or(0);
                assert_eq!(buf[0], expect, "case {case}: lpn {lpn} after {op:?}");
            }
            for (tid, writes) in &pending {
                for (lpn, byte) in writes {
                    dev.read_tx(*tid, *lpn, &mut buf).unwrap();
                    assert_eq!(buf[0], *byte, "case {case}");
                }
            }
        }
        let mut dev = t_crash(dev);
        let mut buf = vec![0u8; ps];
        for lpn in 0..24u64 {
            dev.read(lpn, &mut buf).unwrap();
            assert_eq!(
                buf[0],
                committed.get(&lpn).copied().unwrap_or(0),
                "case {case}: lpn {lpn} after recovery"
            );
        }
    }
}

// --- SQL engine vs key-value model ---------------------------------------------

#[derive(Debug, Clone)]
enum SqlOp {
    Insert { id: i64, v: i64 },
    Update { id: i64, v: i64 },
    Delete { id: i64 },
    Rollbacked { id: i64, v: i64 },
}

fn rand_sql_ops(rng: &mut StdRng) -> Vec<SqlOp> {
    let n = rng.gen_range(1usize..40);
    (0..n)
        .map(|_| {
            let id = rng.gen_range(0i64..40);
            let v = rng.gen_range(i64::MIN..=i64::MAX);
            match rng.gen_range(0u32..7) {
                0..=2 => SqlOp::Insert { id, v },
                3 | 4 => SqlOp::Update { id, v },
                5 => SqlOp::Delete { id },
                _ => SqlOp::Rollbacked { id, v },
            }
        })
        .collect()
}

/// The SQL engine over the full stack matches a BTreeMap model under
/// arbitrary insert/update/delete sequences, including rolled-back
/// transactions and a crash at the end.
#[test]
fn sql_engine_matches_model() {
    use xftl_db::{Connection, DbJournalMode};
    for case in 0..32u64 {
        let mut rng = case_rng(9, case);
        let ops = rand_sql_ops(&mut rng);
        let chip = FlashChip::new(FlashConfig::tiny(300), SimClock::new());
        let dev = XFtl::format(chip, 2_200).unwrap();
        let fs = FileSystem::mkfs_tx(
            dev,
            JournalMode::Off,
            FsConfig {
                inode_count: 16,
                journal_pages: 32,
                cache_pages: 256,
            },
        )
        .unwrap();
        let fs = Rc::new(RefCell::new(fs));
        let mut db = Connection::open(Rc::clone(&fs), "prop.db", DbJournalMode::Off).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
            .unwrap();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in &ops {
            match op {
                SqlOp::Insert { id, v } => {
                    db.execute_with(
                        "INSERT OR REPLACE INTO t VALUES (?, ?)",
                        &[Value::Int(*id), Value::Int(*v)],
                    )
                    .unwrap();
                    model.insert(*id, *v);
                }
                SqlOp::Update { id, v } => {
                    let n = db
                        .execute_with(
                            "UPDATE t SET v = ? WHERE id = ?",
                            &[Value::Int(*v), Value::Int(*id)],
                        )
                        .unwrap()
                        .affected();
                    if model.contains_key(id) {
                        assert_eq!(n, 1, "case {case}");
                        model.insert(*id, *v);
                    } else {
                        assert_eq!(n, 0, "case {case}");
                    }
                }
                SqlOp::Delete { id } => {
                    let n = db
                        .execute_with("DELETE FROM t WHERE id = ?", &[Value::Int(*id)])
                        .unwrap()
                        .affected();
                    assert_eq!(n, u64::from(model.remove(id).is_some()), "case {case}");
                }
                SqlOp::Rollbacked { id, v } => {
                    db.execute("BEGIN").unwrap();
                    db.execute_with(
                        "INSERT OR REPLACE INTO t VALUES (?, ?)",
                        &[Value::Int(*id), Value::Int(*v)],
                    )
                    .unwrap();
                    db.execute("ROLLBACK").unwrap();
                    // model unchanged
                }
            }
        }
        // Full table scan matches the model.
        let rows = db.query("SELECT id, v FROM t ORDER BY id").unwrap();
        let expect: Vec<Vec<Value>> = model
            .iter()
            .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
            .collect();
        assert_eq!(&rows, &expect, "case {case}");
        // Crash and reopen: autocommitted state survives.
        drop(db);
        let fs_inner = Rc::try_unwrap(fs).expect("sole owner").into_inner();
        let dev = XFtl::recover(fs_inner.into_device().into_chip()).unwrap();
        let fs = Rc::new(RefCell::new(
            FileSystem::mount_tx(dev, JournalMode::Off, 256).unwrap(),
        ));
        let mut db = Connection::open(fs, "prop.db", DbJournalMode::Off).unwrap();
        let rows = db.query("SELECT id, v FROM t ORDER BY id").unwrap();
        assert_eq!(&rows, &expect, "case {case}");
    }
}

// --- family 11: MVCC concurrent schedules vs the sequential model ---------------

/// One step of a random concurrent schedule. Every transactional tid is
/// opened with `begin` (a snapshot transaction); plain writes provide
/// the non-transactional traffic that must conflict overlapping
/// snapshot writers.
#[derive(Debug, Clone)]
enum MvccOp {
    Begin { tid: u64 },
    Write { tid: u64, lpn: u64, byte: u8 },
    PlainWrite { lpn: u64, byte: u8 },
    Commit { tid: u64 },
    CommitSubmit { tid: u64 },
    CommitWait,
    Abort { tid: u64 },
    Flush,
    Crash,
}

/// Generates a schedule with 2–4 concurrently open snapshot writers.
/// Tids are never reused, so each `begin` opens a fresh transaction and
/// every commit outcome is attributable to exactly one snapshot.
fn rand_mvcc_ops(rng: &mut StdRng) -> Vec<MvccOp> {
    let n = rng.gen_range(40..100);
    let mut ops = Vec::with_capacity(n);
    let mut active: Vec<u64> = Vec::new();
    let mut next_tid = 1u64;
    for _ in 0..n {
        let roll = rng.gen_range(0u32..100);
        if roll < 22 {
            if active.len() < 4 {
                ops.push(MvccOp::Begin { tid: next_tid });
                active.push(next_tid);
                next_tid += 1;
            }
        } else if roll < 52 {
            if let Some(i) = (!active.is_empty()).then(|| rng.gen_range(0..active.len())) {
                ops.push(MvccOp::Write {
                    tid: active[i],
                    lpn: rng.gen_range(0u64..16),
                    byte: rng.gen_range(1u8..=250),
                });
            }
        } else if roll < 62 {
            ops.push(MvccOp::PlainWrite {
                lpn: rng.gen_range(0u64..16),
                byte: rng.gen_range(1u8..=250),
            });
        } else if roll < 78 {
            if let Some(i) = (!active.is_empty()).then(|| rng.gen_range(0..active.len())) {
                let tid = active.swap_remove(i);
                ops.push(if rng.gen_bool(0.5) {
                    MvccOp::Commit { tid }
                } else {
                    MvccOp::CommitSubmit { tid }
                });
            }
        } else if roll < 84 {
            ops.push(MvccOp::CommitWait);
        } else if roll < 91 {
            if let Some(i) = (!active.is_empty()).then(|| rng.gen_range(0..active.len())) {
                let tid = active.swap_remove(i);
                ops.push(MvccOp::Abort { tid });
            }
        } else if roll < 96 {
            ops.push(MvccOp::Flush);
        } else {
            ops.push(MvccOp::Crash);
            active.clear();
        }
    }
    ops
}

/// MVCC schedules match a sequential model with snapshot views and a
/// page change-clock: a snapshot transaction reads its `begin`-time
/// image (own writes excepted), commits succeed iff no written page
/// changed after the snapshot (first-committer-wins, predicted
/// *exactly*), losers roll back completely, and crashes keep the durable
/// image plus a staged prefix while every snapshot dies with device RAM.
#[test]
fn xftl_mvcc_schedules_match_model() {
    for case in 0..40u64 {
        let mut rng = case_rng(11, case);
        let ops = rand_mvcc_ops(&mut rng);
        let clock = SimClock::new();
        let chip = FlashChip::new(FlashConfig::tiny(40), clock);
        let mut dev = x_format(chip, 24, 64);
        let ps = dev.page_size();
        // The sequential model: visible/durable images and the staged
        // split-phase records as in family 7, plus the MVCC bookkeeping —
        // a monotone change-clock per page, each open snapshot's clock
        // value, and its frozen view of the visible image.
        let mut visible: HashMap<u64, u8> = HashMap::new();
        let mut durable: HashMap<u64, u8> = HashMap::new();
        let mut staged_model: Vec<HashMap<u64, u8>> = Vec::new();
        let mut outstanding = Vec::new();
        let mut pending: HashMap<u64, HashMap<u64, u8>> = HashMap::new();
        let mut clock_m = 0u64;
        let mut page_clock: HashMap<u64, u64> = HashMap::new();
        let mut snaps: HashMap<u64, u64> = HashMap::new();
        let mut views: HashMap<u64, HashMap<u64, u8>> = HashMap::new();
        for op in &ops {
            match op {
                MvccOp::Begin { tid } => {
                    dev.begin(*tid).unwrap();
                    snaps.insert(*tid, clock_m);
                    views.insert(*tid, visible.clone());
                }
                MvccOp::Write { tid, lpn, byte } => {
                    dev.write_tx(*tid, *lpn, &vec![*byte; ps]).unwrap();
                    pending.entry(*tid).or_default().insert(*lpn, *byte);
                }
                MvccOp::PlainWrite { lpn, byte } => {
                    dev.write(*lpn, &vec![*byte; ps]).unwrap();
                    if staged_model.iter().any(|rec| rec.contains_key(lpn)) {
                        for rec in staged_model.drain(..) {
                            durable.extend(rec);
                        }
                    }
                    visible.insert(*lpn, *byte);
                    durable.insert(*lpn, *byte);
                    clock_m += 1;
                    page_clock.insert(*lpn, clock_m);
                }
                MvccOp::Commit { tid } => {
                    let writes = pending.remove(tid).unwrap_or_default();
                    let snap = snaps.remove(tid).unwrap_or(u64::MAX);
                    views.remove(tid);
                    // First-committer-wins, predicted exactly. A
                    // read-only snapshot never validates (durable by
                    // vacuity).
                    let conflict = !writes.is_empty()
                        && writes
                            .keys()
                            .any(|l| page_clock.get(l).copied().unwrap_or(0) > snap);
                    if conflict {
                        assert_eq!(
                            dev.commit(*tid),
                            Err(DevError::Conflict),
                            "case {case}: stale writer admitted at {op:?}"
                        );
                    } else {
                        dev.commit(*tid)
                            .unwrap_or_else(|e| panic!("case {case}: {op:?} refused: {e:?}"));
                        if !writes.is_empty() {
                            for rec in staged_model.drain(..) {
                                durable.extend(rec);
                            }
                        }
                        for (lpn, byte) in writes {
                            visible.insert(lpn, byte);
                            durable.insert(lpn, byte);
                            clock_m += 1;
                            page_clock.insert(lpn, clock_m);
                        }
                    }
                }
                MvccOp::CommitSubmit { tid } => {
                    let writes = pending.remove(tid).unwrap_or_default();
                    let snap = snaps.remove(tid).unwrap_or(u64::MAX);
                    views.remove(tid);
                    let conflict = !writes.is_empty()
                        && writes
                            .keys()
                            .any(|l| page_clock.get(l).copied().unwrap_or(0) > snap);
                    if conflict {
                        assert_eq!(
                            dev.commit_submit(*tid).map(|_| ()),
                            Err(DevError::Conflict),
                            "case {case}: stale writer admitted at {op:?}"
                        );
                    } else {
                        let t = dev.commit_submit(*tid).unwrap();
                        outstanding.push(t);
                        for (lpn, byte) in &writes {
                            visible.insert(*lpn, *byte);
                            clock_m += 1;
                            page_clock.insert(*lpn, clock_m);
                        }
                        if !t.is_immediate() {
                            staged_model.push(writes);
                        }
                    }
                }
                MvccOp::CommitWait => {
                    if let Some(t) = outstanding.pop() {
                        dev.commit_wait(t).unwrap();
                        if !t.is_immediate() {
                            for rec in staged_model.drain(..) {
                                durable.extend(rec);
                            }
                        }
                    }
                }
                MvccOp::Abort { tid } => {
                    dev.abort(*tid).unwrap();
                    pending.remove(tid);
                    snaps.remove(tid);
                    views.remove(tid);
                }
                MvccOp::Flush => {
                    dev.flush().unwrap();
                    for rec in staged_model.drain(..) {
                        durable.extend(rec);
                    }
                }
                MvccOp::Crash => {
                    dev = x_crash(dev, 64);
                    pending.clear();
                    outstanding.clear();
                    snaps.clear();
                    views.clear();
                    durable = resolve_crash_world(&mut dev, &durable, &staged_model, case);
                    staged_model.clear();
                    visible = durable.clone();
                    // Pre-crash stamps are all <= clock_m, so no snapshot
                    // begun after recovery can conflict on them — exactly
                    // the device's reset commit-sequence semantics.
                }
            }
            // The committed view matches the model at every step…
            let mut buf = vec![0u8; ps];
            for lpn in 0..16u64 {
                dev.read(lpn, &mut buf).unwrap();
                let expect = visible.get(&lpn).copied().unwrap_or(0);
                assert_eq!(buf[0], expect, "case {case}: lpn {lpn} after {op:?}");
            }
            // …and every open snapshot sees its own writes over its
            // frozen begin-time view, never the live image.
            for (tid, view) in &views {
                for lpn in 0..16u64 {
                    let expect = pending
                        .get(tid)
                        .and_then(|m| m.get(&lpn))
                        .or_else(|| view.get(&lpn))
                        .copied()
                        .unwrap_or(0);
                    dev.read_tx(*tid, lpn, &mut buf).unwrap();
                    assert_eq!(
                        buf[0], expect,
                        "case {case}: snapshot tid {tid} lpn {lpn} after {op:?}"
                    );
                }
            }
        }
        // Final crash: durable state plus a staged prefix survives, and
        // every open snapshot is gone.
        let mut dev = x_crash(dev, 64);
        resolve_crash_world(&mut dev, &durable, &staged_model, case);
    }
}

// --- family 12: demand-paged mapping cache vs the full-RAM reference ------------

/// One step of a random cache-pressure schedule. `Budget` re-bounds the
/// mapping cache mid-run (an eviction storm when it shrinks), `Crash`
/// power-cycles at an arbitrary point — including between a dirty
/// eviction flush and the next checkpoint.
#[derive(Debug, Clone)]
enum CacheOp {
    Write { lpn: u64, byte: u8 },
    Read { lpn: u64 },
    Budget { slots: usize },
    Flush,
    Crash,
}

fn rand_cache_ops(rng: &mut StdRng, logical: u64, slabs: usize) -> Vec<CacheOp> {
    let n = rng.gen_range(60usize..200);
    (0..n)
        .map(|_| match rng.gen_range(0u32..12) {
            0..=5 => CacheOp::Write {
                lpn: rng.gen_range(0..logical),
                byte: rng.gen_range(1u8..=250),
            },
            6..=8 => CacheOp::Read {
                lpn: rng.gen_range(0..logical),
            },
            9 => CacheOp::Budget {
                slots: rng.gen_range(1..=slabs),
            },
            10 => CacheOp::Flush,
            _ => CacheOp::Crash,
        })
        .collect()
}

/// A demand-paged device under a random mapping-cache budget and a
/// random eviction schedule behaves exactly like the full-RAM device:
/// every read agrees with an unbounded twin and with a byte model, the
/// resident-slab count never exceeds the budget at an op boundary, and
/// a crash at an arbitrary point — mid-schedule, dirty slabs evicted or
/// not — recovers the *identical* L2P mapping the live device held.
#[test]
fn demand_paged_cache_matches_full_ram_model() {
    for case in 0..24u64 {
        let mut rng = case_rng(12, case);
        // ~7 translation slabs at the tiny geometry (64 entries each), so
        // every budget from 1 slab (thrash) to all of them is reachable.
        let logical: u64 = 400;
        let chip = || FlashChip::new(FlashConfig::tiny(110), SimClock::new());
        let mut bounded = PageMappedFtl::format(chip(), logical).unwrap();
        let mut full = PageMappedFtl::format(chip(), logical).unwrap();
        let slabs = bounded.base().map_cache().slabs();
        assert!(slabs >= 4, "geometry must exercise multiple slabs");
        let mut budget = rng.gen_range(1..=slabs);
        bounded
            .base_mut()
            .set_map_cache_budget(Some(budget))
            .unwrap();
        let ops = rand_cache_ops(&mut rng, logical, slabs);
        let ps = bounded.page_size();
        let mut model: HashMap<u64, u8> = HashMap::new();
        let mut buf_a = vec![0u8; ps];
        let mut buf_b = vec![0u8; ps];
        // Stats reset at every power cycle; accumulate across them.
        let mut misses = 0u64;
        for op in &ops {
            match op {
                CacheOp::Write { lpn, byte } => {
                    bounded.write(*lpn, &vec![*byte; ps]).unwrap();
                    full.write(*lpn, &vec![*byte; ps]).unwrap();
                    model.insert(*lpn, *byte);
                }
                CacheOp::Read { lpn } => {
                    bounded.read(*lpn, &mut buf_a).unwrap();
                    full.read(*lpn, &mut buf_b).unwrap();
                    let expect = model.get(lpn).copied().unwrap_or(0);
                    assert_eq!(buf_a[0], expect, "case {case}: bounded read at {op:?}");
                    assert_eq!(buf_a, buf_b, "case {case}: devices disagree at {op:?}");
                }
                CacheOp::Budget { slots } => {
                    budget = *slots;
                    bounded
                        .base_mut()
                        .set_map_cache_budget(Some(budget))
                        .unwrap();
                }
                CacheOp::Flush => {
                    bounded.flush().unwrap();
                    full.flush().unwrap();
                }
                CacheOp::Crash => {
                    // The mapping the live device holds right now — dirty
                    // resident slabs and persisted translation pages alike.
                    let before: Vec<_> = (0..logical).map(|l| bounded.base().l2p_peek(l)).collect();
                    misses += bounded.stats().map_cache_misses;
                    bounded = PageMappedFtl::recover(bounded.into_chip()).unwrap();
                    bounded
                        .base_mut()
                        .set_map_cache_budget(Some(budget))
                        .unwrap();
                    let after: Vec<_> = (0..logical).map(|l| bounded.base().l2p_peek(l)).collect();
                    assert_eq!(before, after, "case {case}: recovery changed the mapping");
                    full = PageMappedFtl::recover(full.into_chip()).unwrap();
                }
            }
            // The budget bound holds at every op boundary.
            assert!(
                bounded.base().map_cache().resident() <= budget,
                "case {case}: {} resident slabs over budget {budget} after {op:?}",
                bounded.base().map_cache().resident(),
            );
        }
        // Final crash for both devices: the whole logical space must read
        // back identically (roll-forward finds even unflushed writes).
        misses += bounded.stats().map_cache_misses;
        let mut bounded = PageMappedFtl::recover(bounded.into_chip()).unwrap();
        bounded
            .base_mut()
            .set_map_cache_budget(Some(budget))
            .unwrap();
        let mut full = PageMappedFtl::recover(full.into_chip()).unwrap();
        for lpn in 0..logical {
            bounded.read(lpn, &mut buf_a).unwrap();
            full.read(lpn, &mut buf_b).unwrap();
            let expect = model.get(&lpn).copied().unwrap_or(0);
            assert_eq!(buf_a[0], expect, "case {case}: lpn {lpn} after recovery");
            assert_eq!(buf_a, buf_b, "case {case}: lpn {lpn} devices diverged");
        }
        // The bounded run actually exercised demand paging.
        misses += bounded.stats().map_cache_misses;
        assert!(misses > 0, "case {case}: schedule never missed the cache");
    }
}
