//! Cross-crate integration tests: the paper's headline claims asserted as
//! invariants over the full stack (flash → FTL → FS → SQL).

// Test/demo code: unwrap/expect on a setup failure is the right failure
// mode here; clippy.toml's `allow-unwrap-in-tests` only covers `#[test]`
// fns, not the shared helpers, so the allow is restated file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use xftl_db::Value;
use xftl_workloads::fio::{self, FioConfig};
use xftl_workloads::rig::{Mode, Rig, RigConfig};
use xftl_workloads::synthetic::{self, SyntheticConfig};
use xftl_workloads::tpcc::{self, TpccDriver, TpccScale, WRITE_INTENSIVE};

fn small_syn() -> SyntheticConfig {
    SyntheticConfig {
        tuples: 2_000,
        txns: 60,
        updates_per_txn: 5,
        ..Default::default()
    }
}

fn rig(mode: Mode) -> Rig {
    Rig::build(RigConfig {
        blocks: 80,
        logical_pages: 6_000,
        ..RigConfig::small(mode)
    })
}

/// Figure 5's headline: X-FTL < WAL < RBJ in execution time.
#[test]
fn synthetic_mode_ordering() {
    let mut times = Vec::new();
    for mode in [Mode::Rbj, Mode::Wal, Mode::XFtl] {
        let r = rig(mode);
        let mut db = r.open_db("s.db");
        synthetic::load_partsupply(&mut db, &small_syn()).unwrap();
        db.reset_stats();
        r.reset_stats();
        let res = synthetic::run_transactions(&mut db, &r.clock, &small_syn()).unwrap();
        times.push(res.elapsed_ns);
    }
    let (rbj, wal, xftl) = (times[0], times[1], times[2]);
    assert!(xftl < wal, "X-FTL {xftl} must beat WAL {wal}");
    assert!(wal < rbj, "WAL {wal} must beat RBJ {rbj}");
    // The paper reports 11.7x / 3.5x at GC validity 50%; without aging the
    // gap is narrower but must still be decisive.
    assert!(rbj as f64 / xftl as f64 > 3.0, "RBJ/X-FTL gap collapsed");
    assert!(wal as f64 / xftl as f64 > 1.5, "WAL/X-FTL gap collapsed");
}

/// Table 1's fsync story: 3 per RBJ transaction, 1 per WAL transaction,
/// 1 per X-FTL transaction (and zero journal pages for X-FTL).
#[test]
fn fsyncs_per_transaction_match_paper() {
    for (mode, expected) in [(Mode::Rbj, 3.0), (Mode::Wal, 1.0), (Mode::XFtl, 1.0)] {
        let r = rig(mode);
        let mut db = r.open_db("s.db");
        synthetic::load_partsupply(&mut db, &small_syn()).unwrap();
        db.reset_stats();
        let res = synthetic::run_transactions(&mut db, &r.clock, &small_syn()).unwrap();
        let per_txn = db.pager_stats().fsyncs as f64 / res.txns as f64;
        assert!(
            (per_txn - expected).abs() < 0.2,
            "{mode:?}: {per_txn} fsyncs/txn, expected ~{expected}"
        );
        if mode == Mode::XFtl {
            assert_eq!(
                db.pager_stats().journal_writes,
                0,
                "X-FTL writes no journal"
            );
        }
    }
}

/// Figure 6's device-side ordering: flash programs and erases are
/// RBJ > WAL > X-FTL for the same logical work.
#[test]
fn device_write_amplification_ordering() {
    let mut programs = Vec::new();
    let mut erases = Vec::new();
    for mode in [Mode::Rbj, Mode::Wal, Mode::XFtl] {
        let r = rig(mode);
        let mut db = r.open_db("s.db");
        synthetic::load_partsupply(&mut db, &small_syn()).unwrap();
        db.reset_stats();
        r.reset_stats();
        synthetic::run_transactions(&mut db, &r.clock, &small_syn()).unwrap();
        drop(db);
        let snap = r.snapshot();
        programs.push(snap.flash.programs);
        erases.push(snap.flash.erases);
    }
    assert!(
        programs[0] > programs[1] && programs[1] > programs[2],
        "programs {programs:?}"
    );
    assert!(
        erases[0] >= erases[1] && erases[1] >= erases[2],
        "erases {erases:?}"
    );
}

/// The paper's lifespan claim: X-FTL roughly halves total flash writes
/// relative to WAL mode.
#[test]
fn xftl_halves_write_volume_vs_wal() {
    let snap_for = |mode: Mode| {
        let r = rig(mode);
        let mut db = r.open_db("s.db");
        synthetic::load_partsupply(&mut db, &small_syn()).unwrap();
        db.reset_stats();
        r.reset_stats();
        synthetic::run_transactions(&mut db, &r.clock, &small_syn()).unwrap();
        drop(db);
        r.snapshot().flash.programs
    };
    let wal = snap_for(Mode::Wal);
    let x = snap_for(Mode::XFtl);
    let ratio = wal as f64 / x as f64;
    assert!(ratio > 1.6, "WAL/X-FTL flash write ratio {ratio} below ~2x");
}

/// Figure 8's FS-level ordering under the FIO workload.
#[test]
fn fio_mode_ordering() {
    let cfg = FioConfig {
        jobs: 1,
        file_bytes: 8 * 1024 * 1024,
        writes_per_fsync: 5,
        duration_secs: 3,
        seed: 3,
        queue_depth: 1,
    };
    let x = fio::run(&rig(Mode::XFtl), &cfg).iops;
    let ordered = fio::run(&rig(Mode::Wal), &cfg).iops;
    let full_rig = Rig::build(RigConfig {
        blocks: 80,
        logical_pages: 6_000,
        fs_mode_override: Some(xftl_fs::JournalMode::Full),
        ..RigConfig::small(Mode::Rbj)
    });
    let full = fio::run(&full_rig, &cfg).iops;
    assert!(x > ordered, "X-FTL {x} <= ordered {ordered}");
    assert!(ordered > full, "ordered {ordered} <= full {full}");
    // Paper: 67-99% over ordered, 240-254% over full.
    assert!(
        x / ordered > 1.3,
        "X-FTL/ordered gain {:.2} too small",
        x / ordered
    );
    assert!(x / full > 1.8, "X-FTL/full gain {:.2} too small", x / full);
}

/// Table 5's ordering: X-FTL restarts much faster than RBJ, which is
/// faster than WAL (whose log replay dominates).
#[test]
fn recovery_time_ordering() {
    use xftl_bench_shim::recovery;
    let rbj = recovery(Mode::Rbj);
    let wal = recovery(Mode::Wal);
    let x = recovery(Mode::XFtl);
    assert!(x < rbj, "X-FTL restart {x} >= RBJ {rbj}");
    assert!(rbj < wal, "RBJ restart {rbj} >= WAL {wal}");
}

/// Minimal re-implementation of the Table 5 measurement without pulling
/// the bench crate in as a dependency.
mod xftl_bench_shim {
    use super::*;
    use xftl_core::XFtl;
    use xftl_ftl::{PageMappedFtl, SataLink};
    use xftl_workloads::rig::{link_for, AnyDev, Rig as WRig};

    pub fn recovery(mode: Mode) -> u64 {
        let r = rig(mode);
        {
            let mut db = r.open_db("s.db");
            synthetic::load_partsupply(&mut db, &small_syn()).unwrap();
            synthetic::run_transactions(&mut db, &r.clock, &small_syn()).unwrap();
            db.pager_mut().set_cache_capacity(4);
            db.execute("BEGIN").unwrap();
            for i in 0..10i64 {
                db.execute_with(
                    "UPDATE partsupp SET ps_supplycost = 0.5 WHERE ps_id = ?",
                    &[Value::Int(i * 13 + 1)],
                )
                .unwrap();
            }
            // crash without commit
        }
        // Mode-specific restart work: the X-L2P fold inside the device for
        // X-FTL, the database open (journal rollback / WAL scan) otherwise.
        let (fs, clock, cfg) = r.teardown();
        let (dev, device_restart_ns) = match fs.into_device() {
            AnyDev::Plain(link) => {
                let d = PageMappedFtl::recover(link.into_inner().into_chip()).unwrap();
                (
                    AnyDev::Plain(SataLink::new(d, link_for(cfg.profile), clock.clone())),
                    0,
                )
            }
            AnyDev::X(link) => {
                let (d, breakdown) =
                    XFtl::recover_with_breakdown(link.into_inner().into_chip(), cfg.xl2p_capacity)
                        .unwrap();
                (
                    AnyDev::X(SataLink::new(d, link_for(cfg.profile), clock.clone())),
                    breakdown.xl2p_ns,
                )
            }
            AnyDev::AtomicW(_) => unreachable!(),
        };
        let rig2 = WRig::reassemble(dev, clock, cfg);
        let t0 = rig2.clock.now();
        let _db = rig2.open_db("s.db");
        let open_ns = rig2.clock.now() - t0;
        device_restart_ns + open_ns
    }
}

/// TPC-C write-intensive: X-FTL clearly ahead of WAL (paper: ~2.3x).
#[test]
fn tpcc_write_intensive_gap() {
    let scale = TpccScale {
        warehouses: 1,
        districts_per_warehouse: 4,
        customers_per_district: 10,
        items: 200,
        initial_orders: 10,
    };
    let tpm_for = |mode: Mode| {
        let r = Rig::build(RigConfig {
            blocks: 96,
            logical_pages: 8_000,
            ..RigConfig::small(mode)
        });
        let mut db = r.open_db("tpcc.db");
        tpcc::load(&mut db, &scale, 5);
        let mut driver = TpccDriver::new(scale, 6).with_clock(r.clock.clone());
        tpcc::run_mix(&mut db, &r.clock, &mut driver, &WRITE_INTENSIVE, 60).tpm
    };
    let wal = tpm_for(Mode::Wal);
    let x = tpm_for(Mode::XFtl);
    assert!(
        x / wal > 1.5,
        "X-FTL/WAL tpm ratio {:.2} too small",
        x / wal
    );
}

/// The full stack works after crash + recovery in all three modes, with
/// several databases on one volume (the multi-file case of §4.3).
#[test]
fn multi_database_crash_recovery() {
    for mode in [Mode::Rbj, Mode::Wal, Mode::XFtl] {
        let r = rig(mode);
        {
            let mut a = r.open_db("a.db");
            let mut b = r.open_db("b.db");
            a.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
                .unwrap();
            b.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, w INT)")
                .unwrap();
            a.execute("INSERT INTO t (v) VALUES ('alpha'), ('beta')")
                .unwrap();
            b.execute("INSERT INTO u (w) VALUES (1), (2), (3)").unwrap();
        }
        let (r2, _) = r.crash_and_recover();
        let mut a = r2.open_db("a.db");
        let mut b = r2.open_db("b.db");
        assert_eq!(
            a.query("SELECT COUNT(*) FROM t").unwrap()[0][0],
            Value::Int(2),
            "{mode:?}"
        );
        assert_eq!(
            b.query("SELECT COUNT(*) FROM u").unwrap()[0][0],
            Value::Int(3),
            "{mode:?}"
        );
    }
}

/// Full-stack shadow run: SQL transactions through the FS and X-FTL with
/// the shadow oracle wrapped around the device. Every page the stack
/// reads — B-tree nodes, inodes, data — is checked against the reference
/// model as it streams by, and a crash + recovery must reproduce exactly
/// the committed image (rolled-back SQL batches and all). The chip also
/// runs a seeded background NAND fault process (program/erase failures,
/// bit-flips, all at or above the 1e-3/op floor): the FTL's retry and
/// bad-block machinery must keep every fault invisible to the SQL layer.
#[cfg(feature = "verify")]
#[test]
fn full_stack_runs_green_under_shadow_oracle() {
    use std::cell::RefCell;
    use std::rc::Rc;
    use xftl_core::XFtl;
    use xftl_db::{Connection, DbJournalMode};
    use xftl_flash::{FaultPlan, FlashChip, FlashConfig, SimClock};
    use xftl_fs::{FileSystem, FsConfig, JournalMode};
    use xftl_verify::ShadowDevice;

    let mut chip = FlashChip::new(FlashConfig::tiny(300), SimClock::new());
    chip.set_fault_plan(FaultPlan::background(0x57AC_FA17, 2e-3, 2e-3, 2e-2, 1e-3));
    let dev = ShadowDevice::new(XFtl::format(chip, 2_200).unwrap());
    let fs = FileSystem::mkfs_tx(
        dev,
        JournalMode::Off,
        FsConfig {
            inode_count: 16,
            journal_pages: 32,
            cache_pages: 256,
        },
    )
    .unwrap();
    let fs = Rc::new(RefCell::new(fs));
    let mut db = Connection::open(Rc::clone(&fs), "shadow.db", DbJournalMode::Off).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .unwrap();
    // Every third batch rolls back; only the rest may surface later.
    for batch in 0..10i64 {
        db.execute("BEGIN").unwrap();
        for k in 0..5i64 {
            db.execute_with(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(batch * 5 + k), Value::Int(k)],
            )
            .unwrap();
        }
        if batch % 3 == 2 {
            db.execute("ROLLBACK").unwrap();
        } else {
            db.execute("COMMIT").unwrap();
        }
    }
    let rows = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rows[0][0].as_i64().unwrap(), 35, "7 committed batches of 5");

    // Crash, recover, resume the oracle, sweep the committed image.
    drop(db);
    let fs_inner = Rc::try_unwrap(fs).unwrap().into_inner();
    let (ftl, model) = fs_inner.into_device().into_parts();
    let mut chip = ftl.into_chip();
    chip.power_cycle();
    let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
    assert!(dev.verify_recovered() > 0);
    dev.audit();

    let fs = Rc::new(RefCell::new(
        FileSystem::mount_tx(dev, JournalMode::Off, 256).unwrap(),
    ));
    let mut db = Connection::open(Rc::clone(&fs), "shadow.db", DbJournalMode::Off).unwrap();
    let rows = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rows[0][0].as_i64().unwrap(), 35, "committed image survived");
    drop(db);
    // The FS page cache absorbs most reads; the checks that do reach the
    // device include the post-recovery durability sweep of every tracked
    // page plus the remount's metadata reads.
    let checked = fs.borrow().device().model().checked_reads();
    assert!(
        checked > 20,
        "oracle must have checked the stack's reads, got {checked}"
    );
}
