//! Deterministic fault-schedule matrix: every NAND fault kind (program
//! failure, erase failure, correctable bit-flips, uncorrectable ECC
//! bursts) crossed with every injection point (user write, GC copy-back,
//! the commit-time X-L2P flush, recovery replay). The FTL's retry and
//! bad-block machinery must make each cell invisible to the host:
//! committed transactions survive, aborted transactions stay invisible,
//! and plain writes keep their last acknowledged value.
//!
//! All randomness flows from the workspace `simrand` shim through a
//! [`FaultPlan`] seeded by `XFTL_FAULT_SEED` (default fixed), so each cell
//! replays the identical schedule in CI. Under `--features verify` the
//! whole matrix additionally runs behind the shadow oracle with a
//! flash-physics audit after recovery.

// Test/demo code: unwrap/expect on a setup failure is the right failure
// mode here; clippy.toml's `allow-unwrap-in-tests` only covers `#[test]`
// fns, not the shared helpers, so the allow is restated file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use xftl_core::XFtl;
use xftl_flash::{
    AgingModel, FaultKind, FaultPlan, FaultTrigger, FlashChip, FlashConfig, SimClock,
};
use xftl_ftl::{BlockDevice, DevError, DeviceState, ScrubConfig, ScrubReason, TxBlockDevice};
#[cfg(feature = "verify")]
use xftl_verify::ShadowDevice;

const BLOCKS: usize = 24;
const LOGICAL: u64 = 48;

/// Seed for every fault plan in this file; override with
/// `XFTL_FAULT_SEED=<n>` to replay a different deterministic schedule.
fn fault_seed() -> u64 {
    std::env::var("XFTL_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA17_B10C)
}

// --- verify wiring ------------------------------------------------------

#[cfg(feature = "verify")]
type Dev = ShadowDevice<XFtl>;
#[cfg(not(feature = "verify"))]
type Dev = XFtl;

fn wrap(d: XFtl) -> Dev {
    #[cfg(feature = "verify")]
    {
        ShadowDevice::new(d)
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

fn ftl(d: &Dev) -> &XFtl {
    #[cfg(feature = "verify")]
    {
        d.inner()
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

fn ftl_mut(d: &mut Dev) -> &mut XFtl {
    #[cfg(feature = "verify")]
    {
        d.inner_mut()
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

/// Power-cycles and recovers the device; `arm` may install a fault plan on
/// the cold chip so the faults hit recovery's own replay reads/writes.
/// Under `verify` the oracle model rides across the cycle, sweeps the
/// committed image, and audits the flash metadata.
fn power_cycle_and_recover(d: Dev, arm: Option<FaultPlan>) -> Dev {
    #[cfg(feature = "verify")]
    {
        let (inner, model) = d.into_parts();
        let mut chip = inner.into_chip();
        chip.power_cycle();
        if let Some(plan) = arm {
            chip.set_fault_plan(plan);
        }
        let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
        dev.verify_recovered();
        dev.audit();
        dev
    }
    #[cfg(not(feature = "verify"))]
    {
        let mut chip = d.into_chip();
        chip.power_cycle();
        if let Some(plan) = arm {
            chip.set_fault_plan(plan);
        }
        XFtl::recover(chip).unwrap()
    }
}

/// Where in the schedule the fault trigger is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InjectAt {
    /// Right before a batch of plain host writes.
    UserWrite,
    /// Right before churn that forces garbage collection (the trigger's
    /// first matching op is a GC copy-back read/program or victim erase).
    GcCopy,
    /// Right before `commit`, whose first flash programs persist the
    /// X-L2P table and the checkpoint root.
    CommitFlush,
    /// On the cold chip before `recover`, so the trigger's first matching
    /// op belongs to the recovery scan/replay (or, for op classes recovery
    /// never issues outside the fault-exempt meta ring, to the
    /// post-recovery traffic).
    RecoveryReplay,
}

fn plan_for(kind: FaultKind) -> FaultPlan {
    FaultPlan::new(fault_seed()).trigger(FaultTrigger::new(kind))
}

fn arm(dev: &mut Dev, kind: FaultKind) {
    ftl_mut(dev)
        .base_mut()
        .chip_mut()
        .set_fault_plan(plan_for(kind));
}

/// One matrix cell: runs the fixed schedule with `kind` armed at `point`
/// and proves the host-visible contract held.
fn run_cell(kind: FaultKind, point: InjectAt) {
    let ctx = format!("cell ({kind:?}, {point:?})");
    let clock = SimClock::new();
    let chip = FlashChip::new(FlashConfig::tiny(BLOCKS), clock);
    let mut dev = wrap(XFtl::format(chip, LOGICAL).unwrap());
    let ps = dev.page_size();
    // Expected committed value of lpns 0..16, maintained alongside writes.
    let mut expect = vec![0u8; 16];
    let write_plain = |dev: &mut Dev, expect: &mut Vec<u8>, lpn: u64, fill: u8| {
        dev.write(lpn, &vec![fill; ps]).unwrap();
        expect[lpn as usize] = fill;
    };

    // Phase A: baseline image.
    for lpn in 0..16u64 {
        write_plain(&mut dev, &mut expect, lpn, 1);
    }
    dev.flush().unwrap();

    // Phase B: plain host writes — the UserWrite injection point.
    if point == InjectAt::UserWrite {
        arm(&mut dev, kind);
    }
    for lpn in 0..8u64 {
        write_plain(&mut dev, &mut expect, lpn, 2);
    }

    // Phase C: two transactions; tid 7 commits (through the X-L2P flush),
    // tid 8 aborts and must stay invisible forever.
    for lpn in 0..4u64 {
        dev.write_tx(7, lpn, &vec![3u8; ps]).unwrap();
    }
    for lpn in 4..8u64 {
        dev.write_tx(8, lpn, &vec![4u8; ps]).unwrap();
    }
    if point == InjectAt::CommitFlush {
        arm(&mut dev, kind);
    }
    dev.commit(7).unwrap();
    for lpn in 0..4u64 {
        expect[lpn as usize] = 3;
    }
    dev.abort(8).unwrap();

    // Phase D: churn far beyond physical capacity to force GC — the GcCopy
    // injection point. Any still-pending erase/program trigger from an
    // earlier point also fires here at the latest.
    if point == InjectAt::GcCopy {
        arm(&mut dev, kind);
    }
    for i in 0..600u64 {
        let lpn = 8 + (i % 8);
        write_plain(&mut dev, &mut expect, lpn, (i % 200) as u8);
    }
    assert!(ftl(&dev).base().stats().gc_runs > 0, "{ctx}: GC never ran");
    dev.flush().unwrap();

    // Crash and recover — the RecoveryReplay injection point arms the
    // cold chip so the trigger sees recovery's own slab/X-L2P reads and
    // checkpoint writes first.
    let recovery_plan = (point == InjectAt::RecoveryReplay).then(|| plan_for(kind));
    let mut dev = power_cycle_and_recover(dev, recovery_plan);

    // Post-recovery traffic: catches triggers whose op class recovery
    // never issued (e.g. an erase fault armed for replay), and proves the
    // recovered device still writes/GCs correctly.
    for i in 0..200u64 {
        let lpn = 8 + (i % 8);
        write_plain(&mut dev, &mut expect, lpn, 20 + (i % 100) as u8);
    }

    // The host-visible contract: committed transaction applied in full,
    // aborted transaction invisible, plain writes at their last value.
    let mut buf = vec![0u8; ps];
    for lpn in 0..16u64 {
        dev.read(lpn, &mut buf).unwrap();
        assert_eq!(
            buf[0], expect[lpn as usize],
            "{ctx}: lpn {lpn} lost its committed value"
        );
        assert!(
            buf.iter().all(|&b| b == buf[0]),
            "{ctx}: lpn {lpn} holds a torn page"
        );
    }
    // Aborted tid 8 wrote fill 4 over lpns 4..8; committed state there is
    // the phase-B fill 2 — checked above via `expect`, restated for the
    // matrix's headline claim:
    for lpn in 4..8u64 {
        assert_eq!(expect[lpn as usize], 2, "{ctx}: aborted tx leaked");
    }
    // Every cell must actually have injected its fault: the one-shot
    // trigger is consumed by the end of the schedule.
    let chip = ftl(&dev).base().chip();
    let pending = chip.fault_plan().map_or(0, FaultPlan::pending_triggers);
    assert_eq!(pending, 0, "{ctx}: fault trigger never fired");
    if matches!(kind, FaultKind::EraseFail) {
        assert_eq!(chip.retired_blocks().len(), 1, "{ctx}: no block retired");
        assert!(ftl(&dev).base().is_bad_block(chip.retired_blocks()[0]));
    }
    #[cfg(feature = "verify")]
    dev.audit();
}

const KINDS: [FaultKind; 4] = [
    FaultKind::ProgramFail,
    FaultKind::EraseFail,
    FaultKind::ReadFlips(2),  // within ECC strength: corrected in place
    FaultKind::ReadFlips(64), // beyond ECC strength: uncorrectable, re-read
];

#[test]
fn fault_matrix_user_write() {
    for kind in KINDS {
        run_cell(kind, InjectAt::UserWrite);
    }
}

#[test]
fn fault_matrix_gc_copy() {
    for kind in KINDS {
        run_cell(kind, InjectAt::GcCopy);
    }
}

#[test]
fn fault_matrix_commit_flush() {
    for kind in KINDS {
        run_cell(kind, InjectAt::CommitFlush);
    }
}

#[test]
fn fault_matrix_recovery_replay() {
    for kind in KINDS {
        run_cell(kind, InjectAt::RecoveryReplay);
    }
}

/// Read-disturb endurance cell: an aging model with a low disturb
/// threshold hammers one hot page toward the uncorrectable cliff. With
/// the background scrubber enabled the at-risk block is relocated before
/// its flip count crosses the ECC budget and every read of the committed
/// value succeeds; returns whether the page was lost so the ablation
/// below can pin the scrubber's causal role.
fn run_read_disturb_cell(scrubbed: bool) -> bool {
    let ctx = format!("read-disturb cell (scrubbed: {scrubbed})");
    let clock = SimClock::new();
    let mut chip = FlashChip::new(FlashConfig::tiny(BLOCKS), clock);
    // Flips start 300 reads in, one more every 30 reads: past the 8-bit
    // ECC budget (uncorrectable) from read 570 of the same page.
    chip.set_fault_plan(FaultPlan::new(fault_seed()).aging(AgingModel {
        read_disturb_threshold: 300,
        reads_per_flip: 30,
        ..AgingModel::inert()
    }));
    let mut dev = wrap(XFtl::format(chip, LOGICAL).unwrap());
    if scrubbed {
        ftl_mut(&mut dev)
            .base_mut()
            .set_scrub_config(Some(ScrubConfig {
                read_threshold: 150,
                interval_ops: 4,
                ..ScrubConfig::default()
            }));
    }
    let ps = dev.page_size();

    // Commit the value under threat through a real transaction, so the
    // cell's claim is about acked commits, not scratch data.
    for lpn in 0..8u64 {
        dev.write_tx(5, lpn, &vec![7u8; ps]).unwrap();
    }
    dev.commit(5).unwrap();

    // Hammer lpn 0; background writes every few reads give the GC tick
    // (which hosts the scrub tick) a chance to run.
    let mut buf = vec![0u8; ps];
    let mut lost = false;
    for i in 0..4000u64 {
        match dev.read(0, &mut buf) {
            Ok(()) => assert_eq!(buf[0], 7, "{ctx}: committed value changed"),
            Err(e) => {
                assert!(!scrubbed, "{ctx}: scrubbed read failed: {e:?}");
                lost = true;
                break;
            }
        }
        if i % 4 == 0 {
            let fill = (i % 100) as u8;
            dev.write(8 + (i / 4) % 8, &vec![fill; ps]).unwrap();
        }
    }

    if scrubbed {
        let base = ftl(&dev).base();
        assert!(base.stats().scrub_runs > 0, "{ctx}: scrubber never ran");
        assert_eq!(
            base.last_scrub().map(|(_, r)| r),
            Some(ScrubReason::ReadDisturb),
            "{ctx}: wrong scrub reason"
        );
        assert_eq!(
            base.flash_stats().aging_uncorrectable,
            0,
            "{ctx}: a read crossed the ECC budget despite the scrubber"
        );
        // The whole committed image survived the hammering.
        for lpn in 0..8u64 {
            dev.read(lpn, &mut buf).unwrap();
            assert_eq!(buf[0], 7, "{ctx}: lpn {lpn} lost its committed value");
        }
        #[cfg(feature = "verify")]
        dev.audit();
        let mut dev = power_cycle_and_recover(dev, None);
        for lpn in 0..8u64 {
            dev.read(lpn, &mut buf).unwrap();
            assert_eq!(buf[0], 7, "{ctx}: lpn {lpn} lost after power cycle");
        }
    } else {
        assert!(
            ftl(&dev).base().flash_stats().aging_uncorrectable > 0,
            "{ctx}: the unscrubbed ablation never hit the cliff"
        );
    }
    lost
}

#[test]
fn fault_matrix_read_disturb_scrubbed_survives() {
    assert!(!run_read_disturb_cell(true));
}

#[test]
fn fault_matrix_read_disturb_unscrubbed_loses_data() {
    // The identical schedule without the scrubber loses the page: the
    // scrubbed cell above survives *because of* the scrubber, not because
    // the schedule was gentle.
    assert!(run_read_disturb_cell(false));
}

/// End-of-life cell: sticky erase failures retire every GC victim until
/// the device walks Healthy → Degraded → ReadOnly. The contract at the
/// cliff edge: no panic, writes fail with `DevError::ReadOnly`, and every
/// commit acked before the transition stays readable — through the
/// transition and across a power cycle (oracle-swept under `verify`).
#[test]
fn fault_matrix_end_of_life_read_only() {
    let clock = SimClock::new();
    let chip = FlashChip::new(FlashConfig::tiny(BLOCKS), clock);
    let mut dev = wrap(XFtl::format(chip, LOGICAL).unwrap());
    let ps = dev.page_size();

    // Acked state established while healthy: a committed transaction and
    // a flushed plain image.
    for lpn in 0..8u64 {
        dev.write(lpn, &vec![1u8; ps]).unwrap();
    }
    for lpn in 0..4u64 {
        dev.write_tx(5, lpn, &vec![3u8; ps]).unwrap();
    }
    dev.commit(5).unwrap();
    dev.flush().unwrap();
    let expect = |lpn: u64| if lpn < 4 { 3u8 } else { 1u8 };

    // A transaction left open across the transition: its commit must be
    // refused at submit time, not half-applied.
    dev.write_tx(9, 6, &vec![9u8; ps]).unwrap();

    // Now every erase fails, so each GC cycle retires its victim: the
    // pool drains block by block into the bad-block table.
    ftl_mut(&mut dev).base_mut().chip_mut().set_fault_plan(
        FaultPlan::new(fault_seed()).trigger(FaultTrigger::new(FaultKind::EraseFail).sticky()),
    );
    let mut final_err = None;
    for i in 0..20_000u64 {
        let fill = (i % 100) as u8;
        match dev.write(8 + (i % 8), &vec![fill; ps]) {
            Ok(()) => {}
            Err(e) => {
                final_err = Some(e);
                break;
            }
        }
    }
    assert_eq!(
        final_err,
        Some(DevError::ReadOnly),
        "wrong end-of-life error"
    );
    let base = ftl(&dev).base();
    assert_eq!(base.device_state(), DeviceState::ReadOnly);
    assert!(base.stats().degraded_entries > 0, "skipped Degraded");

    // Writes and commits are refused; the open transaction is refused
    // cleanly at submit time.
    assert_eq!(
        dev.write(0, &vec![0xEE; ps]),
        Err(DevError::ReadOnly),
        "plain write accepted on a read-only device"
    );
    assert_eq!(
        dev.commit_submit(9).map(|_| ()),
        Err(DevError::ReadOnly),
        "commit accepted on a read-only device"
    );

    // Every acked commit is still readable at the cliff edge.
    let mut buf = vec![0u8; ps];
    for lpn in 0..8u64 {
        dev.read(lpn, &mut buf).unwrap();
        assert_eq!(buf[0], expect(lpn), "lpn {lpn} lost at transition");
    }
    #[cfg(feature = "verify")]
    {
        dev.verify_recovered();
        dev.audit();
    }

    // ... and across a power cycle: recovery succeeds on a read-only
    // device and the persisted state holds.
    let mut dev = power_cycle_and_recover(dev, None);
    assert_eq!(ftl(&dev).base().device_state(), DeviceState::ReadOnly);
    for lpn in 0..8u64 {
        dev.read(lpn, &mut buf).unwrap();
        assert_eq!(buf[0], expect(lpn), "lpn {lpn} lost across power cycle");
    }
    assert_eq!(
        dev.write(0, &vec![0xEE; ps]),
        Err(DevError::ReadOnly),
        "recovered device forgot it was read-only"
    );
}

/// The whole matrix at once: background rates for every fault class at or
/// above the 1e-3/op acceptance floor run across the entire schedule,
/// including recovery, instead of single targeted triggers.
#[test]
fn fault_soak_background_rates() {
    let clock = SimClock::new();
    let chip = FlashChip::new(FlashConfig::tiny(BLOCKS), clock);
    let mut dev = wrap(XFtl::format(chip, LOGICAL).unwrap());
    let ps = dev.page_size();
    let plan = || {
        FaultPlan::background(
            fault_seed(),
            1e-2, // program-status failures
            5e-3, // erase failures
            5e-2, // correctable bit-flips
            2e-3, // uncorrectable ECC bursts
        )
    };
    ftl_mut(&mut dev)
        .base_mut()
        .chip_mut()
        .set_fault_plan(plan());
    let mut expect = [0u8; 16];
    let mut buf = vec![0u8; ps];
    for lpn in 0..16u64 {
        dev.write(lpn, &vec![1u8; ps]).unwrap();
        expect[lpn as usize] = 1;
    }
    for round in 0..5u64 {
        for lpn in 0..4u64 {
            dev.write_tx(10 + round, lpn, &vec![30 + round as u8; ps])
                .unwrap();
        }
        if round % 2 == 0 {
            dev.commit(10 + round).unwrap();
            for lpn in 0..4u64 {
                expect[lpn as usize] = 30 + round as u8;
            }
        } else {
            dev.abort(10 + round).unwrap();
        }
        for i in 0..200u64 {
            let lpn = 8 + (i % 8);
            let fill = (round * 7 + i % 97) as u8;
            dev.write(lpn, &vec![fill; ps]).unwrap();
            expect[lpn as usize] = fill;
        }
        // Read traffic each round, so the bit-flip processes get pages to
        // chew on (this workload's GC victims are pure garbage, so GC
        // alone issues almost no reads). Several sweeps per round keep
        // the flip-count expectation high enough (~20) that the
        // "correctable flips fired" assertion below holds for any seed,
        // not just the default one.
        for sweep in 0..4u64 {
            for lpn in 0..16u64 {
                dev.read(lpn, &mut buf).unwrap();
                assert_eq!(
                    buf[0], expect[lpn as usize],
                    "round {round} sweep {sweep}: lpn {lpn}"
                );
            }
        }
    }
    dev.flush().unwrap();
    let flash = ftl(&dev).base().flash_stats();
    assert!(flash.program_fails > 0, "program faults never fired");
    assert!(flash.corrected_reads > 0, "correctable flips never fired");
    let mut dev = power_cycle_and_recover(dev, Some(plan()));
    for lpn in 0..16u64 {
        dev.read(lpn, &mut buf).unwrap();
        assert_eq!(buf[0], expect[lpn as usize], "lpn {lpn} corrupted");
    }
    #[cfg(feature = "verify")]
    dev.audit();
}
