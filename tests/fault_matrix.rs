//! Deterministic fault-schedule matrix: every NAND fault kind (program
//! failure, erase failure, correctable bit-flips, uncorrectable ECC
//! bursts) crossed with every injection point (user write, GC copy-back,
//! the commit-time X-L2P flush, recovery replay). The FTL's retry and
//! bad-block machinery must make each cell invisible to the host:
//! committed transactions survive, aborted transactions stay invisible,
//! and plain writes keep their last acknowledged value.
//!
//! All randomness flows from the workspace `simrand` shim through a
//! [`FaultPlan`] seeded by `XFTL_FAULT_SEED` (default fixed), so each cell
//! replays the identical schedule in CI. Under `--features verify` the
//! whole matrix additionally runs behind the shadow oracle with a
//! flash-physics audit after recovery.

// Test/demo code: unwrap/expect on a setup failure is the right failure
// mode here; clippy.toml's `allow-unwrap-in-tests` only covers `#[test]`
// fns, not the shared helpers, so the allow is restated file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use xftl_core::XFtl;
use xftl_flash::{FaultKind, FaultPlan, FaultTrigger, FlashChip, FlashConfig, SimClock};
use xftl_ftl::{BlockDevice, TxBlockDevice};
#[cfg(feature = "verify")]
use xftl_verify::ShadowDevice;

const BLOCKS: usize = 24;
const LOGICAL: u64 = 48;

/// Seed for every fault plan in this file; override with
/// `XFTL_FAULT_SEED=<n>` to replay a different deterministic schedule.
fn fault_seed() -> u64 {
    std::env::var("XFTL_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA17_B10C)
}

// --- verify wiring ------------------------------------------------------

#[cfg(feature = "verify")]
type Dev = ShadowDevice<XFtl>;
#[cfg(not(feature = "verify"))]
type Dev = XFtl;

fn wrap(d: XFtl) -> Dev {
    #[cfg(feature = "verify")]
    {
        ShadowDevice::new(d)
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

fn ftl(d: &Dev) -> &XFtl {
    #[cfg(feature = "verify")]
    {
        d.inner()
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

fn ftl_mut(d: &mut Dev) -> &mut XFtl {
    #[cfg(feature = "verify")]
    {
        d.inner_mut()
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

/// Power-cycles and recovers the device; `arm` may install a fault plan on
/// the cold chip so the faults hit recovery's own replay reads/writes.
/// Under `verify` the oracle model rides across the cycle, sweeps the
/// committed image, and audits the flash metadata.
fn power_cycle_and_recover(d: Dev, arm: Option<FaultPlan>) -> Dev {
    #[cfg(feature = "verify")]
    {
        let (inner, model) = d.into_parts();
        let mut chip = inner.into_chip();
        chip.power_cycle();
        if let Some(plan) = arm {
            chip.set_fault_plan(plan);
        }
        let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
        dev.verify_recovered();
        dev.audit();
        dev
    }
    #[cfg(not(feature = "verify"))]
    {
        let mut chip = d.into_chip();
        chip.power_cycle();
        if let Some(plan) = arm {
            chip.set_fault_plan(plan);
        }
        XFtl::recover(chip).unwrap()
    }
}

/// Where in the schedule the fault trigger is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InjectAt {
    /// Right before a batch of plain host writes.
    UserWrite,
    /// Right before churn that forces garbage collection (the trigger's
    /// first matching op is a GC copy-back read/program or victim erase).
    GcCopy,
    /// Right before `commit`, whose first flash programs persist the
    /// X-L2P table and the checkpoint root.
    CommitFlush,
    /// On the cold chip before `recover`, so the trigger's first matching
    /// op belongs to the recovery scan/replay (or, for op classes recovery
    /// never issues outside the fault-exempt meta ring, to the
    /// post-recovery traffic).
    RecoveryReplay,
}

fn plan_for(kind: FaultKind) -> FaultPlan {
    FaultPlan::new(fault_seed()).trigger(FaultTrigger::new(kind))
}

fn arm(dev: &mut Dev, kind: FaultKind) {
    ftl_mut(dev)
        .base_mut()
        .chip_mut()
        .set_fault_plan(plan_for(kind));
}

/// One matrix cell: runs the fixed schedule with `kind` armed at `point`
/// and proves the host-visible contract held.
fn run_cell(kind: FaultKind, point: InjectAt) {
    let ctx = format!("cell ({kind:?}, {point:?})");
    let clock = SimClock::new();
    let chip = FlashChip::new(FlashConfig::tiny(BLOCKS), clock);
    let mut dev = wrap(XFtl::format(chip, LOGICAL).unwrap());
    let ps = dev.page_size();
    // Expected committed value of lpns 0..16, maintained alongside writes.
    let mut expect = vec![0u8; 16];
    let write_plain = |dev: &mut Dev, expect: &mut Vec<u8>, lpn: u64, fill: u8| {
        dev.write(lpn, &vec![fill; ps]).unwrap();
        expect[lpn as usize] = fill;
    };

    // Phase A: baseline image.
    for lpn in 0..16u64 {
        write_plain(&mut dev, &mut expect, lpn, 1);
    }
    dev.flush().unwrap();

    // Phase B: plain host writes — the UserWrite injection point.
    if point == InjectAt::UserWrite {
        arm(&mut dev, kind);
    }
    for lpn in 0..8u64 {
        write_plain(&mut dev, &mut expect, lpn, 2);
    }

    // Phase C: two transactions; tid 7 commits (through the X-L2P flush),
    // tid 8 aborts and must stay invisible forever.
    for lpn in 0..4u64 {
        dev.write_tx(7, lpn, &vec![3u8; ps]).unwrap();
    }
    for lpn in 4..8u64 {
        dev.write_tx(8, lpn, &vec![4u8; ps]).unwrap();
    }
    if point == InjectAt::CommitFlush {
        arm(&mut dev, kind);
    }
    dev.commit(7).unwrap();
    for lpn in 0..4u64 {
        expect[lpn as usize] = 3;
    }
    dev.abort(8).unwrap();

    // Phase D: churn far beyond physical capacity to force GC — the GcCopy
    // injection point. Any still-pending erase/program trigger from an
    // earlier point also fires here at the latest.
    if point == InjectAt::GcCopy {
        arm(&mut dev, kind);
    }
    for i in 0..600u64 {
        let lpn = 8 + (i % 8);
        write_plain(&mut dev, &mut expect, lpn, (i % 200) as u8);
    }
    assert!(ftl(&dev).base().stats().gc_runs > 0, "{ctx}: GC never ran");
    dev.flush().unwrap();

    // Crash and recover — the RecoveryReplay injection point arms the
    // cold chip so the trigger sees recovery's own slab/X-L2P reads and
    // checkpoint writes first.
    let recovery_plan = (point == InjectAt::RecoveryReplay).then(|| plan_for(kind));
    let mut dev = power_cycle_and_recover(dev, recovery_plan);

    // Post-recovery traffic: catches triggers whose op class recovery
    // never issued (e.g. an erase fault armed for replay), and proves the
    // recovered device still writes/GCs correctly.
    for i in 0..200u64 {
        let lpn = 8 + (i % 8);
        write_plain(&mut dev, &mut expect, lpn, 20 + (i % 100) as u8);
    }

    // The host-visible contract: committed transaction applied in full,
    // aborted transaction invisible, plain writes at their last value.
    let mut buf = vec![0u8; ps];
    for lpn in 0..16u64 {
        dev.read(lpn, &mut buf).unwrap();
        assert_eq!(
            buf[0], expect[lpn as usize],
            "{ctx}: lpn {lpn} lost its committed value"
        );
        assert!(
            buf.iter().all(|&b| b == buf[0]),
            "{ctx}: lpn {lpn} holds a torn page"
        );
    }
    // Aborted tid 8 wrote fill 4 over lpns 4..8; committed state there is
    // the phase-B fill 2 — checked above via `expect`, restated for the
    // matrix's headline claim:
    for lpn in 4..8u64 {
        assert_eq!(expect[lpn as usize], 2, "{ctx}: aborted tx leaked");
    }
    // Every cell must actually have injected its fault: the one-shot
    // trigger is consumed by the end of the schedule.
    let chip = ftl(&dev).base().chip();
    let pending = chip.fault_plan().map_or(0, FaultPlan::pending_triggers);
    assert_eq!(pending, 0, "{ctx}: fault trigger never fired");
    if matches!(kind, FaultKind::EraseFail) {
        assert_eq!(chip.retired_blocks().len(), 1, "{ctx}: no block retired");
        assert!(ftl(&dev).base().is_bad_block(chip.retired_blocks()[0]));
    }
    #[cfg(feature = "verify")]
    dev.audit();
}

const KINDS: [FaultKind; 4] = [
    FaultKind::ProgramFail,
    FaultKind::EraseFail,
    FaultKind::ReadFlips(2),  // within ECC strength: corrected in place
    FaultKind::ReadFlips(64), // beyond ECC strength: uncorrectable, re-read
];

#[test]
fn fault_matrix_user_write() {
    for kind in KINDS {
        run_cell(kind, InjectAt::UserWrite);
    }
}

#[test]
fn fault_matrix_gc_copy() {
    for kind in KINDS {
        run_cell(kind, InjectAt::GcCopy);
    }
}

#[test]
fn fault_matrix_commit_flush() {
    for kind in KINDS {
        run_cell(kind, InjectAt::CommitFlush);
    }
}

#[test]
fn fault_matrix_recovery_replay() {
    for kind in KINDS {
        run_cell(kind, InjectAt::RecoveryReplay);
    }
}

/// The whole matrix at once: background rates for every fault class at or
/// above the 1e-3/op acceptance floor run across the entire schedule,
/// including recovery, instead of single targeted triggers.
#[test]
fn fault_soak_background_rates() {
    let clock = SimClock::new();
    let chip = FlashChip::new(FlashConfig::tiny(BLOCKS), clock);
    let mut dev = wrap(XFtl::format(chip, LOGICAL).unwrap());
    let ps = dev.page_size();
    let plan = || {
        FaultPlan::background(
            fault_seed(),
            1e-2, // program-status failures
            5e-3, // erase failures
            5e-2, // correctable bit-flips
            2e-3, // uncorrectable ECC bursts
        )
    };
    ftl_mut(&mut dev)
        .base_mut()
        .chip_mut()
        .set_fault_plan(plan());
    let mut expect = [0u8; 16];
    let mut buf = vec![0u8; ps];
    for lpn in 0..16u64 {
        dev.write(lpn, &vec![1u8; ps]).unwrap();
        expect[lpn as usize] = 1;
    }
    for round in 0..5u64 {
        for lpn in 0..4u64 {
            dev.write_tx(10 + round, lpn, &vec![30 + round as u8; ps])
                .unwrap();
        }
        if round % 2 == 0 {
            dev.commit(10 + round).unwrap();
            for lpn in 0..4u64 {
                expect[lpn as usize] = 30 + round as u8;
            }
        } else {
            dev.abort(10 + round).unwrap();
        }
        for i in 0..200u64 {
            let lpn = 8 + (i % 8);
            let fill = (round * 7 + i % 97) as u8;
            dev.write(lpn, &vec![fill; ps]).unwrap();
            expect[lpn as usize] = fill;
        }
        // Read traffic each round, so the bit-flip processes get pages to
        // chew on (this workload's GC victims are pure garbage, so GC
        // alone issues almost no reads). Several sweeps per round keep
        // the flip-count expectation high enough (~20) that the
        // "correctable flips fired" assertion below holds for any seed,
        // not just the default one.
        for sweep in 0..4u64 {
            for lpn in 0..16u64 {
                dev.read(lpn, &mut buf).unwrap();
                assert_eq!(
                    buf[0], expect[lpn as usize],
                    "round {round} sweep {sweep}: lpn {lpn}"
                );
            }
        }
    }
    dev.flush().unwrap();
    let flash = ftl(&dev).base().flash_stats();
    assert!(flash.program_fails > 0, "program faults never fired");
    assert!(flash.corrected_reads > 0, "correctable flips never fired");
    let mut dev = power_cycle_and_recover(dev, Some(plan()));
    for lpn in 0..16u64 {
        dev.read(lpn, &mut buf).unwrap();
        assert_eq!(buf[0], expect[lpn as usize], "lpn {lpn} corrupted");
    }
    #[cfg(feature = "verify")]
    dev.audit();
}
