//! Systematic crash-point sweep: arm the power fuse at every k-th flash
//! program/erase operation during a known transaction schedule, recover,
//! and verify the committed-prefix invariant — the strongest form of the
//! paper's §5.4 recovery claims. Every layer's crash handling (torn meta
//! pages, half-written journals, unsealed X-L2P tables) gets hit by some
//! fuse position.

// Test/demo code: unwrap/expect on a setup failure is the right failure
// mode here; clippy.toml's `allow-unwrap-in-tests` only covers `#[test]`
// fns, not the shared helpers, so the allow is restated file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::rc::Rc;

use xftl_core::XFtl;
use xftl_db::{Connection, DbJournalMode, Value};
use xftl_flash::{FaultPlan, FlashChip, FlashConfig, SimClock};
use xftl_fs::{FileSystem, FsConfig, JournalMode};
use xftl_ftl::PageMappedFtl;
#[cfg(feature = "verify")]
use xftl_verify::ShadowDevice;

const BLOCKS: usize = 300;
const LOGICAL: u64 = 2_200;

/// Fixed seed for the background fault process, so every fuse position of
/// the sweep replays the identical fault schedule (all randomness flows
/// from the workspace `simrand` shim through [`FaultPlan`]).
const FAULT_SEED: u64 = 0xF417_5EED;

/// Every crash point in the sweep also runs against live NAND faults:
/// program-status failures, erase failures (block retirements), and read
/// bit-flips — all at or above the 1e-3/op acceptance floor. The FTL's
/// retry/retirement machinery must make them invisible to the stack, and
/// under `--features verify` the oracle and auditor prove it.
fn background_faults() -> FaultPlan {
    FaultPlan::background(
        FAULT_SEED, 1e-3, // program-status failures
        1e-3, // erase failures
        2e-2, // correctable bit-flips
        1e-3, // uncorrectable ECC bursts (bounded re-reads decode them)
    )
}

// --- verify wiring ------------------------------------------------------
// With the `verify` feature, both device personalities run behind the
// shadow oracle for the whole sweep: every command the FS/DB stack issues
// is mirrored into the reference model, every read is checked against the
// worlds the crash semantics allow, and each recovery ends with a
// durability sweep plus a flash-physics audit. Without the feature, the
// aliases collapse to the bare FTLs and the helpers are identities.

#[cfg(feature = "verify")]
type PlainDev = ShadowDevice<PageMappedFtl>;
#[cfg(not(feature = "verify"))]
type PlainDev = PageMappedFtl;

#[cfg(feature = "verify")]
type XDev = ShadowDevice<XFtl>;
#[cfg(not(feature = "verify"))]
type XDev = XFtl;

fn wrap_plain(d: PageMappedFtl) -> PlainDev {
    #[cfg(feature = "verify")]
    {
        ShadowDevice::new(d)
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

fn wrap_x(d: XFtl) -> XDev {
    #[cfg(feature = "verify")]
    {
        ShadowDevice::new(d)
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

fn plain_ftl(d: &PlainDev) -> &PageMappedFtl {
    #[cfg(feature = "verify")]
    {
        d.inner()
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

fn plain_ftl_mut(d: &mut PlainDev) -> &mut PageMappedFtl {
    #[cfg(feature = "verify")]
    {
        d.inner_mut()
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

fn x_ftl(d: &XDev) -> &XFtl {
    #[cfg(feature = "verify")]
    {
        d.inner()
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

fn x_ftl_mut(d: &mut XDev) -> &mut XFtl {
    #[cfg(feature = "verify")]
    {
        d.inner_mut()
    }
    #[cfg(not(feature = "verify"))]
    {
        d
    }
}

/// Recovers a crashed device. Under `verify` the oracle carries its model
/// across the power cycle, sweeps the committed image for durability, and
/// audits the flash metadata before handing the device back.
fn recover_plain(d: PlainDev) -> PlainDev {
    #[cfg(feature = "verify")]
    {
        let (inner, model) = d.into_parts();
        let recovered = PageMappedFtl::recover(inner.into_chip()).unwrap();
        let mut dev = ShadowDevice::resume(recovered, model);
        dev.verify_recovered();
        dev.audit();
        dev
    }
    #[cfg(not(feature = "verify"))]
    {
        PageMappedFtl::recover(d.into_chip()).unwrap()
    }
}

fn recover_x(d: XDev) -> XDev {
    #[cfg(feature = "verify")]
    {
        let (inner, model) = d.into_parts();
        let recovered = XFtl::recover(inner.into_chip()).unwrap();
        let mut dev = ShadowDevice::resume(recovered, model);
        dev.verify_recovered();
        dev.audit();
        dev
    }
    #[cfg(not(feature = "verify"))]
    {
        XFtl::recover(d.into_chip()).unwrap()
    }
}

#[derive(Debug)]
// One Dev per test scenario, never in collections; the X-FTL variant's
// commit-pipeline state tips clippy's size ratio.
#[allow(clippy::large_enum_variant)]
enum Dev {
    Plain(PlainDev),
    X(XDev),
}

fn build(mode: DbJournalMode) -> (Rc<RefCell<FileSystem<Dev>>>, SimClock) {
    let clock = SimClock::new();
    let mut chip = FlashChip::new(FlashConfig::tiny(BLOCKS), clock.clone());
    chip.set_fault_plan(background_faults());
    let dev = match mode {
        DbJournalMode::Off => Dev::X(wrap_x(XFtl::format(chip, LOGICAL).unwrap())),
        _ => Dev::Plain(wrap_plain(PageMappedFtl::format(chip, LOGICAL).unwrap())),
    };
    let fs_mode = if mode == DbJournalMode::Off {
        JournalMode::Off
    } else {
        JournalMode::Ordered
    };
    let cfg = FsConfig {
        inode_count: 32,
        journal_pages: 48,
        cache_pages: 256,
    };
    // `Off` mode needs the transactional constructor; `Dev` carries the
    // X-FTL personality in exactly that case.
    let fs = match fs_mode {
        JournalMode::Off => FileSystem::mkfs_tx(dev, fs_mode, cfg),
        _ => FileSystem::mkfs(dev, fs_mode, cfg),
    }
    .unwrap();
    (Rc::new(RefCell::new(fs)), clock)
}

// Forward the device traits through the enum.
mod devimpl {
    use super::Dev;
    use xftl_ftl::{
        BlockDevice, CmdId, CommitTicket, DevCounters, IoCmd, Lpn, Result, Tid, TxBlockDevice,
    };

    impl BlockDevice for Dev {
        fn page_size(&self) -> usize {
            match self {
                Dev::Plain(d) => d.page_size(),
                Dev::X(d) => d.page_size(),
            }
        }
        fn capacity_pages(&self) -> u64 {
            match self {
                Dev::Plain(d) => d.capacity_pages(),
                Dev::X(d) => d.capacity_pages(),
            }
        }
        fn read(&mut self, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
            match self {
                Dev::Plain(d) => d.read(lpn, buf),
                Dev::X(d) => d.read(lpn, buf),
            }
        }
        fn write(&mut self, lpn: Lpn, buf: &[u8]) -> Result<()> {
            match self {
                Dev::Plain(d) => d.write(lpn, buf),
                Dev::X(d) => d.write(lpn, buf),
            }
        }
        fn trim(&mut self, lpn: Lpn) -> Result<()> {
            match self {
                Dev::Plain(d) => d.trim(lpn),
                Dev::X(d) => d.trim(lpn),
            }
        }
        fn flush(&mut self) -> Result<()> {
            match self {
                Dev::Plain(d) => d.flush(),
                Dev::X(d) => d.flush(),
            }
        }
        fn counters(&self) -> DevCounters {
            match self {
                Dev::Plain(d) => d.counters(),
                Dev::X(d) => d.counters(),
            }
        }
        fn submit(&mut self, cmds: &[IoCmd<'_>]) -> Result<CmdId> {
            match self {
                Dev::Plain(d) => d.submit(cmds),
                Dev::X(d) => d.submit(cmds),
            }
        }
        fn complete_until(&mut self, barrier: CmdId) -> Result<()> {
            match self {
                Dev::Plain(d) => d.complete_until(barrier),
                Dev::X(d) => d.complete_until(barrier),
            }
        }
    }

    /// The enum erases the compile-time tx capability, so this impl
    /// reintroduces it at runtime: `build` only pairs `Off` mode with the
    /// `X` personality, and only `Off` mode issues these commands.
    impl TxBlockDevice for Dev {
        fn read_tx(&mut self, tid: Tid, lpn: Lpn, buf: &mut [u8]) -> Result<()> {
            match self {
                Dev::X(d) => d.read_tx(tid, lpn, buf),
                Dev::Plain(_) => panic!("test bug: tx command on the page-mapping personality"),
            }
        }
        fn write_tx(&mut self, tid: Tid, lpn: Lpn, buf: &[u8]) -> Result<()> {
            match self {
                Dev::X(d) => d.write_tx(tid, lpn, buf),
                Dev::Plain(_) => panic!("test bug: tx command on the page-mapping personality"),
            }
        }
        fn commit_submit(&mut self, tid: Tid) -> Result<CommitTicket> {
            match self {
                Dev::X(d) => d.commit_submit(tid),
                Dev::Plain(_) => panic!("test bug: tx command on the page-mapping personality"),
            }
        }
        fn commit_wait(&mut self, ticket: CommitTicket) -> Result<()> {
            match self {
                Dev::X(d) => d.commit_wait(ticket),
                Dev::Plain(_) => panic!("test bug: tx command on the page-mapping personality"),
            }
        }
        fn commit(&mut self, tid: Tid) -> Result<()> {
            match self {
                Dev::X(d) => d.commit(tid),
                Dev::Plain(_) => panic!("test bug: tx command on the page-mapping personality"),
            }
        }
        fn abort(&mut self, tid: Tid) -> Result<()> {
            match self {
                Dev::X(d) => d.abort(tid),
                Dev::Plain(_) => panic!("test bug: tx command on the page-mapping personality"),
            }
        }
        fn submit_tx(&mut self, tid: Tid, pages: &[(Lpn, &[u8])]) -> Result<CmdId> {
            match self {
                Dev::X(d) => d.submit_tx(tid, pages),
                Dev::Plain(_) => panic!("test bug: tx command on the page-mapping personality"),
            }
        }
    }
}

/// Runs the fixed schedule with a fuse armed after `fuse` operations.
/// Returns the number of batches confirmed committed before the power
/// died (commits that returned success), or None if the whole schedule
/// finished without tripping the fuse.
fn run_until_crash(
    fs: &Rc<RefCell<FileSystem<Dev>>>,
    mode: DbJournalMode,
    fuse: u64,
) -> (u32, bool) {
    let Ok(mut db) = Connection::open(Rc::clone(fs), "m.db", mode) else {
        return (0, true); // fuse tripped during open/recovery
    };
    if db
        .execute("CREATE TABLE IF NOT EXISTS t (id INTEGER PRIMARY KEY, batch INT)")
        .is_err()
    {
        return (0, true);
    }
    // Arm the fuse only after setup, so every position lands inside the
    // measured batches.
    {
        let mut fsb = fs.borrow_mut();
        match fsb.device_mut() {
            Dev::Plain(d) => plain_ftl_mut(d).base_mut().chip_mut().arm_power_fuse(fuse),
            Dev::X(d) => x_ftl_mut(d).base_mut().chip_mut().arm_power_fuse(fuse),
        }
    }
    let mut committed = 0u32;
    for batch in 0..12i64 {
        let run = (|| -> Result<(), xftl_db::DbError> {
            db.execute("BEGIN")?;
            for k in 0..4i64 {
                db.execute_with(
                    "INSERT INTO t VALUES (?, ?)",
                    &[Value::Int(batch * 4 + k + 1), Value::Int(batch)],
                )?;
            }
            db.execute("COMMIT")?;
            Ok(())
        })();
        match run {
            Ok(()) => committed += 1,
            Err(_) => return (committed, true),
        }
    }
    (committed, false)
}

fn crash_sweep(mode: DbJournalMode) {
    // Establish the total number of flash ops a clean run needs.
    let (fs, _clock) = build(mode);
    let (full_batches, crashed) = run_until_crash(&fs, mode, u64::MAX / 2);
    assert!(!crashed);
    assert_eq!(full_batches, 12);
    let total_ops = {
        let fsb = fs.borrow();
        match fsb.device() {
            Dev::Plain(d) => {
                plain_ftl(d).flash_stats().programs + plain_ftl(d).flash_stats().erases
            }
            Dev::X(d) => x_ftl(d).flash_stats().programs + x_ftl(d).flash_stats().erases,
        }
    };
    // Sweep fuse positions across the whole run.
    let step = (total_ops / 60).max(1);
    let mut positions_tested = 0;
    let mut fuse = 3u64;
    while fuse < total_ops {
        let (fs, _clock) = build(mode);
        let (committed, crashed) = run_until_crash(&fs, mode, fuse);
        if crashed {
            positions_tested += 1;
            // Power-cycle and recover the device, remount, reopen.
            let fs_inner = Rc::try_unwrap(fs).expect("sole owner").into_inner();
            let dev = fs_inner.into_device();
            let dev = match dev {
                Dev::Plain(d) => Dev::Plain(recover_plain(d)),
                Dev::X(d) => Dev::X(recover_x(d)),
            };
            let fs = if mode == DbJournalMode::Off {
                FileSystem::mount_tx(dev, JournalMode::Off, 256)
            } else {
                FileSystem::mount(dev, JournalMode::Ordered, 256)
            }
            .unwrap();
            let fs = Rc::new(RefCell::new(fs));
            let mut db = Connection::open(fs, "m.db", mode).unwrap();
            let rows = db
                .query("SELECT COUNT(*), MAX(batch) FROM t")
                .unwrap_or_else(|e| panic!("{mode:?} fuse {fuse}: query failed: {e}"));
            let count = rows[0][0].as_i64().unwrap();
            // Every acknowledged commit must be intact; one extra batch may
            // or may not have survived (the crash happened inside it), but
            // it must be complete if present (multiples of 4 rows).
            assert!(
                count == committed as i64 * 4 || count == (committed as i64 + 1) * 4,
                "{mode:?} fuse {fuse}: {count} rows after {committed} acknowledged batches"
            );
            assert_eq!(count % 4, 0, "{mode:?} fuse {fuse}: torn batch visible");
        }
        fuse += step;
    }
    assert!(
        positions_tested > 20,
        "{mode:?}: sweep covered too few crash points"
    );
}

#[test]
fn crash_sweep_rollback_mode() {
    crash_sweep(DbJournalMode::Rollback);
}

#[test]
fn crash_sweep_wal_mode() {
    crash_sweep(DbJournalMode::Wal);
}

#[test]
fn crash_sweep_xftl_mode() {
    crash_sweep(DbJournalMode::Off);
}

/// Crash *during recovery* (the fuse fires while the recovered device is
/// re-checkpointing), then recover again: the second recovery must still
/// produce exactly the committed state — recovery is idempotent under
/// repeated interruption (§5.4's idempotence claim, adversarially).
#[test]
fn crash_during_recovery_is_idempotent() {
    for mode in [DbJournalMode::Rollback, DbJournalMode::Off] {
        // Build a volume with committed data and an interrupted txn.
        let (fs, _clock) = build(mode);
        let fuse = if mode == DbJournalMode::Off { 45 } else { 150 };
        let (committed, crashed) = run_until_crash(&fs, mode, fuse);
        assert!(crashed, "{fuse}-op fuse must fire mid-schedule ({mode:?})");
        let fs_inner = Rc::try_unwrap(fs).expect("sole owner").into_inner();
        #[cfg(feature = "verify")]
        let (mut chip, model) = match fs_inner.into_device() {
            Dev::Plain(d) => {
                let (ftl, model) = d.into_parts();
                (ftl.into_chip(), model)
            }
            Dev::X(d) => {
                let (ftl, model) = d.into_parts();
                (ftl.into_chip(), model)
            }
        };
        #[cfg(not(feature = "verify"))]
        let mut chip = match fs_inner.into_device() {
            Dev::Plain(d) => d.into_chip(),
            Dev::X(d) => d.into_chip(),
        };
        // First recovery attempt dies partway through (recovery itself
        // writes: roll-forward checkpoint, meta pages).
        for recovery_fuse in [2u64, 5, 9] {
            chip.power_cycle();
            chip.arm_power_fuse(recovery_fuse);
            // Whether this attempt survives its fuse or dies, retry on
            // the same flash image until one completes.
            match mode {
                DbJournalMode::Off => drop(XFtl::recover(chip.clone())),
                _ => drop(PageMappedFtl::recover(chip.clone())),
            }
        }
        // Final, uninterrupted recovery.
        chip.power_cycle();
        chip.disarm_power_fuse();
        #[cfg(feature = "verify")]
        let dev = match mode {
            DbJournalMode::Off => {
                let mut d = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
                d.verify_recovered();
                d.audit();
                Dev::X(d)
            }
            _ => {
                let mut d = ShadowDevice::resume(PageMappedFtl::recover(chip).unwrap(), model);
                d.verify_recovered();
                d.audit();
                Dev::Plain(d)
            }
        };
        #[cfg(not(feature = "verify"))]
        let dev = match mode {
            DbJournalMode::Off => Dev::X(XFtl::recover(chip).unwrap()),
            _ => Dev::Plain(PageMappedFtl::recover(chip).unwrap()),
        };
        let fs = if mode == DbJournalMode::Off {
            FileSystem::mount_tx(dev, JournalMode::Off, 256)
        } else {
            FileSystem::mount(dev, JournalMode::Ordered, 256)
        }
        .unwrap();
        let fs = Rc::new(RefCell::new(fs));
        let mut db = Connection::open(fs, "m.db", mode).unwrap();
        let rows = db.query("SELECT COUNT(*) FROM t").unwrap();
        let count = rows[0][0].as_i64().unwrap();
        assert!(
            count == committed as i64 * 4 || count == (committed as i64 + 1) * 4,
            "{mode:?}: {count} rows after {committed} acknowledged batches"
        );
        assert_eq!(
            count % 4,
            0,
            "{mode:?}: torn batch visible after re-crashed recovery"
        );
    }
}

/// Drive a commit into the power fuse so the X-L2P persist is torn
/// mid-program, then recover under the oracle: the transaction must
/// resolve all-or-nothing (the oracle's world-narrowing panics on a torn
/// commit) and the flash metadata must audit green afterwards.
#[cfg(feature = "verify")]
#[test]
fn oracle_fuse_mid_commit_resolves_all_or_nothing() {
    use xftl_ftl::{BlockDevice, TxBlockDevice};
    let chip = FlashChip::new(FlashConfig::tiny(40), SimClock::new());
    let mut dev = ShadowDevice::new(XFtl::format(chip, 64).unwrap());
    let ps = dev.page_size();
    let old = vec![0x11u8; ps];
    let new = vec![0x22u8; ps];
    for lpn in 0..6u64 {
        dev.write(lpn, &old).unwrap();
    }
    dev.flush().unwrap();
    for lpn in 0..6u64 {
        dev.write_tx(3, lpn, &new).unwrap();
    }
    // The commit persists the X-L2P table and a checkpoint root — several
    // programs. A two-op fuse dies in the middle of that sequence.
    dev.inner_mut().base_mut().chip_mut().arm_power_fuse(2);
    assert!(dev.commit(3).is_err(), "fuse must kill the commit");

    let (ftl, model) = dev.into_parts();
    let mut chip = ftl.into_chip();
    chip.power_cycle();
    let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
    dev.verify_recovered();
    dev.audit();

    // Every page must land in the same world as the first one read.
    let mut buf = vec![0u8; ps];
    dev.read(0, &mut buf).unwrap();
    let world = buf[0];
    assert!(world == 0x11 || world == 0x22, "unknown world {world:#x}");
    for lpn in 1..6u64 {
        dev.read(lpn, &mut buf).unwrap();
        assert_eq!(buf[0], world, "torn commit: lpn {lpn} in another world");
    }
}

/// Power cut in the split-phase window: two transactions commit_submit
/// (visible, staged in the same group) but the power dies before any
/// commit_wait. No group flush ever ran, so the whole group must vanish —
/// the oracle carries both as in-doubt worlds across the cycle and the
/// recovered image must sit in the all-old world for every page.
#[cfg(feature = "verify")]
#[test]
fn oracle_power_cut_between_submit_and_wait_loses_group() {
    use xftl_ftl::{BlockDevice, TxBlockDevice};
    let chip = FlashChip::new(FlashConfig::tiny(40), SimClock::new());
    let mut dev = ShadowDevice::new(XFtl::format(chip, 64).unwrap());
    let ps = dev.page_size();
    let old = vec![0x11u8; ps];
    let new = vec![0x22u8; ps];
    for lpn in 0..6u64 {
        dev.write(lpn, &old).unwrap();
    }
    dev.flush().unwrap();
    for lpn in 0..3u64 {
        dev.write_tx(3, lpn, &new).unwrap();
    }
    for lpn in 3..6u64 {
        dev.write_tx(4, lpn, &new).unwrap();
    }
    let a = dev.commit_submit(3).unwrap();
    let b = dev.commit_submit(4).unwrap();
    assert!(
        !a.is_immediate() && !b.is_immediate(),
        "X-FTL stages commits"
    );
    // Both are visible now, before any flush.
    let mut buf = vec![0u8; ps];
    dev.read(0, &mut buf).unwrap();
    assert_eq!(buf[0], 0x22, "submitted commit must be visible");

    // Power dies with the group staged: tickets a and b are never redeemed.
    let (ftl, model) = dev.into_parts();
    let mut chip = ftl.into_chip();
    chip.power_cycle();
    let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
    dev.verify_recovered();
    dev.audit();

    // Nothing of the staged group was ever programmed durably.
    for lpn in 0..6u64 {
        dev.read(lpn, &mut buf).unwrap();
        assert_eq!(
            buf[0], 0x11,
            "unflushed group survived the crash: lpn {lpn}"
        );
    }
}

/// Two concurrent `commit_submit`s redeemed by one `commit_wait` must
/// coalesce into a single group flush — one X-L2P persist and one
/// meta-root program for both transactions — with every read and the
/// recovery image still checked by the oracle.
#[cfg(feature = "verify")]
#[test]
fn oracle_group_commit_coalesces_two_commits_into_one_flush() {
    use xftl_ftl::{BlockDevice, TxBlockDevice};
    let chip = FlashChip::new(FlashConfig::tiny(40), SimClock::new());
    let mut dev = ShadowDevice::new(XFtl::format(chip, 64).unwrap());
    let ps = dev.page_size();
    let new = vec![0x22u8; ps];
    for lpn in 0..3u64 {
        dev.write_tx(3, lpn, &new).unwrap();
    }
    for lpn in 3..6u64 {
        dev.write_tx(4, lpn, &new).unwrap();
    }
    let before = *dev.inner().stats();
    let a = dev.commit_submit(3).unwrap();
    let b = dev.commit_submit(4).unwrap();
    dev.commit_wait(b).unwrap();
    dev.commit_wait(a).unwrap();
    let delta = *dev.inner().stats() - before;
    assert_eq!(
        delta.group_commit_flushes, 1,
        "both commits share one flush"
    );
    assert_eq!(delta.commits_coalesced, 2, "the flush retired both commits");

    // The single flush made both durable: power-cycle and re-check every
    // page through the oracle's recovery sweep plus a flash audit.
    let (ftl, model) = dev.into_parts();
    let mut chip = ftl.into_chip();
    chip.power_cycle();
    let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
    dev.verify_recovered();
    dev.audit();
    let mut buf = vec![0u8; ps];
    for lpn in 0..6u64 {
        dev.read(lpn, &mut buf).unwrap();
        assert_eq!(buf[0], 0x22, "coalesced commit lost lpn {lpn}");
    }
}

/// Fuse in the middle of a *group* flush: two staged commits share one
/// X-L2P persist, so a torn flush must take or lose them together — the
/// all-or-nothing unit is the group, not the transaction. The oracle's
/// in-doubt worlds (spilled when commit_wait fails) enforce exactly that
/// across the power cycle.
#[cfg(feature = "verify")]
#[test]
fn oracle_fuse_mid_group_flush_is_all_or_nothing() {
    use xftl_ftl::{BlockDevice, TxBlockDevice};
    let chip = FlashChip::new(FlashConfig::tiny(40), SimClock::new());
    let mut dev = ShadowDevice::new(XFtl::format(chip, 64).unwrap());
    let ps = dev.page_size();
    let old = vec![0x11u8; ps];
    let new = vec![0x22u8; ps];
    for lpn in 0..6u64 {
        dev.write(lpn, &old).unwrap();
    }
    dev.flush().unwrap();
    for lpn in 0..3u64 {
        dev.write_tx(3, lpn, &new).unwrap();
    }
    for lpn in 3..6u64 {
        dev.write_tx(4, lpn, &new).unwrap();
    }
    let a = dev.commit_submit(3).unwrap();
    let _b = dev.commit_submit(4).unwrap();
    // Redeeming the first ticket flushes the whole staged group — several
    // programs (X-L2P table pages + checkpoint root). A two-op fuse dies
    // mid-flush.
    dev.inner_mut().base_mut().chip_mut().arm_power_fuse(2);
    assert!(
        dev.commit_wait(a).is_err(),
        "fuse must kill the group flush"
    );

    let (ftl, model) = dev.into_parts();
    let mut chip = ftl.into_chip();
    chip.power_cycle();
    let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
    dev.verify_recovered();
    dev.audit();

    // Every page of BOTH transactions must land in the same world.
    let mut buf = vec![0u8; ps];
    dev.read(0, &mut buf).unwrap();
    let world = buf[0];
    assert!(world == 0x11 || world == 0x22, "unknown world {world:#x}");
    for lpn in 1..6u64 {
        dev.read(lpn, &mut buf).unwrap();
        assert_eq!(
            buf[0], world,
            "torn group flush: lpn {lpn} in another world"
        );
    }
}

/// Recover twice in a row with no intervening traffic: the second
/// recovery must reproduce exactly the committed image the first one
/// produced — recovery is idempotent, as witnessed by the oracle's
/// durability sweep and the flash audit.
#[cfg(feature = "verify")]
#[test]
fn oracle_double_recovery_is_idempotent() {
    use xftl_ftl::{BlockDevice, TxBlockDevice};
    let chip = FlashChip::new(FlashConfig::tiny(40), SimClock::new());
    let mut dev = ShadowDevice::new(XFtl::format(chip, 64).unwrap());
    let ps = dev.page_size();
    for lpn in 0..8u64 {
        let fill = u8::try_from(lpn).unwrap() + 1;
        dev.write(lpn, &vec![fill; ps]).unwrap();
    }
    dev.write_tx(5, 0, &vec![0xEEu8; ps]).unwrap(); // in-flight, must die

    let (ftl, model) = dev.into_parts();
    let mut chip = ftl.into_chip();
    chip.power_cycle();
    let first = XFtl::recover(chip).unwrap();
    // Power-cycle again immediately: recovery's own writes (checkpoint,
    // meta ring append) must leave a state that recovers to the same
    // image.
    let mut chip = first.into_chip();
    chip.power_cycle();
    let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
    assert!(dev.verify_recovered() >= 8);
    dev.audit();

    let mut buf = vec![0u8; ps];
    dev.read(0, &mut buf).unwrap();
    assert_eq!(buf[0], 1, "in-flight tx write survived double recovery");
}

/// Power cut in the middle of a dirty-slab eviction flush: with a
/// one-slab mapping-cache budget every miss evicts, and a dirty victim
/// programs its translation page before the fetch — the fuse kills
/// exactly that program. Recovery must rebuild the identical mapping by
/// OOB roll-forward (acknowledged writes intact, the never-programmed
/// one absent), and the flash auditor — which now decodes translation
/// pages and the GTD — must still pass on the torn image.
#[cfg(feature = "verify")]
#[test]
fn oracle_fuse_mid_eviction_flush_recovers_acknowledged_writes() {
    use xftl_ftl::BlockDevice;
    const MAP_LOGICAL: u64 = 400;
    let chip = FlashChip::new(FlashConfig::tiny(110), SimClock::new());
    let mut dev = ShadowDevice::new(PageMappedFtl::format(chip, MAP_LOGICAL).unwrap());
    dev.inner_mut()
        .base_mut()
        .set_map_cache_budget(Some(1))
        .unwrap();
    let ps = dev.page_size();
    for lpn in 0..MAP_LOGICAL {
        let fill = u8::try_from(lpn % 250).unwrap() + 1;
        dev.write(lpn, &vec![fill; ps]).unwrap();
    }
    dev.flush().unwrap();
    // Dirty the slab covering lpn 0, then touch a far slab: the miss
    // must flush slab 0's translation page first, and the one-op fuse
    // dies inside that eviction program.
    dev.write(0, &vec![0xEE; ps]).unwrap();
    dev.inner_mut().base_mut().chip_mut().arm_power_fuse(1);
    assert!(
        dev.write(390, &vec![0xDD; ps]).is_err(),
        "fuse must fire in the eviction flush"
    );

    let (ftl, model) = dev.into_parts();
    let mut chip = ftl.into_chip();
    chip.power_cycle();
    let mut dev = ShadowDevice::resume(PageMappedFtl::recover(chip).unwrap(), model);
    dev.verify_recovered();
    dev.audit();
    dev.inner_mut()
        .base_mut()
        .set_map_cache_budget(Some(1))
        .unwrap();
    let mut buf = vec![0u8; ps];
    dev.read(0, &mut buf).unwrap();
    assert_eq!(buf[0], 0xEE, "acknowledged write lost in eviction crash");
    for lpn in 1..MAP_LOGICAL {
        dev.read(lpn, &mut buf).unwrap();
        let expect = u8::try_from(lpn % 250).unwrap() + 1;
        assert_eq!(buf[0], expect, "lpn {lpn} corrupted by the torn eviction");
    }
}

/// Recover twice in a row under a bounded mapping-cache budget, crashing
/// first inside an eviction window: the second recovery — interrupting
/// nothing but re-running the roll-forward checkpoint, GTD programs, and
/// meta-root append of the first — must reproduce the *identical* L2P
/// mapping and data image. Runs in every feature configuration.
#[test]
fn double_recovery_with_bounded_cache_is_idempotent() {
    use xftl_ftl::BlockDevice;
    const MAP_LOGICAL: u64 = 400;
    let chip = FlashChip::new(FlashConfig::tiny(110), SimClock::new());
    let mut dev = PageMappedFtl::format(chip, MAP_LOGICAL).unwrap();
    dev.base_mut().set_map_cache_budget(Some(2)).unwrap();
    let ps = dev.page_size();
    for lpn in 0..MAP_LOGICAL {
        let fill = u8::try_from(lpn % 250).unwrap() + 1;
        dev.write(lpn, &vec![fill; ps]).unwrap();
    }
    dev.write(5, &vec![0xEE; ps]).unwrap();
    // The next cross-slab write needs an eviction and a data program;
    // the one-op fuse dies in whichever comes first.
    dev.base_mut().chip_mut().arm_power_fuse(1);
    assert!(
        dev.write(300, &vec![0xDD; ps]).is_err(),
        "fuse must fire mid-write"
    );
    let mut chip = dev.into_chip();
    chip.power_cycle();
    let first = PageMappedFtl::recover(chip).unwrap();
    let mapping_first: Vec<_> = (0..MAP_LOGICAL).map(|l| first.base().l2p_peek(l)).collect();
    // Immediate second power cycle: recovery's own writes must land in a
    // state that recovers to the same mapping.
    let mut chip = first.into_chip();
    chip.power_cycle();
    let mut second = PageMappedFtl::recover(chip).unwrap();
    let mapping_second: Vec<_> = (0..MAP_LOGICAL)
        .map(|l| second.base().l2p_peek(l))
        .collect();
    assert_eq!(
        mapping_first, mapping_second,
        "double recovery changed the mapping"
    );
    second.base_mut().set_map_cache_budget(Some(2)).unwrap();
    let mut buf = vec![0u8; ps];
    second.read(5, &mut buf).unwrap();
    assert_eq!(buf[0], 0xEE, "acknowledged write lost");
    for lpn in (0..MAP_LOGICAL).filter(|l| *l != 5 && *l != 300) {
        second.read(lpn, &mut buf).unwrap();
        let expect = u8::try_from(lpn % 250).unwrap() + 1;
        assert_eq!(buf[0], expect, "lpn {lpn} corrupted across recoveries");
    }
}

/// Power cut with the full MVCC machinery engaged: two snapshot writers
/// mid-flight, one commit durably flushed, and one more submitted but
/// never redeemed. Recovery must keep the flushed commit, drop the
/// staged group, evaporate both active writers (their snapshots, write
/// intents, and retained versions are device RAM), and produce the same
/// image when interrupted by a second power cycle — all under the
/// oracle's durability sweep and flash audit.
#[cfg(feature = "verify")]
#[test]
fn oracle_power_cut_with_live_snapshot_writers_keeps_commits_drops_intents() {
    use xftl_ftl::{BlockDevice, TxBlockDevice};
    let chip = FlashChip::new(FlashConfig::tiny(40), SimClock::new());
    let mut dev = ShadowDevice::new(XFtl::format(chip, 64).unwrap());
    let ps = dev.page_size();
    let old = vec![0x11u8; ps];
    for lpn in 0..8u64 {
        dev.write(lpn, &old).unwrap();
    }
    dev.flush().unwrap();

    // Four snapshot transactions on disjoint pages: two stay active,
    // one commits durably (blocking), one is submitted but unflushed.
    for tid in 1..=4u64 {
        dev.begin(tid).unwrap();
    }
    dev.write_tx(1, 0, &vec![0xA1u8; ps]).unwrap();
    dev.write_tx(1, 1, &vec![0xA1u8; ps]).unwrap();
    dev.write_tx(2, 2, &vec![0xB2u8; ps]).unwrap();
    dev.write_tx(2, 3, &vec![0xB2u8; ps]).unwrap();
    dev.write_tx(3, 4, &vec![0xC3u8; ps]).unwrap();
    dev.write_tx(3, 5, &vec![0xC3u8; ps]).unwrap();
    dev.write_tx(4, 6, &vec![0xD4u8; ps]).unwrap();
    dev.commit(4).unwrap(); // durable before the cut
    let staged = dev.commit_submit(3).unwrap(); // visible, never redeemed
    assert!(!staged.is_immediate(), "X-FTL stages commits");

    // Pre-cut sanity: the staged version is visible, the live writers'
    // versions are not, and the intent table tracks both live writers.
    let mut buf = vec![0u8; ps];
    dev.read(4, &mut buf).unwrap();
    assert_eq!(buf[0], 0xC3, "staged commit must be visible");
    dev.read(0, &mut buf).unwrap();
    assert_eq!(buf[0], 0x11, "active writer's version must not leak");
    assert_eq!(dev.inner().xl2p().intent_pages(), 4, "two live writers");
    assert_eq!(dev.inner().active_snapshots(), 2, "tids 1 and 2 still open");

    // Power dies; recover twice (the second cycle interrupts nothing but
    // must still reproduce the same image — recovery stays idempotent
    // with MVCC state in the mix).
    let (ftl, model) = dev.into_parts();
    let mut chip = ftl.into_chip();
    chip.power_cycle();
    let first = XFtl::recover(chip).unwrap();
    let mut chip = first.into_chip();
    chip.power_cycle();
    let mut dev = ShadowDevice::resume(XFtl::recover(chip).unwrap(), model);
    dev.verify_recovered();
    dev.audit();

    // The flushed commit survived; everything else rolled back.
    dev.read(6, &mut buf).unwrap();
    assert_eq!(buf[0], 0xD4, "flushed commit lost");
    for lpn in [0u64, 1, 2, 3, 4, 5, 7] {
        dev.read(lpn, &mut buf).unwrap();
        assert_eq!(
            buf[0], 0x11,
            "uncommitted or unflushed version survived: lpn {lpn}"
        );
    }
    // Snapshots, write intents, and retained versions are device RAM:
    // recovery must come up with none of them.
    assert_eq!(
        dev.inner().active_snapshots(),
        0,
        "snapshot survived power loss"
    );
    assert_eq!(
        dev.inner().xl2p().intent_pages(),
        0,
        "write intent survived"
    );
    assert_eq!(dev.inner().xl2p().retained_versions(), 0, "chain survived");
}

/// Power cut inside a background scrub relocation, swept across fuse
/// positions: a read-hammered block crosses the scrub threshold, the
/// next GC tick starts relocating it, and the fuse kills the device
/// somewhere in the copy/erase schedule. Recovery must roll forward to
/// an image where every page holds its acknowledged value — a torn
/// relocation is invisible (old copies valid until the new ones seal).
#[test]
fn crash_mid_scrub_relocation_sweep() {
    use xftl_ftl::{BlockDevice, ScrubConfig};
    let mut cut_mid_scrub = 0u32;
    for fuse in 1..=20u64 {
        let chip = FlashChip::new(FlashConfig::tiny(24), SimClock::new());
        let mut dev = wrap_x(XFtl::format(chip, 48).unwrap());
        x_ftl_mut(&mut dev)
            .base_mut()
            .set_scrub_config(Some(ScrubConfig {
                read_threshold: 50,
                interval_ops: 1,
                ..ScrubConfig::default()
            }));
        let ps = dev.page_size();
        // lpns 0..8 fill one block; lpn 8 closes it (an open write
        // frontier is never a scrub victim).
        for lpn in 0..9u64 {
            let fill = u8::try_from(lpn).unwrap() + 1;
            dev.write(lpn, &vec![fill; ps]).unwrap();
        }
        dev.flush().unwrap();
        // Hammer the closed block past the scrub threshold.
        let mut buf = vec![0u8; ps];
        for _ in 0..60 {
            dev.read(0, &mut buf).unwrap();
        }
        // The next write's GC tick fires the scrubber; the fuse lands
        // somewhere inside the relocation (or, for late positions, in
        // the host write after it).
        x_ftl_mut(&mut dev)
            .base_mut()
            .chip_mut()
            .arm_power_fuse(fuse);
        let died = dev.write(9, &vec![0xAB; ps]).is_err();
        let stats = *x_ftl(&dev).base().stats();
        if died && stats.scrub_copies > 0 && stats.scrub_runs == 0 {
            cut_mid_scrub += 1;
        }
        if !died {
            continue; // fuse outlived the schedule: nothing to recover
        }
        let mut dev = recover_x(dev);
        for lpn in 0..8u64 {
            dev.read(lpn, &mut buf).unwrap();
            let expect = u8::try_from(lpn).unwrap() + 1;
            assert_eq!(
                buf[0], expect,
                "fuse {fuse}: lpn {lpn} lost in torn scrub relocation"
            );
        }
    }
    assert!(
        cut_mid_scrub > 0,
        "no fuse position landed inside a scrub relocation"
    );
}

/// Double recovery with persisted health state: the device is driven to
/// `Degraded` by bounded block retirements (still writable), then to
/// `ReadOnly` by sticky erase failures. At each stage two back-to-back
/// recoveries must come up in the same state — degradation is durable
/// and recovery stays idempotent on a dying device.
#[test]
fn double_recovery_preserves_degraded_and_read_only_state() {
    use xftl_flash::{FaultKind, FaultTrigger};
    use xftl_ftl::{BlockDevice, DevError, DeviceState};

    let chip = FlashChip::new(FlashConfig::tiny(40), SimClock::new());
    let mut dev = wrap_x(XFtl::format(chip, 48).unwrap());
    let ps = dev.page_size();
    for lpn in 0..8u64 {
        let fill = u8::try_from(lpn).unwrap() + 1;
        dev.write(lpn, &vec![fill; ps]).unwrap();
    }
    dev.flush().unwrap();

    // Stage 1: enough one-shot erase failures to shrink the usable pool
    // below the format-time requirement (Degraded), with plenty of spare
    // blocks left to keep writing.
    let mut plan = FaultPlan::new(FAULT_SEED);
    for _ in 0..28 {
        plan = plan.trigger(FaultTrigger::new(FaultKind::EraseFail));
    }
    x_ftl_mut(&mut dev)
        .base_mut()
        .chip_mut()
        .set_fault_plan(plan);
    let mut i = 0u64;
    while x_ftl(&dev).base().device_state() == DeviceState::Healthy {
        let fill = (i % 100) as u8;
        dev.write(8 + (i % 8), &vec![fill; ps]).unwrap();
        i += 1;
        assert!(i < 100_000, "retirements never degraded the device");
    }
    assert_eq!(x_ftl(&dev).base().device_state(), DeviceState::Degraded);

    // Two back-to-back recoveries: Degraded persists through both (via
    // the meta root and, independently, the bad-block census).
    let mut dev = recover_x(recover_x(dev));
    assert_eq!(
        x_ftl(&dev).base().device_state(),
        DeviceState::Degraded,
        "Degraded state lost across double recovery"
    );
    // A degraded device still writes.
    dev.write(8, &vec![0x77; ps]).unwrap();

    // Stage 2: every further erase fails; the pool drains to read-only.
    x_ftl_mut(&mut dev).base_mut().chip_mut().set_fault_plan(
        FaultPlan::new(FAULT_SEED).trigger(FaultTrigger::new(FaultKind::EraseFail).sticky()),
    );
    let mut i = 0u64;
    loop {
        let fill = (i % 100) as u8;
        match dev.write(8 + (i % 8), &vec![fill; ps]) {
            Ok(()) => i += 1,
            Err(e) => {
                assert_eq!(e, DevError::ReadOnly, "wrong end-of-life error");
                break;
            }
        }
        assert!(i < 100_000, "pool exhaustion never went read-only");
    }
    assert_eq!(x_ftl(&dev).base().device_state(), DeviceState::ReadOnly);

    let mut dev = recover_x(recover_x(dev));
    assert_eq!(
        x_ftl(&dev).base().device_state(),
        DeviceState::ReadOnly,
        "ReadOnly state lost across double recovery"
    );
    let mut buf = vec![0u8; ps];
    for lpn in 0..8u64 {
        dev.read(lpn, &mut buf).unwrap();
        let expect = u8::try_from(lpn).unwrap() + 1;
        assert_eq!(buf[0], expect, "lpn {lpn} lost at end of life");
    }
    assert_eq!(
        dev.write(0, &vec![0xEE; ps]),
        Err(DevError::ReadOnly),
        "recovered device forgot it was read-only"
    );
}
