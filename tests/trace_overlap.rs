//! Commit-pipeline overlap proof (`cargo test --features trace`): the
//! split-phase device API must let transaction N+1's data writes land
//! while transaction N's commit is still in flight, and the group flush
//! must retire both commits with one coalesced meta program.
//!
//! The proof is read straight off the structured event stream: tx 1's
//! in-flight window runs from its `commit_pipeline_depth` sample (the
//! `commit_submit` instant) to the end of its `tx_commit` span (the
//! group flush). Every tx-2 `ftl_host_write` span must fall inside that
//! window, and the two `tx_commit` spans must be the same flush.

#![cfg(feature = "trace")]
// Test code: unwrap/expect on setup failure is the desired failure mode
// (clippy.toml's allow-unwrap-in-tests covers #[test] fns only).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use xftl_core::XFtl;
use xftl_flash::{FlashChip, FlashConfig, SimClock};
use xftl_ftl::{BlockDevice, TxBlockDevice};
use xftl_trace::{parse_json, JsonValue, Telemetry};

/// One parsed event, reduced to the fields the assertions need.
struct Ev {
    op: String,
    tid: u64,
    lpn: u64,
    t_start: u64,
    t_end: u64,
}

fn parse_events(telemetry: &Telemetry) -> Vec<Ev> {
    let field = |v: &JsonValue, key: &str| v.get(key).and_then(JsonValue::as_f64).unwrap() as u64;
    telemetry
        .events_jsonl()
        .lines()
        .map(|line| {
            let v = parse_json(line).expect("event line parses");
            Ev {
                op: v.get("op").and_then(JsonValue::as_str).unwrap().to_string(),
                tid: field(&v, "tid"),
                lpn: field(&v, "lpn"),
                t_start: field(&v, "t_start"),
                t_end: field(&v, "t_end"),
            }
        })
        .collect()
}

#[test]
fn next_tx_writes_overlap_in_flight_commit() {
    let telemetry = Telemetry::new();
    let clock = SimClock::new();
    let mut chip = FlashChip::new(FlashConfig::tiny(64), clock);
    chip.set_recorder(telemetry.clone());
    let mut dev = XFtl::format_with_capacity(chip, 64, 64).unwrap();
    let ps = dev.page_size();

    // tx 1 writes, then submits its commit — visible, not yet durable.
    for lpn in 0..4u64 {
        dev.write_tx(1, lpn, &vec![0x11; ps]).unwrap();
    }
    telemetry.clear_events();
    let t1 = dev.commit_submit(1).unwrap();
    assert!(!t1.is_immediate(), "a real commit must stage");

    // tx 2's data writes go down while tx 1's commit is in flight.
    for lpn in 4..8u64 {
        dev.write_tx(2, lpn, &vec![0x22; ps]).unwrap();
    }
    let t2 = dev.commit_submit(2).unwrap();

    // Waiting on the newest ticket flushes the whole group; tx 1's older
    // ticket is already durable and its wait is a no-op.
    dev.commit_wait(t2).unwrap();
    dev.commit_wait(t1).unwrap();

    let events = parse_events(&telemetry);
    let submit1 = events
        .iter()
        .find(|e| e.op == "commit_pipeline_depth" && e.tid == 1)
        .expect("tx 1 submit sample");
    let commit1 = events
        .iter()
        .find(|e| e.op == "tx_commit" && e.tid == 1)
        .expect("tx 1 commit span");
    let commit2 = events
        .iter()
        .find(|e| e.op == "tx_commit" && e.tid == 2)
        .expect("tx 2 commit span");

    // tx 1's commit is in flight from submit until the group flush ends,
    // and the flush itself takes nonzero simulated time.
    assert!(submit1.t_start < commit1.t_end, "in-flight window is empty");
    assert!(commit1.t_start < commit1.t_end, "flush span is empty");

    // Every tx-2 data write must land inside tx 1's in-flight window —
    // after tx 1 submitted, before tx 1's commit became durable.
    let tx2_writes: Vec<&Ev> = events
        .iter()
        .filter(|e| e.op == "ftl_host_write" && e.tid == 2)
        .collect();
    assert_eq!(tx2_writes.len(), 4, "all four tx-2 writes traced");
    for w in &tx2_writes {
        assert!(
            w.t_start >= submit1.t_start && w.t_end <= commit1.t_end,
            "tx 2 write of lpn {} ({}..{}) outside tx 1's in-flight \
             commit ({}..{})",
            w.lpn,
            w.t_start,
            w.t_end,
            submit1.t_start,
            commit1.t_end,
        );
        // ...and strictly before the durability point starts: the write
        // overlapped the *pending* commit, it was not serialized after it.
        assert!(
            w.t_end <= commit1.t_start,
            "tx 2 write of lpn {} overlaps the flush itself",
            w.lpn
        );
    }

    // Both commits retired in the same group flush: identical spans, one
    // coalesce event counting two staged commits.
    assert_eq!(
        (commit1.t_start, commit1.t_end),
        (commit2.t_start, commit2.t_end),
        "tx 1 and tx 2 must share one group flush"
    );
    let coalesce = events
        .iter()
        .find(|e| e.op == "group_commit_coalesce")
        .expect("coalesce span");
    assert_eq!(coalesce.lpn, 2, "flush should coalesce both commits");

    // The pipeline-depth samples count the staged commits at each submit.
    let depth2 = events
        .iter()
        .find(|e| e.op == "commit_pipeline_depth" && e.tid == 2)
        .expect("tx 2 submit sample");
    assert_eq!(submit1.lpn, 1, "depth after first submit");
    assert_eq!(depth2.lpn, 2, "depth after second submit");
}
