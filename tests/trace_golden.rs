//! Golden event-stream test (`cargo test --features trace`): a fixed
//! 3-transaction workload on the full X-FTL stack must serialize the
//! exact JSONL event stream committed in `tests/golden/trace_3tx.jsonl`.
//!
//! Everything below the SQL layer runs on the simulated clock, so the
//! stream is byte-for-byte reproducible; any unintended change to
//! latency charging, command scheduling, or the pager's I/O pattern
//! shows up as a diff against the golden file. To bless an intended
//! change:
//!
//! ```text
//! XFTL_BLESS_GOLDEN=1 cargo test --features trace --test trace_golden
//! ```

#![cfg(feature = "trace")]
// Test code: unwrap/expect on setup failure is the desired failure mode
// (clippy.toml's allow-unwrap-in-tests covers #[test] fns only).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;

use xftl_workloads::rig::{Mode, Rig, RigConfig};

const GOLDEN: &str = "tests/golden/trace_3tx.jsonl";

/// The known workload: three explicit single-INSERT transactions on a
/// freshly formatted X-FTL rig.
fn run_workload() -> String {
    let rig = Rig::build(RigConfig {
        blocks: 64,
        logical_pages: 4_000,
        ..RigConfig::small(Mode::XFtl)
    });
    let mut db = rig.open_db("golden.db");
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INT)")
        .expect("ddl");
    let telemetry = rig.telemetry();
    // Only the three transactions belong in the golden stream; drop the
    // format/mkfs/DDL prelude.
    telemetry.clear_events();
    for i in 0..3i64 {
        db.execute("BEGIN").expect("begin");
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 10))
            .expect("insert");
        db.execute("COMMIT").expect("commit");
    }
    drop(db);
    telemetry.events_jsonl()
}

#[test]
fn three_tx_event_stream_matches_golden() {
    let got = run_workload();

    // The stream must exercise all three layers the tentpole names:
    // flash (chip programs), ftl (host writes + commit), db (SQL spans).
    for needle in [
        "\"layer\":\"flash\"",
        "\"layer\":\"ftl\"",
        "\"layer\":\"db\"",
        "\"op\":\"chip_program\"",
        "\"op\":\"tx_commit\"",
        "\"op\":\"sql_statement\"",
    ] {
        assert!(got.contains(needle), "event stream missing {needle}");
    }

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN);
    if std::env::var_os("XFTL_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "cannot read {GOLDEN}: {e}\n\
             bless it with: XFTL_BLESS_GOLDEN=1 cargo test --features trace --test trace_golden"
        )
    });
    if got != want {
        // Precise first-divergence report beats a 2x full-stream dump.
        let line = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()));
        panic!(
            "event stream diverges from {GOLDEN} at line {} \
             ({} got vs {} golden lines)\n got: {}\nwant: {}\n\
             if the change is intended: XFTL_BLESS_GOLDEN=1 cargo test --features trace --test trace_golden",
            line + 1,
            got.lines().count(),
            want.lines().count(),
            got.lines().nth(line).unwrap_or("<eof>"),
            want.lines().nth(line).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn event_stream_is_deterministic_across_runs() {
    assert_eq!(run_workload(), run_workload());
}
