//! # xftl-repro — workspace root
//!
//! This crate exists to host the runnable [examples](../examples) and the
//! cross-crate [integration tests](../tests); the library surface simply
//! re-exports the workspace crates for convenient one-import use.

#![forbid(unsafe_code)]

pub use xftl_core as core;
pub use xftl_db as db;
pub use xftl_flash as flash;
pub use xftl_fs as fs;
pub use xftl_ftl as ftl;
pub use xftl_workloads as workloads;
