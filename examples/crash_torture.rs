//! Crash torture: repeatedly pull the (simulated) power at random moments
//! of a SQLite workload and verify, after every recovery, that the
//! database holds exactly the committed prefix — the paper's §5.4
//! guarantees, exercised hundreds of times.
//!
//! ```sh
//! cargo run --release --example crash_torture [rounds]
//! ```

// Test/demo code: unwrap/expect on a setup failure is the right failure
// mode here; clippy.toml's `allow-unwrap-in-tests` only covers `#[test]`
// fns, not the shared helpers, so the allow is restated file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use xftl_db::Value;
use xftl_workloads::rig::{Mode, Rig, RigConfig};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for mode in [Mode::Rbj, Mode::Wal, Mode::XFtl] {
        let mut rig = Rig::build(RigConfig {
            blocks: 80,
            logical_pages: 6_000,
            ..RigConfig::small(mode)
        });
        {
            let mut db = rig.open_db("torture.db");
            db.execute("CREATE TABLE log (id INTEGER PRIMARY KEY, v INT)")
                .unwrap();
        }
        let mut committed: i64 = 0;
        let mut survived = 0usize;
        for round in 0..rounds {
            {
                let mut db = rig.open_db("torture.db");
                // Commit a batch...
                let n = rng.gen_range(1..=5);
                db.execute("BEGIN").unwrap();
                for _ in 0..n {
                    committed += 1;
                    db.execute_with(
                        "INSERT INTO log VALUES (?, ?)",
                        &[Value::Int(committed), Value::Int(round as i64)],
                    )
                    .unwrap();
                }
                db.execute("COMMIT").unwrap();
                // ...then crash mid-way through an uncommitted one.
                db.execute("BEGIN").unwrap();
                for k in 0..rng.gen_range(1..=8) {
                    db.execute_with(
                        "UPDATE log SET v = -1 WHERE id = ?",
                        &[Value::Int((k % committed) + 1)],
                    )
                    .unwrap();
                }
                // power cut: no COMMIT, everything dropped
            }
            let (recovered, recovery_ns) = rig.crash_and_recover();
            rig = recovered;
            let mut db = rig.open_db("torture.db");
            let rows = db
                .query("SELECT COUNT(*), MIN(v), MAX(id) FROM log")
                .unwrap();
            let count = rows[0][0].as_i64().unwrap();
            let min_v = rows[0][1].as_i64().unwrap();
            let max_id = rows[0][2].as_i64().unwrap();
            assert_eq!(
                count, committed,
                "{mode:?} round {round}: lost committed rows"
            );
            assert_eq!(
                max_id, committed,
                "{mode:?} round {round}: wrong id high-water"
            );
            assert!(
                min_v >= 0,
                "{mode:?} round {round}: uncommitted update leaked"
            );
            survived += 1;
            if round == 0 {
                println!(
                    "{:>6}: first recovery took {:.2} ms simulated",
                    mode.label(),
                    recovery_ns as f64 / 1e6
                );
            }
        }
        println!(
            "{:>6}: {survived}/{rounds} crash/recover rounds passed, {} rows intact",
            mode.label(),
            committed
        );
    }
    println!("\nAll modes preserved exactly the committed prefix after every crash.");
}
