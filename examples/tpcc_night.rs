//! OLTP scenario: a "nightly" TPC-C run on X-FTL with a full statistics
//! report from every layer of the stack.
//!
//! ```sh
//! cargo run --release --example tpcc_night [txns]
//! ```

// Test/demo code: unwrap/expect on a setup failure is the right failure
// mode here; clippy.toml's `allow-unwrap-in-tests` only covers `#[test]`
// fns, not the shared helpers, so the allow is restated file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use xftl_workloads::rig::{Mode, Rig, RigConfig};
use xftl_workloads::tpcc::{self, TpccDriver, TpccScale, WRITE_INTENSIVE};

fn main() {
    let txns: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let scale = TpccScale::default();
    let rig = Rig::build(RigConfig {
        mode: Mode::XFtl,
        blocks: 220,
        logical_pages: 18_000,
        ..RigConfig::small(Mode::XFtl)
    });
    let mut db = rig.open_db("tpcc.db");
    println!(
        "Loading TPC-C ({} warehouses, {} items)...",
        scale.warehouses, scale.items
    );
    tpcc::load(&mut db, &scale, 7);
    rig.reset_stats();
    db.reset_stats();

    println!("Running {txns} write-intensive transactions on X-FTL...");
    let mut driver = TpccDriver::new(scale, 11).with_clock(rig.clock.clone());
    let r = tpcc::run_mix(&mut db, &rig.clock, &mut driver, &WRITE_INTENSIVE, txns);
    let pstats = *db.pager_stats();
    drop(db);
    let snap = rig.snapshot();

    println!("\n== results ==");
    println!("throughput:        {:>10.0} txns/simulated-minute", r.tpm);
    println!(
        "elapsed:           {:>10.2} simulated seconds",
        r.elapsed_ns as f64 / 1e9
    );
    println!("\n== I/O by layer ==");
    println!("SQLite  DB writes: {:>10}", pstats.db_writes);
    println!(
        "SQLite  journal:   {:>10}  (journaling is OFF)",
        pstats.journal_writes
    );
    println!("SQLite  fsyncs:    {:>10}", pstats.fsyncs);
    println!("FS      metadata:  {:>10}", snap.fs.meta_writes);
    println!("FS      barriers:  {:>10}", snap.fs.barriers);
    println!("device  commits:   {:>10}", snap.dev.commits);
    println!("FTL     data:      {:>10}", snap.ftl.data_writes);
    println!("FTL     X-L2P:     {:>10}", snap.ftl.xl2p_writes);
    println!("FTL     GC copies: {:>10}", snap.ftl.gc_copies);
    println!("flash   programs:  {:>10}", snap.flash.programs);
    println!("flash   erases:    {:>10}", snap.flash.erases);
    if let Some(v) = snap.ftl.mean_gc_validity() {
        println!("GC victim validity: {:>8.1}%", v * 100.0);
    }
}
