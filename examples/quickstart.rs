//! Quickstart: the X-FTL stack from bare flash to SQL, in one file.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Test/demo code: unwrap/expect on a setup failure is the right failure
// mode here; clippy.toml's `allow-unwrap-in-tests` only covers `#[test]`
// fns, not the shared helpers, so the allow is restated file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::rc::Rc;

use xftl_core::XFtl;
use xftl_db::{Connection, DbJournalMode, Value};
use xftl_flash::{FlashChip, FlashConfigBuilder, SimClock};
use xftl_fs::{FileSystem, FsConfig, JournalMode};
use xftl_ftl::{BlockDevice, TxBlockDevice};

fn main() {
    // 1. A simulated OpenSSD-class flash array (8 KB pages, 128 pages per
    //    block, one channel) sharing one simulated clock with everything
    //    above it. Try `.channels(4)` to watch the total time drop.
    let clock = SimClock::new();
    let chip = FlashChip::new(
        FlashConfigBuilder::openssd().blocks(64).build(),
        clock.clone(),
    );

    // 2. X-FTL: the transactional flash translation layer.
    let mut dev = XFtl::format(chip, 5_000).expect("format");

    // --- the raw device-level API (the paper's extended SATA commands) ---
    let old = vec![1u8; dev.page_size()];
    let new = vec![2u8; dev.page_size()];
    dev.write(0, &old).unwrap();

    // Transaction 42 updates page 0 out of place...
    dev.write_tx(42, 0, &new).unwrap();
    let mut buf = vec![0u8; dev.page_size()];
    dev.read(0, &mut buf).unwrap();
    assert_eq!(buf, old, "not visible before commit");

    // ...and one commit command publishes it atomically and durably.
    dev.commit(42).unwrap();
    dev.read(0, &mut buf).unwrap();
    assert_eq!(buf, new);
    println!(
        "device-level transaction: OK ({} ns simulated)",
        clock.now()
    );

    // 3. The ext4-like file system in journaling-OFF mode: X-FTL supplies
    //    the atomicity its journal would have. `Off` mode requires the
    //    transactional command set, so it goes through `mkfs_tx`.
    let fs = FileSystem::mkfs_tx(dev, JournalMode::Off, FsConfig::default()).expect("mkfs");
    let fs = Rc::new(RefCell::new(fs));

    // 4. The SQLite-like database, also journaling OFF.
    let mut db = Connection::open(Rc::clone(&fs), "app.db", DbJournalMode::Off).expect("open");
    db.execute("CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT)")
        .unwrap();
    db.execute("BEGIN").unwrap();
    for i in 1..=10 {
        db.execute_with(
            "INSERT INTO notes (body) VALUES (?)",
            &[Value::Text(format!("note number {i}"))],
        )
        .unwrap();
    }
    db.execute("COMMIT").unwrap();

    let rows = db.query("SELECT COUNT(*) FROM notes").unwrap();
    println!("rows committed: {}", rows[0][0]);
    let stats = db.pager_stats();
    println!(
        "pager I/O: {} DB page writes, {} journal writes (no journal!), {} fsyncs",
        stats.db_writes, stats.journal_writes, stats.fsyncs
    );
    println!("total simulated time: {:.3} ms", clock.now() as f64 / 1e6);
}
