//! Smartphone scenario: replay the synthesized Android traces (the
//! paper's Figure 7 workloads) in WAL mode and with X-FTL, and compare.
//!
//! ```sh
//! cargo run --release --example smartphone [scale]
//! ```
//!
//! `scale` is the fraction of the published trace sizes to replay
//! (default 0.1; Table 2 scale is 1.0).

// Test/demo code: unwrap/expect on a setup failure is the right failure
// mode here; clippy.toml's `allow-unwrap-in-tests` only covers `#[test]`
// fns, not the shared helpers, so the allow is restated file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use xftl_workloads::android::{self, ALL_TRACES};
use xftl_workloads::rig::{Mode, Rig, RigConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("Replaying Android traces at scale {scale}\n");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>9}",
        "trace", "statements", "WAL (s)", "X-FTL (s)", "speedup"
    );
    for spec in &ALL_TRACES {
        let ops = android::synthesize(spec, scale, 2024);
        let mut elapsed = Vec::new();
        let mut statements = 0;
        for mode in [Mode::Wal, Mode::XFtl] {
            // Size the volume to the trace's insert volume plus one WAL
            // per database file.
            let inserts = (spec.inserts as f64 * scale) as u64;
            let blob_pages = if spec.blob_bytes > 0 { inserts / 2 } else { 0 };
            let hot = inserts / 8 + blob_pages + 1_100 * spec.db_files as u64 + 2_000;
            let rig = Rig::build(RigConfig {
                mode,
                blocks: ((hot as f64 * 3.6 / 128.0).ceil() as usize).max(48),
                logical_pages: hot * 2,
                ..RigConfig::small(mode)
            });
            let r = android::replay(&rig, spec, &ops);
            statements = r.statements;
            elapsed.push(r.elapsed_ns);
        }
        println!(
            "{:<14} {:>10} {:>12.2} {:>12.2} {:>8.1}x",
            spec.name,
            statements,
            elapsed[0] as f64 / 1e9,
            elapsed[1] as f64 / 1e9,
            elapsed[0] as f64 / elapsed[1] as f64,
        );
    }
    println!("\n(the paper reports 2.4x - 3.0x for these traces on real hardware)");
}
