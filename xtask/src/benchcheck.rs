//! `bench-check` — the perf-regression gate.
//!
//! Parses a freshly generated bench report (default `BENCH_all.json`)
//! and the committed baseline (default `BENCH_BASELINE.json`) and
//! compares every metric with a per-metric tolerance (counts exact,
//! simulated latencies/throughputs within 10 %). Missing or unexpected
//! metrics are violations too, so the baseline can't silently go stale.
//! On top of the baseline match, the pipeline gate demands the
//! split-phase commit win itself: deeper queues must raise X-FTL IOPS.

use std::fs;
use std::path::Path;

use xftl_trace::BenchReport;

/// Relative tolerance for one metric, chosen by naming convention: the
/// simulation is deterministic, so *counts* must match the baseline
/// exactly, while simulated *latencies and throughputs* — which shift
/// whenever the timing model is deliberately improved — get 10 % before
/// the gate demands a baseline refresh.
fn tolerance_for(name: &str) -> f64 {
    let timing_suffixes = ["_ns", "_iops", "_tps", "_tpm", "pages_per_txn"];
    if timing_suffixes.iter().any(|s| name.ends_with(s)) {
        0.10
    } else {
        0.0
    }
}

fn within(base: f64, fresh: f64, tol: f64) -> bool {
    if tol == 0.0 {
        return base == fresh;
    }
    // Scale-relative band, with an absolute floor so a 0-vs-1 jitter on
    // a near-zero latency doesn't trip the gate.
    (fresh - base).abs() <= tol * base.abs().max(1.0)
}

/// Flattens a report's metrics plus histogram summaries into one
/// comparable `(name, value)` list. Histogram fields inherit the field
/// suffix (`count` exact, `*_ns` tolerant) via [`tolerance_for`].
fn flatten(report: &BenchReport) -> Vec<(String, f64)> {
    let mut out = report.metrics.clone();
    for (name, s) in &report.hists {
        out.push((format!("{name}.count"), s.count as f64));
        out.push((format!("{name}.sum_ns"), s.sum_ns as f64));
        out.push((format!("{name}.p50_ns"), s.p50_ns as f64));
        out.push((format!("{name}.p95_ns"), s.p95_ns as f64));
        out.push((format!("{name}.p99_ns"), s.p99_ns as f64));
        out.push((format!("{name}.max_ns"), s.max_ns as f64));
    }
    out
}

/// Compares a fresh report against the committed baseline. Returns one
/// human-readable line per violation; empty means the gate passes.
pub fn compare_reports(baseline: &BenchReport, fresh: &BenchReport) -> Vec<String> {
    let base = flatten(baseline);
    let new = flatten(fresh);
    let mut violations = Vec::new();
    for (name, b) in &base {
        match new.iter().find(|(n, _)| n == name) {
            None => violations.push(format!("missing metric `{name}` (baseline has {b})")),
            Some((_, f)) => {
                let tol = tolerance_for(name);
                if !within(*b, *f, tol) {
                    violations.push(format!(
                        "`{name}`: fresh {f} vs baseline {b} (tolerance {:.0}%)",
                        tol * 100.0
                    ));
                }
            }
        }
    }
    for (name, f) in &new {
        if !base.iter().any(|(n, _)| n == name) {
            violations.push(format!(
                "new metric `{name}` = {f} not in baseline (refresh BENCH_BASELINE.json)"
            ));
        }
    }
    violations
}

/// The commit-pipeline gate: beyond matching the baseline, the fresh
/// report must exhibit the split-phase win itself — deeper queues raise
/// X-FTL IOPS. A regression that serializes the pipeline (every
/// commit_submit flushing immediately, say) would keep all depth-1
/// numbers bit-identical to the baseline, so only a direct qd1-vs-qdN
/// comparison catches it.
pub fn pipeline_gate(fresh: &BenchReport) -> Vec<String> {
    let get = |name: &str| {
        fresh
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    let mut violations = Vec::new();
    let pairs = [
        (
            "channels.qd1.xftl_iops",
            "channels.qd8.xftl_iops",
            "queue-depth sweep",
        ),
        (
            "fig9.wpf10.openssd_xftl_qd1_iops",
            "fig9.wpf10.openssd_xftl_iops",
            "fig9 pipelined row",
        ),
    ];
    for (shallow, deep, what) in pairs {
        match (get(shallow), get(deep)) {
            (Some(q1), Some(qn)) if qn <= q1 => violations.push(format!(
                "commit-pipeline win lost in {what}: `{deep}` {qn:.0} <= `{shallow}` {q1:.0}"
            )),
            (None, _) | (_, None) => violations.push(format!(
                "{what} metrics missing (`{shallow}` / `{deep}`) — pipeline gate cannot run"
            )),
            _ => {}
        }
    }
    violations
}

/// The concurrent-writer gate: the MVCC claim itself must hold in the
/// fresh report — four disjoint snapshot writers committing through the
/// split-phase pipeline must out-commit a single writer. A regression
/// that serializes snapshot commits (validation taking a global flush,
/// say) would leave single-writer numbers identical to the baseline, so
/// only the direct w1-vs-w4 comparison catches it.
pub fn concurrent_gate(fresh: &BenchReport) -> Vec<String> {
    let get = |name: &str| {
        fresh
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    let (shallow, deep) = (
        "concurrent.w1.disjoint_commit_tps",
        "concurrent.w4.disjoint_commit_tps",
    );
    match (get(shallow), get(deep)) {
        (Some(w1), Some(w4)) if w4 <= w1 => vec![format!(
            "concurrent-writer win lost: `{deep}` {w4:.0} <= `{shallow}` {w1:.0}"
        )],
        (None, _) | (_, None) => vec![format!(
            "concurrent sweep metrics missing (`{shallow}` / `{deep}`) — \
             concurrent gate cannot run"
        )],
        _ => Vec::new(),
    }
}

fn load_report(path: &Path) -> Result<BenchReport, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    BenchReport::from_json(&text).map_err(|e| format!("cannot parse {}: {}", path.display(), e.msg))
}

/// The `bench-check` command body: loads both reports, prints every
/// violation, returns the violation count.
pub fn bench_check(fresh_path: &Path, baseline_path: &Path) -> Result<usize, String> {
    let baseline = load_report(baseline_path)?;
    let fresh = load_report(fresh_path)?;
    if baseline.meta != fresh.meta {
        return Err(format!(
            "report meta mismatch (fresh {:?} vs baseline {:?}) — compare runs at the same scale",
            fresh.meta, baseline.meta
        ));
    }
    let mut violations = compare_reports(&baseline, &fresh);
    violations.extend(pipeline_gate(&fresh));
    violations.extend(concurrent_gate(&fresh));
    for v in &violations {
        println!("bench-check: {v}");
    }
    println!(
        "bench-check: {} vs {}: {} metric(s) compared, {} violation(s)",
        fresh_path.display(),
        baseline_path.display(),
        flatten(&baseline).len(),
        violations.len(),
    );
    Ok(violations.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(metrics: &[(&str, f64)]) -> BenchReport {
        let mut r = BenchReport::new("all");
        r.meta("scale", "smoke");
        for (n, v) in metrics {
            r.metric(n, *v);
        }
        r
    }

    #[test]
    fn bench_check_passes_on_identical_reports() {
        let base = report_with(&[
            ("table1.xftl.fsyncs", 12.0),
            ("fig5.v50.u5.xftl.elapsed_ns", 1e9),
        ]);
        assert!(compare_reports(&base, &base.clone()).is_empty());
    }

    #[test]
    fn bench_check_tolerates_small_timing_drift_only() {
        let base = report_with(&[("fig5.v50.u5.xftl.elapsed_ns", 1e9)]);
        // 8% latency drift: inside the 10% band.
        let fresh = report_with(&[("fig5.v50.u5.xftl.elapsed_ns", 1.08e9)]);
        assert!(compare_reports(&base, &fresh).is_empty());
        // 12% drift: violation (the negative test of the acceptance
        // criteria — a perturbed metric must fail the gate).
        let fresh = report_with(&[("fig5.v50.u5.xftl.elapsed_ns", 1.12e9)]);
        assert_eq!(compare_reports(&base, &fresh).len(), 1);
    }

    #[test]
    fn bench_check_counts_are_exact() {
        let base = report_with(&[("table1.xftl.fsyncs", 12.0)]);
        let fresh = report_with(&[("table1.xftl.fsyncs", 13.0)]);
        assert_eq!(compare_reports(&base, &fresh).len(), 1);
    }

    #[test]
    fn bench_check_flags_missing_and_extra_metrics() {
        let base = report_with(&[("a.count", 1.0), ("b.count", 2.0)]);
        let fresh = report_with(&[("a.count", 1.0), ("c.count", 3.0)]);
        let v = compare_reports(&base, &fresh);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("missing metric `b.count`")));
        assert!(v.iter().any(|m| m.contains("new metric `c.count`")));
    }

    #[test]
    fn bench_check_compares_histogram_summaries() {
        use xftl_trace::{OpClass, Recorder, Telemetry};
        let mk = |lat: u64| {
            let t = Telemetry::new();
            t.record(OpClass::TxCommit, lat);
            let mut r = BenchReport::new("all");
            r.attach_telemetry(&t);
            r
        };
        let base = mk(1_000_000);
        // Same count, latency shifted far beyond 10%: the *_ns hist
        // fields trip, the count field does not.
        let fresh = mk(2_000_000);
        let v = compare_reports(&base, &fresh);
        assert!(!v.is_empty());
        assert!(v.iter().all(|m| m.contains("_ns")), "{v:?}");
    }

    #[test]
    fn pipeline_gate_demands_a_queue_depth_win() {
        let winning = report_with(&[
            ("channels.qd1.xftl_iops", 700.0),
            ("channels.qd8.xftl_iops", 1400.0),
            ("fig9.wpf10.openssd_xftl_qd1_iops", 717.0),
            ("fig9.wpf10.openssd_xftl_iops", 1300.0),
        ]);
        assert!(pipeline_gate(&winning).is_empty());
        // A serialized pipeline (deep == shallow) is a regression.
        let flat = report_with(&[
            ("channels.qd1.xftl_iops", 700.0),
            ("channels.qd8.xftl_iops", 700.0),
            ("fig9.wpf10.openssd_xftl_qd1_iops", 717.0),
            ("fig9.wpf10.openssd_xftl_iops", 1300.0),
        ]);
        assert_eq!(pipeline_gate(&flat).len(), 1);
        // Dropping the sweep entirely must not silently pass.
        let missing = report_with(&[("channels.qd1.xftl_iops", 700.0)]);
        assert_eq!(pipeline_gate(&missing).len(), 2);
    }

    #[test]
    fn concurrent_gate_demands_a_multi_writer_win() {
        let winning = report_with(&[
            ("concurrent.w1.disjoint_commit_tps", 900.0),
            ("concurrent.w4.disjoint_commit_tps", 2100.0),
        ]);
        assert!(concurrent_gate(&winning).is_empty());
        // Serialized snapshot commits (w4 == w1) are a regression.
        let flat = report_with(&[
            ("concurrent.w1.disjoint_commit_tps", 900.0),
            ("concurrent.w4.disjoint_commit_tps", 900.0),
        ]);
        assert_eq!(concurrent_gate(&flat).len(), 1);
        // Dropping the sweep must not silently pass.
        let missing = report_with(&[("concurrent.w1.disjoint_commit_tps", 900.0)]);
        assert_eq!(concurrent_gate(&missing).len(), 1);
    }
}
