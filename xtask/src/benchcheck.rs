//! `bench-check` — the perf-regression gate.
//!
//! Parses a freshly generated bench report (default `BENCH_all.json`)
//! and the committed baseline (default `BENCH_BASELINE.json`) and
//! compares every metric with a per-metric tolerance (counts exact,
//! simulated latencies/throughputs within 10 %). Missing or unexpected
//! metrics are violations too, so the baseline can't silently go stale.
//! On top of the baseline match, the pipeline gate demands the
//! split-phase commit win itself: deeper queues must raise X-FTL IOPS.

use std::fs;
use std::path::Path;

use xftl_trace::BenchReport;

/// Relative tolerance for one metric, chosen by naming convention: the
/// simulation is deterministic, so *counts* must match the baseline
/// exactly, while simulated *latencies and throughputs* — which shift
/// whenever the timing model is deliberately improved — get 10 % before
/// the gate demands a baseline refresh.
fn tolerance_for(name: &str) -> f64 {
    let timing_suffixes = ["_ns", "_iops", "_tps", "_tpm", "_per_s", "pages_per_txn"];
    if timing_suffixes.iter().any(|s| name.ends_with(s)) {
        0.10
    } else {
        0.0
    }
}

fn within(base: f64, fresh: f64, tol: f64) -> bool {
    if tol == 0.0 {
        return base == fresh;
    }
    // Scale-relative band, with an absolute floor so a 0-vs-1 jitter on
    // a near-zero latency doesn't trip the gate.
    (fresh - base).abs() <= tol * base.abs().max(1.0)
}

/// Flattens a report's metrics plus histogram summaries into one
/// comparable `(name, value)` list. Histogram fields inherit the field
/// suffix (`count` exact, `*_ns` tolerant) via [`tolerance_for`].
fn flatten(report: &BenchReport) -> Vec<(String, f64)> {
    let mut out = report.metrics.clone();
    for (name, s) in &report.hists {
        out.push((format!("{name}.count"), s.count as f64));
        out.push((format!("{name}.sum_ns"), s.sum_ns as f64));
        out.push((format!("{name}.p50_ns"), s.p50_ns as f64));
        out.push((format!("{name}.p95_ns"), s.p95_ns as f64));
        out.push((format!("{name}.p99_ns"), s.p99_ns as f64));
        out.push((format!("{name}.max_ns"), s.max_ns as f64));
    }
    out
}

/// Outcome of a baseline comparison: `violations` fail the gate,
/// `warnings` are printed but let it pass.
#[derive(Debug, Default)]
pub struct Compared {
    pub violations: Vec<String>,
    pub warnings: Vec<String>,
}

/// Compares a fresh report against the committed baseline. Every
/// baseline metric must be present and within tolerance — a baseline
/// that goes stale is a hard failure either way. Metrics *new* in the
/// fresh report are violations by default (the baseline must be
/// refreshed deliberately), but `allow_new` downgrades exactly those to
/// warnings so a PR that adds instrumentation can land before its
/// baseline is re-blessed; missing metrics still fail.
pub fn compare_reports(baseline: &BenchReport, fresh: &BenchReport, allow_new: bool) -> Compared {
    let base = flatten(baseline);
    let new = flatten(fresh);
    let mut out = Compared::default();
    for (name, b) in &base {
        match new.iter().find(|(n, _)| n == name) {
            None => out
                .violations
                .push(format!("missing metric `{name}` (baseline has {b})")),
            Some((_, f)) => {
                let tol = tolerance_for(name);
                if !within(*b, *f, tol) {
                    out.violations.push(format!(
                        "`{name}`: fresh {f} vs baseline {b} (tolerance {:.0}%)",
                        tol * 100.0
                    ));
                }
            }
        }
    }
    for (name, f) in &new {
        if !base.iter().any(|(n, _)| n == name) {
            let line =
                format!("new metric `{name}` = {f} not in baseline (refresh the baseline file)");
            if allow_new {
                out.warnings.push(line);
            } else {
                out.violations.push(line);
            }
        }
    }
    out
}

/// The commit-pipeline gate: beyond matching the baseline, the fresh
/// report must exhibit the split-phase win itself — deeper queues raise
/// X-FTL IOPS. A regression that serializes the pipeline (every
/// commit_submit flushing immediately, say) would keep all depth-1
/// numbers bit-identical to the baseline, so only a direct qd1-vs-qdN
/// comparison catches it.
pub fn pipeline_gate(fresh: &BenchReport) -> Vec<String> {
    let get = |name: &str| {
        fresh
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    let mut violations = Vec::new();
    let pairs = [
        (
            "channels.qd1.xftl_iops",
            "channels.qd8.xftl_iops",
            "queue-depth sweep",
        ),
        (
            "fig9.wpf10.openssd_xftl_qd1_iops",
            "fig9.wpf10.openssd_xftl_iops",
            "fig9 pipelined row",
        ),
    ];
    for (shallow, deep, what) in pairs {
        match (get(shallow), get(deep)) {
            (Some(q1), Some(qn)) if qn <= q1 => violations.push(format!(
                "commit-pipeline win lost in {what}: `{deep}` {qn:.0} <= `{shallow}` {q1:.0}"
            )),
            (None, _) | (_, None) => violations.push(format!(
                "{what} metrics missing (`{shallow}` / `{deep}`) — pipeline gate cannot run"
            )),
            _ => {}
        }
    }
    violations
}

/// The concurrent-writer gate: the MVCC claim itself must hold in the
/// fresh report — four disjoint snapshot writers committing through the
/// split-phase pipeline must out-commit a single writer. A regression
/// that serializes snapshot commits (validation taking a global flush,
/// say) would leave single-writer numbers identical to the baseline, so
/// only the direct w1-vs-w4 comparison catches it.
pub fn concurrent_gate(fresh: &BenchReport) -> Vec<String> {
    let get = |name: &str| {
        fresh
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    let (shallow, deep) = (
        "concurrent.w1.disjoint_commit_tps",
        "concurrent.w4.disjoint_commit_tps",
    );
    match (get(shallow), get(deep)) {
        (Some(w1), Some(w4)) if w4 <= w1 => vec![format!(
            "concurrent-writer win lost: `{deep}` {w4:.0} <= `{shallow}` {w1:.0}"
        )],
        (None, _) | (_, None) => vec![format!(
            "concurrent sweep metrics missing (`{shallow}` / `{deep}`) — \
             concurrent gate cannot run"
        )],
        _ => Vec::new(),
    }
}

/// The GC steady-state gate: the demand-paged-mapping claims must hold
/// as *absolute* properties of the fresh report, independent of any
/// baseline drift. The mapping cache must serve > 80 % of translations
/// from RAM at the bench's bounded budget, cost-benefit victim
/// selection must beat greedy on write amplification under Zipfian
/// skew, and the resident-slab high-water mark must never exceed the
/// configured budget. Metrics present in the report but out of bounds
/// — or missing entirely — are violations; like the pipeline gate,
/// this catches regressions that a re-blessed baseline would launder.
pub fn steady_gate(fresh: &BenchReport) -> Vec<String> {
    let get = |name: &str| {
        fresh
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    let mut violations = Vec::new();
    let mut need = |name: &str| {
        let v = get(name);
        if v.is_none() {
            violations.push(format!("`{name}` missing — steady gate cannot run"));
        }
        v
    };
    let hit = need("steady.cb.map_cache_hit_rate");
    let cb_wa = need("steady.cb.wa");
    let greedy_wa = need("steady.greedy.wa");
    let budget = need("steady.cb.cache_budget_slabs");
    let resident = need("steady.cb.cache_resident_max");
    if let Some(h) = hit {
        if h <= 0.80 {
            violations.push(format!(
                "mapping-cache hit rate {h:.4} <= 0.80 — demand paging is thrashing"
            ));
        }
    }
    if let (Some(cb), Some(greedy)) = (cb_wa, greedy_wa) {
        if cb >= greedy {
            violations.push(format!(
                "cost-benefit WA {cb:.4} >= greedy WA {greedy:.4} — victim-selection win lost"
            ));
        }
    }
    if let (Some(r), Some(b)) = (resident, budget) {
        if r > b {
            violations.push(format!(
                "resident slabs peaked at {r:.0} over the budget of {b:.0} — cache bound broken"
            ));
        }
    }
    violations
}

/// Structural gate over the endurance sweep (`BENCH_endurance.json`):
/// X-FTL must keep every row readable *and* value-intact after
/// end-of-life recovery at every swept severity, the scrubber must hold
/// aging-induced uncorrectable reads at zero, and entry into the
/// degraded device state must be monotone in severity — a milder wear
/// environment degrading the device while a harsher one does not means
/// the health state machine is keyed to the wrong signal.
pub fn endurance_gate(fresh: &BenchReport) -> Vec<String> {
    let mut violations = Vec::new();
    // Severity keys look like `endurance.s1_failing.xftl.txns`; the
    // `s<rank>` prefix encodes the sweep order, mildest first.
    let mut sevs: Vec<(u64, String)> = Vec::new();
    for (n, _) in &fresh.metrics {
        let Some(rest) = n.strip_prefix("endurance.") else {
            continue;
        };
        let Some((sev, _)) = rest.split_once('.') else {
            continue;
        };
        let Some(rank) = sev
            .strip_prefix('s')
            .and_then(|s| s.split('_').next())
            .and_then(|d| d.parse::<u64>().ok())
        else {
            continue;
        };
        if !sevs.iter().any(|(_, s)| s == sev) {
            sevs.push((rank, sev.to_string()));
        }
    }
    sevs.sort();
    if sevs.is_empty() {
        violations.push("no `endurance.s<rank>_*` metrics — endurance gate cannot run".into());
        return violations;
    }
    let get = |name: &str| {
        fresh
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    let mut degraded = Vec::new();
    for (_, sev) in &sevs {
        let mut need = |metric: &str| {
            let name = format!("endurance.{sev}.xftl.{metric}");
            let v = get(&name);
            if v.is_none() {
                violations.push(format!("`{name}` missing — endurance gate cannot run"));
            }
            v
        };
        let readable = need("readable_fraction");
        let intact = need("intact_fraction");
        let uncorrectable = need("aging_uncorrectable");
        degraded.push(need("degraded"));
        if let Some(f) = readable {
            if f < 1.0 {
                violations.push(format!(
                    "X-FTL readable fraction {f:.4} < 1.0 at `{sev}` — rows lost at end of life"
                ));
            }
        }
        if let Some(f) = intact {
            if f < 1.0 {
                violations.push(format!(
                    "X-FTL intact fraction {f:.4} < 1.0 at `{sev}` — recovered values match no \
                     acknowledged commit"
                ));
            }
        }
        if let Some(u) = uncorrectable {
            if u != 0.0 {
                violations.push(format!(
                    "{u:.0} aging-induced uncorrectable read(s) at `{sev}` — the scrubber is not \
                     relocating at-risk blocks in time"
                ));
            }
        }
    }
    let mut milder_degraded: Option<&str> = None;
    for ((_, sev), d) in sevs.iter().zip(&degraded) {
        match d {
            Some(v) if *v != 0.0 => milder_degraded = Some(sev),
            Some(_) => {
                if let Some(m) = milder_degraded {
                    violations.push(format!(
                        "`{sev}` left the device healthy although milder `{m}` degraded it — \
                         degraded entry not monotone in severity"
                    ));
                }
            }
            None => {}
        }
    }
    violations
}

fn load_report(path: &Path) -> Result<BenchReport, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    BenchReport::from_json(&text).map_err(|e| format!("cannot parse {}: {}", path.display(), e.msg))
}

/// The `bench-check` command body: loads both reports, prints every
/// violation, returns the violation count. The structural gates
/// dispatch on the report name: the `all` report carries the pipeline
/// and concurrent sweeps, the `steady` report carries the GC
/// steady-state metrics (a future `all` that folds them in gets the
/// steady gate too, keyed on metric presence).
pub fn bench_check(
    fresh_path: &Path,
    baseline_path: &Path,
    allow_new: bool,
) -> Result<usize, String> {
    let baseline = load_report(baseline_path)?;
    let fresh = load_report(fresh_path)?;
    if baseline.meta != fresh.meta {
        return Err(format!(
            "report meta mismatch (fresh {:?} vs baseline {:?}) — compare runs at the same scale",
            fresh.meta, baseline.meta
        ));
    }
    let compared = compare_reports(&baseline, &fresh, allow_new);
    let mut violations = compared.violations;
    if fresh.name == "all" {
        violations.extend(pipeline_gate(&fresh));
        violations.extend(concurrent_gate(&fresh));
    }
    let has_steady = |r: &BenchReport| r.metrics.iter().any(|(n, _)| n.starts_with("steady."));
    if fresh.name == "steady" || has_steady(&fresh) || has_steady(&baseline) {
        violations.extend(steady_gate(&fresh));
    }
    let has_endurance =
        |r: &BenchReport| r.metrics.iter().any(|(n, _)| n.starts_with("endurance."));
    if fresh.name == "endurance" || has_endurance(&fresh) || has_endurance(&baseline) {
        violations.extend(endurance_gate(&fresh));
    }
    for w in &compared.warnings {
        println!("bench-check: warning: {w}");
    }
    for v in &violations {
        println!("bench-check: {v}");
    }
    println!(
        "bench-check: {} vs {}: {} metric(s) compared, {} violation(s), {} warning(s)",
        fresh_path.display(),
        baseline_path.display(),
        flatten(&baseline).len(),
        violations.len(),
        compared.warnings.len(),
    );
    Ok(violations.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(metrics: &[(&str, f64)]) -> BenchReport {
        let mut r = BenchReport::new("all");
        r.meta("scale", "smoke");
        for (n, v) in metrics {
            r.metric(n, *v);
        }
        r
    }

    #[test]
    fn bench_check_passes_on_identical_reports() {
        let base = report_with(&[
            ("table1.xftl.fsyncs", 12.0),
            ("fig5.v50.u5.xftl.elapsed_ns", 1e9),
        ]);
        assert!(compare_reports(&base, &base.clone(), false)
            .violations
            .is_empty());
    }

    #[test]
    fn bench_check_tolerates_small_timing_drift_only() {
        let base = report_with(&[("fig5.v50.u5.xftl.elapsed_ns", 1e9)]);
        // 8% latency drift: inside the 10% band.
        let fresh = report_with(&[("fig5.v50.u5.xftl.elapsed_ns", 1.08e9)]);
        assert!(compare_reports(&base, &fresh, false).violations.is_empty());
        // 12% drift: violation (the negative test of the acceptance
        // criteria — a perturbed metric must fail the gate).
        let fresh = report_with(&[("fig5.v50.u5.xftl.elapsed_ns", 1.12e9)]);
        assert_eq!(compare_reports(&base, &fresh, false).violations.len(), 1);
    }

    #[test]
    fn bench_check_counts_are_exact() {
        let base = report_with(&[("table1.xftl.fsyncs", 12.0)]);
        let fresh = report_with(&[("table1.xftl.fsyncs", 13.0)]);
        assert_eq!(compare_reports(&base, &fresh, false).violations.len(), 1);
    }

    #[test]
    fn bench_check_flags_missing_and_extra_metrics() {
        let base = report_with(&[("a.count", 1.0), ("b.count", 2.0)]);
        let fresh = report_with(&[("a.count", 1.0), ("c.count", 3.0)]);
        let v = compare_reports(&base, &fresh, false).violations;
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("missing metric `b.count`")));
        assert!(v.iter().any(|m| m.contains("new metric `c.count`")));
    }

    #[test]
    fn allow_new_downgrades_new_metrics_but_not_missing_ones() {
        let base = report_with(&[("a.count", 1.0), ("b.count", 2.0)]);
        let fresh = report_with(&[("a.count", 1.0), ("c.count", 3.0)]);
        let out = compare_reports(&base, &fresh, true);
        // The new metric is a warning, the missing one still fails.
        assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
        assert!(out.violations[0].contains("missing metric `b.count`"));
        assert_eq!(out.warnings.len(), 1, "{:?}", out.warnings);
        assert!(out.warnings[0].contains("new metric `c.count`"));
        // A drifted metric is never downgraded by --allow-new.
        let drifted = report_with(&[("a.count", 7.0), ("b.count", 2.0)]);
        assert_eq!(compare_reports(&base, &drifted, true).violations.len(), 1);
    }

    #[test]
    fn bench_check_compares_histogram_summaries() {
        use xftl_trace::{OpClass, Recorder, Telemetry};
        let mk = |lat: u64| {
            let t = Telemetry::new();
            t.record(OpClass::TxCommit, lat);
            let mut r = BenchReport::new("all");
            r.attach_telemetry(&t);
            r
        };
        let base = mk(1_000_000);
        // Same count, latency shifted far beyond 10%: the *_ns hist
        // fields trip, the count field does not.
        let fresh = mk(2_000_000);
        let v = compare_reports(&base, &fresh, false).violations;
        assert!(!v.is_empty());
        assert!(v.iter().all(|m| m.contains("_ns")), "{v:?}");
    }

    #[test]
    fn pipeline_gate_demands_a_queue_depth_win() {
        let winning = report_with(&[
            ("channels.qd1.xftl_iops", 700.0),
            ("channels.qd8.xftl_iops", 1400.0),
            ("fig9.wpf10.openssd_xftl_qd1_iops", 717.0),
            ("fig9.wpf10.openssd_xftl_iops", 1300.0),
        ]);
        assert!(pipeline_gate(&winning).is_empty());
        // A serialized pipeline (deep == shallow) is a regression.
        let flat = report_with(&[
            ("channels.qd1.xftl_iops", 700.0),
            ("channels.qd8.xftl_iops", 700.0),
            ("fig9.wpf10.openssd_xftl_qd1_iops", 717.0),
            ("fig9.wpf10.openssd_xftl_iops", 1300.0),
        ]);
        assert_eq!(pipeline_gate(&flat).len(), 1);
        // Dropping the sweep entirely must not silently pass.
        let missing = report_with(&[("channels.qd1.xftl_iops", 700.0)]);
        assert_eq!(pipeline_gate(&missing).len(), 2);
    }

    #[test]
    fn concurrent_gate_demands_a_multi_writer_win() {
        let winning = report_with(&[
            ("concurrent.w1.disjoint_commit_tps", 900.0),
            ("concurrent.w4.disjoint_commit_tps", 2100.0),
        ]);
        assert!(concurrent_gate(&winning).is_empty());
        // Serialized snapshot commits (w4 == w1) are a regression.
        let flat = report_with(&[
            ("concurrent.w1.disjoint_commit_tps", 900.0),
            ("concurrent.w4.disjoint_commit_tps", 900.0),
        ]);
        assert_eq!(concurrent_gate(&flat).len(), 1);
        // Dropping the sweep must not silently pass.
        let missing = report_with(&[("concurrent.w1.disjoint_commit_tps", 900.0)]);
        assert_eq!(concurrent_gate(&missing).len(), 1);
    }

    fn steady_report(hit: f64, cb_wa: f64, greedy_wa: f64, resident: f64) -> BenchReport {
        report_with(&[
            ("steady.cb.map_cache_hit_rate", hit),
            ("steady.cb.wa", cb_wa),
            ("steady.greedy.wa", greedy_wa),
            ("steady.cb.cache_budget_slabs", 100.0),
            ("steady.cb.cache_resident_max", resident),
        ])
    }

    #[test]
    fn steady_gate_demands_hit_rate_and_wa_win() {
        // The healthy shape: hot cache, cost-benefit beats greedy,
        // residency under budget.
        assert!(steady_gate(&steady_report(0.87, 2.8, 3.4, 100.0)).is_empty());
        // Thrashing cache: hit rate at or under the 80% floor fails.
        assert_eq!(steady_gate(&steady_report(0.80, 2.8, 3.4, 100.0)).len(), 1);
        // Victim-selection win lost: cost-benefit WA >= greedy WA.
        assert_eq!(steady_gate(&steady_report(0.87, 3.4, 3.4, 100.0)).len(), 1);
        // Budget overrun: resident high-water mark above the budget.
        assert_eq!(steady_gate(&steady_report(0.87, 2.8, 3.4, 101.0)).len(), 1);
    }

    #[test]
    fn steady_gate_fails_when_metrics_are_missing() {
        // Dropping the steady metrics entirely must not silently pass.
        let v = steady_gate(&report_with(&[("steady.logical_pages", 1000.0)]));
        assert_eq!(v.len(), 5, "{v:?}");
        assert!(v.iter().all(|m| m.contains("missing")));
    }

    fn endurance_cell(
        sev: &str,
        readable: f64,
        intact: f64,
        unc: f64,
        deg: f64,
    ) -> Vec<(String, f64)> {
        vec![
            (format!("endurance.{sev}.xftl.readable_fraction"), readable),
            (format!("endurance.{sev}.xftl.intact_fraction"), intact),
            (format!("endurance.{sev}.xftl.aging_uncorrectable"), unc),
            (format!("endurance.{sev}.xftl.degraded"), deg),
        ]
    }

    fn endurance_report(cells: Vec<Vec<(String, f64)>>) -> BenchReport {
        let mut r = BenchReport::new("endurance");
        r.meta("scale", "smoke");
        for (n, v) in cells.into_iter().flatten() {
            r.metric(&n, v);
        }
        r
    }

    #[test]
    fn endurance_gate_passes_a_clean_sweep() {
        let r = endurance_report(vec![
            endurance_cell("s0_worn", 1.0, 1.0, 0.0, 0.0),
            endurance_cell("s1_failing", 1.0, 1.0, 0.0, 1.0),
            endurance_cell("s2_dying", 1.0, 1.0, 0.0, 1.0),
        ]);
        assert!(endurance_gate(&r).is_empty());
    }

    #[test]
    fn endurance_gate_flags_readability_and_intactness_loss() {
        let r = endurance_report(vec![
            endurance_cell("s0_worn", 1.0, 1.0, 0.0, 0.0),
            endurance_cell("s1_failing", 0.97, 0.92, 0.0, 1.0),
        ]);
        let v = endurance_gate(&r);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("readable fraction 0.9700"), "{v:?}");
        assert!(v[1].contains("intact fraction 0.9200"), "{v:?}");
    }

    #[test]
    fn endurance_gate_flags_scrubber_misses() {
        let r = endurance_report(vec![endurance_cell("s0_worn", 1.0, 1.0, 3.0, 1.0)]);
        let v = endurance_gate(&r);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("uncorrectable"), "{v:?}");
    }

    #[test]
    fn endurance_gate_demands_monotone_degraded_entry() {
        // The middle severity degrades, the harshest does not: the health
        // state machine is keyed to the wrong signal.
        let r = endurance_report(vec![
            endurance_cell("s0_worn", 1.0, 1.0, 0.0, 0.0),
            endurance_cell("s1_failing", 1.0, 1.0, 0.0, 1.0),
            endurance_cell("s2_dying", 1.0, 1.0, 0.0, 0.0),
        ]);
        let v = endurance_gate(&r);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("not monotone"), "{v:?}");
    }

    #[test]
    fn endurance_gate_fails_when_metrics_are_missing() {
        // A report carrying only the transaction counts must not pass.
        let r = report_with(&[
            ("endurance.s0_worn.xftl.txns", 1500.0),
            ("endurance.s1_failing.xftl.txns", 400.0),
        ]);
        let v = endurance_gate(&r);
        assert_eq!(v.len(), 8, "{v:?}");
        assert!(v.iter().all(|m| m.contains("missing")));
    }

    #[test]
    fn endurance_gate_needs_the_sweep_at_all() {
        let v = endurance_gate(&report_with(&[("endurance.other", 1.0)]));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("cannot run"));
    }
}
