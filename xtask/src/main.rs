//! # xtask — repository automation
//!
//! Run with `cargo run -p xtask -- <command>`:
//!
//! - `analyze [--json PATH] [--features LIST] [--lints LIST]` — the
//!   `xftl-analyze` static analysis engine: AST-level domain lints over
//!   the whole workspace with rustc-style span diagnostics, a JSON
//!   findings report (default `ANALYZE_REPORT.json`), and a
//!   `BENCH_`-style summary line. Exits nonzero on any violation.
//! - `analyze --selftest` — mutation self-test: every lint must fire on
//!   its seeded fixture violation and stay quiet on the clean twin; a
//!   lint that cannot fire is a failure naming the lint.
//! - `lint-sim` — alias for the determinism subset (`sim-clock` +
//!   `unsafe-wall`), preserving the historic command the CI and docs
//!   reference. The old line-grep implementation is gone; this runs on
//!   the same engine, so comments and strings can no longer trip it.
//! - `bench-check [fresh] [baseline] [--allow-new]` — the
//!   perf-regression gate over `BENCH_*.json` reports (see
//!   [`xtask::benchcheck`]). `--allow-new` downgrades metrics the
//!   baseline lacks to warnings so instrumentation can land ahead of a
//!   baseline re-bless; missing or drifted metrics still fail.
//!
//! Waiver policy, lint catalogue, and the fixture corpus are documented
//! in DESIGN.md ("Static analysis") and in [`xtask::analyze`].

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::analyze::{self, Config};
use xtask::benchcheck;

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR points at xtask/; the repo root is its parent.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

/// `analyze` subcommand: parses flags, runs the engine, writes the
/// report, prints diagnostics + summary.
fn run_analyze(args: &[String], lints: Option<Vec<&'static str>>) -> ExitCode {
    let root = repo_root();
    let mut cfg = Config::default();
    if let Some(lints) = lints {
        cfg.lints = lints;
    }
    let mut json_path = root.join("ANALYZE_REPORT.json");
    let mut selftest = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--selftest" => selftest = true,
            "--json" => {
                if let Some(p) = args.get(i + 1) {
                    json_path = PathBuf::from(p);
                    i += 1;
                }
            }
            "--features" => {
                if let Some(list) = args.get(i + 1) {
                    cfg.features = list
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    i += 1;
                }
            }
            "--lints" => {
                if let Some(list) = args.get(i + 1) {
                    let wanted: Vec<&'static str> = analyze::lints::LINTS
                        .into_iter()
                        .filter(|l| list.split(',').any(|w| w.trim() == *l))
                        .collect();
                    cfg.lints = wanted;
                    i += 1;
                }
            }
            other => {
                eprintln!("analyze: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if selftest {
        let failures = analyze::selftest(&root);
        if failures.is_empty() {
            println!(
                "analyze --selftest: all {} lints proven live against the fixture corpus",
                analyze::lints::LINTS.len()
            );
            return ExitCode::SUCCESS;
        }
        for f in &failures {
            eprintln!("analyze --selftest: {f}");
        }
        return ExitCode::FAILURE;
    }

    let analysis = analyze::analyze_repo(&root, &cfg);
    print!("{}", analysis.render_text());
    if let Err(e) = fs::write(&json_path, analysis.to_json()) {
        eprintln!("analyze: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    println!("{}", analysis.summary_line());
    if analysis.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("analyze") => run_analyze(&args[2..], None),
        // Historic alias: the determinism wall, now on the AST engine.
        Some("lint-sim") => run_analyze(&args[2..], Some(vec!["sim-clock", "unsafe-wall"])),
        Some("bench-check") => {
            let root = repo_root();
            let mut allow_new = false;
            let mut paths = Vec::new();
            for arg in &args[2..] {
                match arg.as_str() {
                    "--allow-new" => allow_new = true,
                    other if other.starts_with("--") => {
                        eprintln!("bench-check: unknown flag `{other}`");
                        return ExitCode::FAILURE;
                    }
                    path => paths.push(PathBuf::from(path)),
                }
            }
            let fresh = paths
                .first()
                .cloned()
                .unwrap_or_else(|| root.join("BENCH_all.json"));
            let baseline = paths
                .get(1)
                .cloned()
                .unwrap_or_else(|| root.join("BENCH_BASELINE.json"));
            match benchcheck::bench_check(&fresh, &baseline, allow_new) {
                Ok(0) => ExitCode::SUCCESS,
                Ok(_) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("bench-check: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <command>\n\
                 \n\
                 commands:\n\
                 \x20 analyze [--json P] [--features L] [--lints L]  domain lint suite (JSON report + summary)\n\
                 \x20 analyze --selftest               prove every lint live against the fixtures\n\
                 \x20 lint-sim                         determinism wall (sim-clock + unsafe-wall)\n\
                 \x20 bench-check [fresh] [baseline] [--allow-new]\n\
                 \x20                                  compare bench reports; --allow-new downgrades\n\
                 \x20                                  metrics absent from the baseline to warnings\n\
                 \x20                                  (defaults: BENCH_all.json BENCH_BASELINE.json)"
            );
            ExitCode::FAILURE
        }
    }
}
