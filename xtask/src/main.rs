//! # xtask — repository automation
//!
//! Run with `cargo run -p xtask -- <command>`. The only command today is
//! `lint-sim`, the determinism wall: the whole simulator is driven by the
//! shared [`SimClock`], so any host wall-clock read, host sleep, or
//! OS-seeded randomness inside simulator code silently breaks
//! reproducibility without failing a single test. `lint-sim` greps the
//! source tree for the banned constructs and fails loudly instead.
//!
//! A line that legitimately needs the host clock (e.g. a benchmark
//! harness measuring *host* elapsed time) carries a
//! `lint-sim: allow` marker comment and is skipped.
//!
//! `lint-sim` also enforces that every crate root carries
//! `#![forbid(unsafe_code)]`, keeping the workspace-level deny from being
//! re-allowed locally.
//!
//! [`SimClock`]: ../xftl_flash/clock/struct.SimClock.html

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The waiver marker: a matched line containing this string is accepted.
const ALLOW_MARKER: &str = "lint-sim: allow";

/// Banned source constructs. Assembled with `concat!` so this file does
/// not itself contain the contiguous tokens it bans.
fn banned_patterns() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            concat!("std::time::", "Instant"),
            "host wall clock (use SimClock)",
        ),
        (
            concat!("Instant::", "now"),
            "host wall clock (use SimClock)",
        ),
        (concat!("System", "Time"), "host wall clock (use SimClock)"),
        (
            concat!("thread::", "sleep"),
            "host sleep (simulated time never needs it)",
        ),
        (
            concat!("thread_", "rng"),
            "OS-seeded randomness (use a seeded StdRng)",
        ),
        (
            concat!("from_", "entropy"),
            "OS-seeded randomness (use a seeded StdRng)",
        ),
        // Fault schedules must replay from their printed seed alone, so
        // every random draw in a fault plan goes through the in-tree
        // simrand stream — no ad-hoc entropy or hand-rolled generators.
        (
            concat!("rand::", "random"),
            "ambient randomness (fault plans and RNG streams take explicit simrand seeds)",
        ),
        (
            concat!("Random", "State"),
            "OS-randomized hasher (derive seeds explicitly, not from hash entropy)",
        ),
        (
            concat!("63641362238", "46793005"),
            "hand-rolled LCG (use the seeded simrand StdRng)",
        ),
        (
            concat!("0x2545F4914", "F6CDD1D"),
            "hand-rolled xorshift* (use the seeded simrand StdRng)",
        ),
    ]
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans simulator source for banned wall-clock / entropy constructs and
/// checks every crate root forbids `unsafe`. Returns the number of
/// violations found, printing each.
fn lint_sim(root: &Path) -> usize {
    let banned = banned_patterns();
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples"] {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut violations = 0;
    let mut report = String::new();
    for file in &files {
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        for (idx, line) in text.lines().enumerate() {
            if line.contains(ALLOW_MARKER) {
                continue;
            }
            for (pat, why) in &banned {
                if line.contains(pat) {
                    violations += 1;
                    let _ = writeln!(report, "{}:{}: `{pat}` — {why}", file.display(), idx + 1,);
                }
            }
        }
    }

    // Crate-root unsafe wall: every lib.rs under crates/, plus this file.
    let mut roots: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.push(root.join("xtask/src/main.rs"));
    roots.sort();
    for lib in &roots {
        let Ok(text) = fs::read_to_string(lib) else {
            continue;
        };
        if !text.contains(concat!("#![forbid(", "unsafe_code)]")) {
            violations += 1;
            let _ = writeln!(
                report,
                "{}: crate root missing #![forbid(unsafe_code)]",
                lib.display(),
            );
        }
    }

    print!("{report}");
    println!(
        "lint-sim: scanned {} files, {} crate roots, {violations} violation(s)",
        files.len(),
        roots.len(),
    );
    violations
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    // CARGO_MANIFEST_DIR points at xtask/; the repo root is its parent.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    match args.get(1).map(String::as_str) {
        Some("lint-sim") => {
            if lint_sim(&root) == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint-sim");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_do_not_match_their_own_definitions() {
        // This file assembles patterns with concat!, so linting the xtask
        // source itself (not scanned, but belt and braces) finds nothing.
        let text = fs::read_to_string(file!()).unwrap_or_default();
        for (pat, _) in banned_patterns() {
            for line in text.lines() {
                if line.contains(ALLOW_MARKER) {
                    continue;
                }
                assert!(!line.contains(pat), "self-match on pattern {pat}: {line}");
            }
        }
    }

    #[test]
    fn repo_passes_lint_sim() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
        assert_eq!(lint_sim(&root), 0);
    }
}
