//! # xtask — repository automation
//!
//! Run with `cargo run -p xtask -- <command>`. Two commands:
//!
//! - `lint-sim` — the determinism wall: the whole simulator is driven by
//!   the shared [`SimClock`], so any host wall-clock read, host sleep, or
//!   OS-seeded randomness inside simulator code silently breaks
//!   reproducibility without failing a single test. `lint-sim` greps the
//!   source tree for the banned constructs and fails loudly instead.
//! - `bench-check [fresh] [baseline]` — the perf-regression gate: parses
//!   a freshly generated bench report (default `BENCH_all.json`) and the
//!   committed baseline (default `BENCH_BASELINE.json`) and compares
//!   every metric with a per-metric tolerance (counts exact, simulated
//!   latencies/throughputs within 10 %). Missing or unexpected metrics
//!   are violations too, so the baseline can't silently go stale.
//!
//! A line that legitimately needs the host clock (e.g. a benchmark
//! harness measuring *host* elapsed time) carries a
//! `lint-sim: allow` marker comment and is skipped — except inside
//! `crates/trace`, where no waiver is honoured: the telemetry layer is
//! the thing whose determinism everything else leans on, so it may only
//! ever ingest SimClock timestamps.
//!
//! `lint-sim` also enforces that every crate root carries
//! `#![forbid(unsafe_code)]`, keeping the workspace-level deny from being
//! re-allowed locally.
//!
//! [`SimClock`]: ../xftl_flash/clock/struct.SimClock.html

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xftl_trace::BenchReport;

/// The waiver marker: a matched line containing this string is accepted
/// (everywhere except `crates/trace` — see [`NO_WAIVER_DIR`]).
const ALLOW_MARKER: &str = "lint-sim: allow";

/// Directory whose sources get no waivers and stricter patterns: the
/// telemetry crate must only ever ingest SimClock timestamps.
const NO_WAIVER_DIR: &str = "crates/trace";

/// Banned source constructs. Assembled with `concat!` so this file does
/// not itself contain the contiguous tokens it bans.
fn banned_patterns() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            concat!("std::time::", "Instant"),
            "host wall clock (use SimClock)",
        ),
        (
            concat!("Instant::", "now"),
            "host wall clock (use SimClock)",
        ),
        (concat!("System", "Time"), "host wall clock (use SimClock)"),
        (
            concat!("thread::", "sleep"),
            "host sleep (simulated time never needs it)",
        ),
        (
            concat!("thread_", "rng"),
            "OS-seeded randomness (use a seeded StdRng)",
        ),
        (
            concat!("from_", "entropy"),
            "OS-seeded randomness (use a seeded StdRng)",
        ),
        // Fault schedules must replay from their printed seed alone, so
        // every random draw in a fault plan goes through the in-tree
        // simrand stream — no ad-hoc entropy or hand-rolled generators.
        (
            concat!("rand::", "random"),
            "ambient randomness (fault plans and RNG streams take explicit simrand seeds)",
        ),
        (
            concat!("Random", "State"),
            "OS-randomized hasher (derive seeds explicitly, not from hash entropy)",
        ),
        (
            concat!("63641362238", "46793005"),
            "hand-rolled LCG (use the seeded simrand StdRng)",
        ),
        (
            concat!("0x2545F4914", "F6CDD1D"),
            "hand-rolled xorshift* (use the seeded simrand StdRng)",
        ),
    ]
}

/// Patterns banned inside [`NO_WAIVER_DIR`] on top of the global set:
/// any `std::time` reach-through (`Duration` parsing included) is out —
/// the trace crate's only time type is the simulated `Nanos`.
fn trace_only_patterns() -> Vec<(&'static str, &'static str)> {
    vec![(
        concat!("std::", "time"),
        "host time types in the telemetry crate (ingest SimClock Nanos only)",
    )]
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans simulator source for banned wall-clock / entropy constructs and
/// checks every crate root forbids `unsafe`. Returns the number of
/// violations found, printing each.
fn lint_sim(root: &Path) -> usize {
    let banned = banned_patterns();
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples"] {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let trace_only = trace_only_patterns();
    let no_waiver_root = root.join(NO_WAIVER_DIR);
    let mut violations = 0;
    let mut report = String::new();
    for file in &files {
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        let no_waiver = file.starts_with(&no_waiver_root);
        for (idx, line) in text.lines().enumerate() {
            if line.contains(ALLOW_MARKER) && !no_waiver {
                continue;
            }
            for (pat, why) in &banned {
                if line.contains(pat) {
                    violations += 1;
                    let _ = writeln!(report, "{}:{}: `{pat}` — {why}", file.display(), idx + 1,);
                }
            }
            if no_waiver {
                for (pat, why) in &trace_only {
                    if line.contains(pat) {
                        violations += 1;
                        let _ =
                            writeln!(report, "{}:{}: `{pat}` — {why}", file.display(), idx + 1,);
                    }
                }
            }
        }
    }

    // Crate-root unsafe wall: every lib.rs under crates/, plus this file.
    let mut roots: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.push(root.join("xtask/src/main.rs"));
    roots.sort();
    for lib in &roots {
        let Ok(text) = fs::read_to_string(lib) else {
            continue;
        };
        if !text.contains(concat!("#![forbid(", "unsafe_code)]")) {
            violations += 1;
            let _ = writeln!(
                report,
                "{}: crate root missing #![forbid(unsafe_code)]",
                lib.display(),
            );
        }
    }

    print!("{report}");
    println!(
        "lint-sim: scanned {} files, {} crate roots, {violations} violation(s)",
        files.len(),
        roots.len(),
    );
    violations
}

// --- bench-check: the perf-regression gate -------------------------------

/// Relative tolerance for one metric, chosen by naming convention: the
/// simulation is deterministic, so *counts* must match the baseline
/// exactly, while simulated *latencies and throughputs* — which shift
/// whenever the timing model is deliberately improved — get 10 % before
/// the gate demands a baseline refresh.
fn tolerance_for(name: &str) -> f64 {
    let timing_suffixes = ["_ns", "_iops", "_tps", "_tpm", "pages_per_txn"];
    if timing_suffixes.iter().any(|s| name.ends_with(s)) {
        0.10
    } else {
        0.0
    }
}

fn within(base: f64, fresh: f64, tol: f64) -> bool {
    if tol == 0.0 {
        return base == fresh;
    }
    // Scale-relative band, with an absolute floor so a 0-vs-1 jitter on
    // a near-zero latency doesn't trip the gate.
    (fresh - base).abs() <= tol * base.abs().max(1.0)
}

/// Flattens a report's metrics plus histogram summaries into one
/// comparable `(name, value)` list. Histogram fields inherit the field
/// suffix (`count` exact, `*_ns` tolerant) via [`tolerance_for`].
fn flatten(report: &BenchReport) -> Vec<(String, f64)> {
    let mut out = report.metrics.clone();
    for (name, s) in &report.hists {
        out.push((format!("{name}.count"), s.count as f64));
        out.push((format!("{name}.sum_ns"), s.sum_ns as f64));
        out.push((format!("{name}.p50_ns"), s.p50_ns as f64));
        out.push((format!("{name}.p95_ns"), s.p95_ns as f64));
        out.push((format!("{name}.p99_ns"), s.p99_ns as f64));
        out.push((format!("{name}.max_ns"), s.max_ns as f64));
    }
    out
}

/// Compares a fresh report against the committed baseline. Returns one
/// human-readable line per violation; empty means the gate passes.
fn compare_reports(baseline: &BenchReport, fresh: &BenchReport) -> Vec<String> {
    let base = flatten(baseline);
    let new = flatten(fresh);
    let mut violations = Vec::new();
    for (name, b) in &base {
        match new.iter().find(|(n, _)| n == name) {
            None => violations.push(format!("missing metric `{name}` (baseline has {b})")),
            Some((_, f)) => {
                let tol = tolerance_for(name);
                if !within(*b, *f, tol) {
                    violations.push(format!(
                        "`{name}`: fresh {f} vs baseline {b} (tolerance {:.0}%)",
                        tol * 100.0
                    ));
                }
            }
        }
    }
    for (name, f) in &new {
        if !base.iter().any(|(n, _)| n == name) {
            violations.push(format!(
                "new metric `{name}` = {f} not in baseline (refresh BENCH_BASELINE.json)"
            ));
        }
    }
    violations
}

/// The commit-pipeline gate: beyond matching the baseline, the fresh
/// report must exhibit the split-phase win itself — deeper queues raise
/// X-FTL IOPS. A regression that serializes the pipeline (every
/// commit_submit flushing immediately, say) would keep all depth-1
/// numbers bit-identical to the baseline, so only a direct qd1-vs-qdN
/// comparison catches it.
fn pipeline_gate(fresh: &BenchReport) -> Vec<String> {
    let get = |name: &str| {
        fresh
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    let mut violations = Vec::new();
    let pairs = [
        (
            "channels.qd1.xftl_iops",
            "channels.qd8.xftl_iops",
            "queue-depth sweep",
        ),
        (
            "fig9.wpf10.openssd_xftl_qd1_iops",
            "fig9.wpf10.openssd_xftl_iops",
            "fig9 pipelined row",
        ),
    ];
    for (shallow, deep, what) in pairs {
        match (get(shallow), get(deep)) {
            (Some(q1), Some(qn)) if qn <= q1 => violations.push(format!(
                "commit-pipeline win lost in {what}: `{deep}` {qn:.0} <= `{shallow}` {q1:.0}"
            )),
            (None, _) | (_, None) => violations.push(format!(
                "{what} metrics missing (`{shallow}` / `{deep}`) — pipeline gate cannot run"
            )),
            _ => {}
        }
    }
    violations
}

fn load_report(path: &Path) -> Result<BenchReport, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    BenchReport::from_json(&text).map_err(|e| format!("cannot parse {}: {}", path.display(), e.msg))
}

/// The `bench-check` command body: loads both reports, prints every
/// violation, returns the violation count.
fn bench_check(fresh_path: &Path, baseline_path: &Path) -> Result<usize, String> {
    let baseline = load_report(baseline_path)?;
    let fresh = load_report(fresh_path)?;
    if baseline.meta != fresh.meta {
        return Err(format!(
            "report meta mismatch (fresh {:?} vs baseline {:?}) — compare runs at the same scale",
            fresh.meta, baseline.meta
        ));
    }
    let mut violations = compare_reports(&baseline, &fresh);
    violations.extend(pipeline_gate(&fresh));
    for v in &violations {
        println!("bench-check: {v}");
    }
    println!(
        "bench-check: {} vs {}: {} metric(s) compared, {} violation(s)",
        fresh_path.display(),
        baseline_path.display(),
        flatten(&baseline).len(),
        violations.len(),
    );
    Ok(violations.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    // CARGO_MANIFEST_DIR points at xtask/; the repo root is its parent.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    match args.get(1).map(String::as_str) {
        Some("lint-sim") => {
            if lint_sim(&root) == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("bench-check") => {
            let fresh = args
                .get(2)
                .map_or_else(|| root.join("BENCH_all.json"), PathBuf::from);
            let baseline = args
                .get(3)
                .map_or_else(|| root.join("BENCH_BASELINE.json"), PathBuf::from);
            match bench_check(&fresh, &baseline) {
                Ok(0) => ExitCode::SUCCESS,
                Ok(_) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("bench-check: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <command>\n\
                 \n\
                 commands:\n\
                 \x20 lint-sim                        wall-clock/entropy leak check\n\
                 \x20 bench-check [fresh] [baseline]  compare bench reports\n\
                 \x20                                 (defaults: BENCH_all.json BENCH_BASELINE.json)"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_do_not_match_their_own_definitions() {
        // This file assembles patterns with concat!, so linting the xtask
        // source itself (not scanned, but belt and braces) finds nothing.
        let text = fs::read_to_string(file!()).unwrap_or_default();
        for (pat, _) in banned_patterns() {
            for line in text.lines() {
                if line.contains(ALLOW_MARKER) {
                    continue;
                }
                assert!(!line.contains(pat), "self-match on pattern {pat}: {line}");
            }
        }
    }

    fn report_with(metrics: &[(&str, f64)]) -> BenchReport {
        let mut r = BenchReport::new("all");
        r.meta("scale", "smoke");
        for (n, v) in metrics {
            r.metric(n, *v);
        }
        r
    }

    #[test]
    fn bench_check_passes_on_identical_reports() {
        let base = report_with(&[
            ("table1.xftl.fsyncs", 12.0),
            ("fig5.v50.u5.xftl.elapsed_ns", 1e9),
        ]);
        assert!(compare_reports(&base, &base.clone()).is_empty());
    }

    #[test]
    fn bench_check_tolerates_small_timing_drift_only() {
        let base = report_with(&[("fig5.v50.u5.xftl.elapsed_ns", 1e9)]);
        // 8% latency drift: inside the 10% band.
        let fresh = report_with(&[("fig5.v50.u5.xftl.elapsed_ns", 1.08e9)]);
        assert!(compare_reports(&base, &fresh).is_empty());
        // 12% drift: violation (the negative test of the acceptance
        // criteria — a perturbed metric must fail the gate).
        let fresh = report_with(&[("fig5.v50.u5.xftl.elapsed_ns", 1.12e9)]);
        assert_eq!(compare_reports(&base, &fresh).len(), 1);
    }

    #[test]
    fn bench_check_counts_are_exact() {
        let base = report_with(&[("table1.xftl.fsyncs", 12.0)]);
        let fresh = report_with(&[("table1.xftl.fsyncs", 13.0)]);
        assert_eq!(compare_reports(&base, &fresh).len(), 1);
    }

    #[test]
    fn bench_check_flags_missing_and_extra_metrics() {
        let base = report_with(&[("a.count", 1.0), ("b.count", 2.0)]);
        let fresh = report_with(&[("a.count", 1.0), ("c.count", 3.0)]);
        let v = compare_reports(&base, &fresh);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains("missing metric `b.count`")));
        assert!(v.iter().any(|m| m.contains("new metric `c.count`")));
    }

    #[test]
    fn bench_check_compares_histogram_summaries() {
        use xftl_trace::{OpClass, Recorder, Telemetry};
        let mk = |lat: u64| {
            let t = Telemetry::new();
            t.record(OpClass::TxCommit, lat);
            let mut r = BenchReport::new("all");
            r.attach_telemetry(&t);
            r
        };
        let base = mk(1_000_000);
        // Same count, latency shifted far beyond 10%: the *_ns hist
        // fields trip, the count field does not.
        let fresh = mk(2_000_000);
        let v = compare_reports(&base, &fresh);
        assert!(!v.is_empty());
        assert!(v.iter().all(|m| m.contains("_ns")), "{v:?}");
    }

    #[test]
    fn pipeline_gate_demands_a_queue_depth_win() {
        let winning = report_with(&[
            ("channels.qd1.xftl_iops", 700.0),
            ("channels.qd8.xftl_iops", 1400.0),
            ("fig9.wpf10.openssd_xftl_qd1_iops", 717.0),
            ("fig9.wpf10.openssd_xftl_iops", 1300.0),
        ]);
        assert!(pipeline_gate(&winning).is_empty());
        // A serialized pipeline (deep == shallow) is a regression.
        let flat = report_with(&[
            ("channels.qd1.xftl_iops", 700.0),
            ("channels.qd8.xftl_iops", 700.0),
            ("fig9.wpf10.openssd_xftl_qd1_iops", 717.0),
            ("fig9.wpf10.openssd_xftl_iops", 1300.0),
        ]);
        assert_eq!(pipeline_gate(&flat).len(), 1);
        // Dropping the sweep entirely must not silently pass.
        let missing = report_with(&[("channels.qd1.xftl_iops", 700.0)]);
        assert_eq!(pipeline_gate(&missing).len(), 2);
    }

    #[test]
    fn trace_crate_gets_no_waivers() {
        // A waiver marker inside crates/trace must NOT suppress a match;
        // synthesize the scan logic's inputs directly.
        let root = Path::new("/repo");
        let no_waiver_root = root.join(NO_WAIVER_DIR);
        let in_trace = root.join("crates/trace/src/hist.rs");
        let outside = root.join("crates/flash/src/chip.rs");
        assert!(in_trace.starts_with(&no_waiver_root));
        assert!(!outside.starts_with(&no_waiver_root));
        // And the trace-only pattern bans std::time reach-through.
        let line = format!("use std::{}::Duration; // lint-sim: allow", "time");
        assert!(trace_only_patterns()
            .iter()
            .any(|(pat, _)| line.contains(pat)));
    }

    #[test]
    fn repo_passes_lint_sim() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
        assert_eq!(lint_sim(&root), 0);
    }
}
