//! # xftl-analyze — AST-level, domain-aware static analysis
//!
//! `cargo run -p xtask -- analyze` runs a lint suite encoding X-FTL's
//! protocol discipline over the whole workspace, with rustc-style span
//! diagnostics, a machine-readable JSON findings report, and per-lint
//! waivers. The workspace build is hermetic (no crates.io, hence no
//! `syn`), so the engine rests on an in-tree lexer ([`lexer`]) and a
//! lightweight structural layer ([`parse`]) that recover exactly the
//! facts the lints need: paired delimiters, `cfg` regions, use-trees,
//! fn signatures and bodies, impl spans, and match arms.
//!
//! The analysis is two-phase. A **registry pass** over every file
//! collects the domain vocabulary — `enum *Error` declarations,
//! per-crate `type Result<T> = …` aliases, fns returning domain-error
//! `Result`s, fns returning `*Ticket` types (with `-> Self`
//! constructors resolved through their impl block), and the files
//! pulled in by `#[cfg(test)] mod …;` declarations. The **lint pass**
//! then runs each enabled lint over each file against that registry.
//!
//! ## Waivers
//!
//! `// xftl-analyze: allow(<lint>): <justification>` on the violating
//! line (or the line above) suppresses one lint there. The
//! justification text is mandatory — a waiver without one is itself a
//! violation — and no waiver is honoured inside `crates/trace`: the
//! telemetry crate is what everything else's determinism leans on.
//!
//! ## Self-test
//!
//! `analyze --selftest` proves every lint live against the seeded
//! fixture corpus under `xtask/tests/fixtures/`: each lint must fire on
//! its `fire.rs` and stay quiet on its `clean.rs`, and an unjustified
//! waiver must be rejected. A lint that cannot fire fails CI.

pub mod lexer;
pub mod lints;
pub mod parse;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use parse::{fns, impl_spans, result_alias_error, second_angle_arg, SourceFile};

/// One finding, anchored to a source span.
#[derive(Debug, Clone)]
pub struct Violation {
    pub lint: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub msg: String,
}

/// A waiver that suppressed a violation.
#[derive(Debug, Clone)]
pub struct UsedWaiver {
    pub lint: String,
    pub path: String,
    pub line: u32,
    pub justification: String,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cargo features considered active for `#[cfg(feature = …)]`
    /// gating. Defaults to all of them.
    pub features: BTreeSet<String>,
    /// Lints to run (defaults to all).
    pub lints: Vec<&'static str>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            features: ["verify", "trace"]
                .iter()
                .map(ToString::to_string)
                .collect(),
            lints: lints::LINTS.to_vec(),
        }
    }
}

/// The workspace vocabulary the lints consult.
#[derive(Debug, Default)]
pub struct Registry {
    /// Error enums discovered from `enum *Error` declarations.
    pub error_enums: BTreeSet<String>,
    /// Per-region (`crates/<name>`) error type of the local `Result`
    /// alias.
    pub region_err: BTreeMap<String, String>,
    /// Fn name → domain error type, for fns returning `Result<_, E>`.
    pub fallible: BTreeMap<String, String>,
    /// Ticket-returning fns callable without a qualifier.
    pub ticket_plain: BTreeSet<String>,
    /// Ticket-returning assoc fns, as `Type::name`.
    pub ticket_qualified: BTreeSet<String>,
    /// `*Ticket` struct names.
    pub ticket_types: BTreeSet<String>,
    /// Files that are test-only in their entirety (targets of
    /// `#[cfg(test)] mod …;` declarations).
    pub test_files: BTreeSet<String>,
}

impl Registry {
    /// The domain error type of fn `name`, when registered.
    pub fn fallible_err(&self, name: &str) -> Option<String> {
        self.fallible.get(name).cloned()
    }
}

/// Names too generic to register by bare name (they would swallow every
/// `Foo::new()` in the workspace); these participate only as
/// `Type::name` qualified entries.
const COMMON_NAMES: [&str; 8] = [
    "new",
    "default",
    "from",
    "clone",
    "into",
    "build",
    "immediate",
    "with_capacity",
];

/// Builds the workspace registry over all parsed files.
pub fn build_registry(files: &[SourceFile]) -> Registry {
    let mut reg = Registry::default();
    // Phase 1: type vocabulary and test-file resolution.
    let paths: BTreeSet<&str> = files.iter().map(|f| f.path.as_str()).collect();
    for f in files {
        for i in 0..f.toks.len().saturating_sub(1) {
            let t = &f.toks[i];
            let n = &f.toks[i + 1];
            if n.kind != lexer::TokKind::Ident {
                continue;
            }
            if t.is_ident("enum") && n.text.ends_with("Error") {
                reg.error_enums.insert(n.text.clone());
            }
            if t.is_ident("struct") && n.text.ends_with("Ticket") {
                reg.ticket_types.insert(n.text.clone());
            }
        }
        if let Some(err) = result_alias_error(f) {
            reg.region_err.entry(f.region()).or_insert(err);
        }
        let dir = f.path.rsplit_once('/').map_or("", |(d, _)| d);
        for m in &f.test_mod_decls {
            for candidate in [format!("{dir}/{m}.rs"), format!("{dir}/{m}/mod.rs")] {
                if paths.contains(candidate.as_str()) {
                    reg.test_files.insert(candidate);
                }
            }
        }
    }
    // Phase 2: fn signatures against the vocabulary.
    for f in files {
        let impls = impl_spans(f);
        for d in fns(f) {
            let enclosing = impls
                .iter()
                .rfind(|s| s.body.0 < d.fn_tok && d.fn_tok < s.body.1);
            // Ticket-returning fns.
            let ticket_ty = reg
                .ticket_types
                .iter()
                .find(|ty| d.ret.split_whitespace().any(|w| w == ty.as_str()))
                .cloned()
                .or_else(|| {
                    (d.ret.split_whitespace().any(|w| w == "Self"))
                        .then(|| enclosing.map(|s| s.type_name.clone()))
                        .flatten()
                        .filter(|ty| reg.ticket_types.contains(ty))
                });
            if ticket_ty.is_some() {
                if let Some(s) = enclosing {
                    reg.ticket_qualified
                        .insert(format!("{}::{}", s.type_name, d.name));
                }
                if !COMMON_NAMES.contains(&d.name.as_str()) {
                    reg.ticket_plain.insert(d.name.clone());
                }
            }
            // Fallible fns with domain errors.
            if let Some((rs, re)) = d.ret_range {
                if let Some(ri) = (rs..re).find(|&k| f.toks[k].is_ident("Result")) {
                    // Skip foreign Results (`fmt::Result`, `io::Result`):
                    // accept bare `Result` or `std::result::Result` only.
                    let qualified_foreign = ri >= 2
                        && f.toks[ri - 1].is_punct("::")
                        && !f.toks[ri - 2].is_ident("result");
                    if !qualified_foreign {
                        let err = second_angle_arg(f, ri, re)
                            .or_else(|| reg.region_err.get(&f.region()).cloned());
                        if let Some(err) = err {
                            if reg.error_enums.contains(&err)
                                && !COMMON_NAMES.contains(&d.name.as_str())
                            {
                                reg.fallible.entry(d.name.clone()).or_insert(err);
                            }
                        }
                    }
                }
            }
        }
    }
    reg
}

/// A completed analysis.
#[derive(Debug)]
pub struct Analysis {
    pub files_scanned: usize,
    pub lints_run: Vec<&'static str>,
    pub violations: Vec<Violation>,
    pub waivers_used: Vec<UsedWaiver>,
    /// Label for the feature set analysed under (for the report meta).
    pub features: Vec<String>,
}

impl Analysis {
    /// Rustc-style text diagnostics, one block per violation.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            let _ = writeln!(s, "error[{}]: {}", v.lint, v.msg);
            let _ = writeln!(s, "  --> {}:{}:{}", v.path, v.line, v.col);
        }
        s
    }

    /// The `BENCH_`-style one-line machine-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "ANALYZE {{\"files_scanned\":{},\"lints_run\":{},\"violations\":{},\"waivers\":{}}}",
            self.files_scanned,
            self.lints_run.len(),
            self.violations.len(),
            self.waivers_used.len(),
        )
    }

    /// The JSON findings report.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"tool\": \"xftl-analyze\",\n  \"schema\": 1,\n");
        let feats: Vec<String> = self.features.iter().map(|f| json_str(f)).collect();
        let _ = writeln!(s, "  \"features\": [{}],", feats.join(", "));
        let lints: Vec<String> = self.lints_run.iter().map(|l| json_str(l)).collect();
        let _ = writeln!(s, "  \"lints_run\": [{}],", lints.join(", "));
        let _ = writeln!(
            s,
            "  \"summary\": {{\"files_scanned\": {}, \"lints_run\": {}, \"violations\": {}, \"waivers\": {}}},",
            self.files_scanned,
            self.lints_run.len(),
            self.violations.len(),
            self.waivers_used.len(),
        );
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_str(v.lint),
                json_str(&v.path),
                v.line,
                v.col,
                json_str(&v.msg),
            );
        }
        s.push_str("\n  ],\n  \"waivers\": [");
        for (i, w) in self.waivers_used.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"justification\": {}}}",
                json_str(&w.lint),
                json_str(&w.path),
                w.line,
                json_str(&w.justification),
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Directory whose sources get no waivers: the telemetry crate is the
/// thing whose determinism everything else leans on.
pub const NO_WAIVER_REGION: &str = "crates/trace";

/// Analyzes a set of (virtual-path, source) pairs. This is the whole
/// engine; `analyze_repo` merely collects the real tree into it.
pub fn analyze_sources(sources: &[(String, String)], cfg: &Config) -> Analysis {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, src)| SourceFile::parse(p, src, &cfg.features))
        .collect();
    let reg = build_registry(&files);

    let mut raw: Vec<Violation> = Vec::new();
    for f in &files {
        for lint in &cfg.lints {
            lints::run_lint(lint, f, &reg, &mut raw);
        }
    }

    // Waiver application. A waiver matches a violation of its lint on
    // the same line or the line directly below the comment.
    let mut violations = Vec::new();
    let mut waivers_used = Vec::new();
    for v in raw {
        let file = files.iter().find(|f| f.path == v.path);
        let waiver = file.and_then(|f| {
            f.waivers
                .iter()
                .find(|w| w.lint == v.lint && (w.line == v.line || w.line + 1 == v.line))
        });
        match waiver {
            Some(w) => {
                let region = file.map(parse::SourceFile::region).unwrap_or_default();
                if region == NO_WAIVER_REGION {
                    let mut v = v;
                    v.msg
                        .push_str(" [waiver ignored: crates/trace honours no waivers]");
                    violations.push(v);
                } else if w.justification.is_empty() {
                    // Rejected below as a waiver-syntax violation; the
                    // underlying violation stands too.
                    violations.push(v);
                } else {
                    waivers_used.push(UsedWaiver {
                        lint: w.lint.clone(),
                        path: v.path.clone(),
                        line: w.line,
                        justification: w.justification.clone(),
                    });
                }
            }
            None => violations.push(v),
        }
    }

    // Waiver syntax policing: unknown lint names and missing
    // justifications are violations wherever they appear.
    for f in &files {
        for w in &f.waivers {
            if !lints::LINTS.contains(&w.lint.as_str()) {
                violations.push(Violation {
                    lint: "waiver",
                    path: f.path.clone(),
                    line: w.line,
                    col: 1,
                    msg: format!(
                        "waiver names unknown lint `{}` (known: {})",
                        w.lint,
                        lints::LINTS.join(", ")
                    ),
                });
            } else if w.justification.is_empty() {
                violations.push(Violation {
                    lint: "waiver",
                    path: f.path.clone(),
                    line: w.line,
                    col: 1,
                    msg: format!(
                        "waiver for `{}` has no justification — write `// xftl-analyze: allow({}): <why>`",
                        w.lint, w.lint
                    ),
                });
            }
        }
    }

    violations
        .sort_by(|a, b| (&a.path, a.line, a.col, a.lint).cmp(&(&b.path, b.line, b.col, b.lint)));
    Analysis {
        files_scanned: files.len(),
        lints_run: cfg.lints.clone(),
        violations,
        waivers_used,
        features: cfg.features.iter().cloned().collect(),
    }
}

/// Source roots scanned in the real repository.
const SCAN_ROOTS: [&str; 6] = [
    "crates",
    "src",
    "tests",
    "examples",
    "xtask/src",
    "xtask/tests",
];

/// Directory names never descended into (build output, and the seeded
/// violation corpus which exists to fire the lints).
const SKIP_DIRS: [&str; 2] = ["target", "fixtures"];

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Ok(src) = fs::read_to_string(&path) {
                out.push((rel, src));
            }
        }
    }
}

/// Analyzes the repository rooted at `root`.
pub fn analyze_repo(root: &Path, cfg: &Config) -> Analysis {
    let mut sources = Vec::new();
    for sub in SCAN_ROOTS {
        collect_rs(root, &root.join(sub), &mut sources);
    }
    sources.sort();
    sources.dedup_by(|a, b| a.0 == b.0);
    analyze_sources(&sources, cfg)
}

/// Mutation self-test: proves every lint live against the fixture
/// corpus. Returns human-readable failures, empty on success.
pub fn selftest(root: &Path) -> Vec<String> {
    let mut failures = Vec::new();
    let fixtures = root.join("xtask/tests/fixtures");
    for lint in lints::LINTS {
        let dir = fixtures.join(lint.replace('-', "_"));
        for (which, expect_fire) in [("fire.rs", true), ("clean.rs", false)] {
            let path = dir.join(which);
            let Ok(src) = fs::read_to_string(&path) else {
                failures.push(format!("{lint}: missing fixture {}", path.display()));
                continue;
            };
            let vpath = fixture_virtual_path(&src)
                .unwrap_or_else(|| "crates/fixture/src/lib.rs".to_string());
            let cfg = Config {
                lints: vec![lint],
                ..Config::default()
            };
            let analysis = analyze_sources(&[(vpath, src)], &cfg);
            let fired = analysis.violations.iter().any(|v| v.lint == lint);
            if expect_fire && !fired {
                failures.push(format!(
                    "{lint}: did NOT fire on its seeded violation ({}) — the lint is dead",
                    path.display()
                ));
            }
            if !expect_fire && !analysis.violations.is_empty() {
                failures.push(format!(
                    "{lint}: fired on the clean fixture ({}): {}",
                    path.display(),
                    analysis.violations[0].msg
                ));
            }
        }
    }
    // Waiver policy fixtures: unjustified waivers are rejected, trace
    // honours none, a justified waiver suppresses.
    for (file, expect_violation, why) in [
        (
            "waivers/unjustified.rs",
            true,
            "an unjustified waiver must be rejected",
        ),
        (
            "waivers/trace.rs",
            true,
            "crates/trace must honour no waivers",
        ),
        (
            "waivers/justified.rs",
            false,
            "a justified waiver must suppress",
        ),
    ] {
        let path = fixtures.join(file);
        let Ok(src) = fs::read_to_string(&path) else {
            failures.push(format!("waiver fixture missing: {}", path.display()));
            continue;
        };
        let vpath =
            fixture_virtual_path(&src).unwrap_or_else(|| "crates/fixture/src/lib.rs".to_string());
        let analysis = analyze_sources(&[(vpath, src)], &Config::default());
        if expect_violation && analysis.violations.is_empty() {
            failures.push(format!("{file}: expected a violation — {why}"));
        }
        if !expect_violation && !analysis.violations.is_empty() {
            failures.push(format!(
                "{file}: expected clean ({why}); got: {}",
                analysis.violations[0].msg
            ));
        }
    }
    failures
}

/// Fixtures name their pretend location with a first-line directive:
/// `// xftl-analyze-fixture: path=crates/db/src/bad.rs`.
pub fn fixture_virtual_path(src: &str) -> Option<String> {
    let first = src.lines().next()?;
    let idx = first.find("xftl-analyze-fixture: path=")?;
    Some(
        first[idx + "xftl-analyze-fixture: path=".len()..]
            .trim()
            .to_string(),
    )
}
