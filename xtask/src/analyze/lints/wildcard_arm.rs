//! `wildcard-arm`: protocol enums must be matched exhaustively.
//!
//! `IoCmd`, `DevError`, and the fault-model kinds are *protocol*
//! enums: adding a variant is a protocol change, and every site that
//! handles the protocol must decide what the new variant means for it.
//! A `_ =>` arm silently absorbs new variants — the compiler stays
//! quiet while a new command class (say, a future `IoCmd::Discard`)
//! falls into whatever the wildcard happens to do. Banning wildcards
//! over these enums turns "new variant" into "compile error at every
//! site", which is exactly the forcing function a state machine wants
//! (the same discipline the shadow oracle applies at runtime).
//!
//! Detection: a `match` is *protocol* when any arm pattern names a
//! protocol enum variant (`IoCmd::…`, `DevError::…`, …); in such a
//! match, a bare `_` arm (guarded or not) is a violation. Library code
//! only — tests asserting on one specific variant may match loosely.
//!
//! Waivers: `// xftl-analyze: allow(wildcard-arm): <why>` — e.g. a
//! display impl that genuinely only distinguishes one variant.

use super::{emit, match_arms, Registry, SourceFile, Violation};
use crate::analyze::lexer::TokKind;

/// The protocol enums. Extend this list when a new protocol state
/// machine lands (the GC/DFTL work from ROADMAP item 2 will).
pub const PROTOCOL_ENUMS: [&str; 7] = [
    "IoCmd",
    "DevError",
    "FaultKind",
    "FaultOp",
    "Xl2pError",
    "DeviceState",
    "ScrubReason",
];

pub fn run(f: &SourceFile, reg: &Registry, out: &mut Vec<Violation>) {
    if !super::library_code(f, reg) {
        return;
    }
    let mut i = 0;
    while i < f.toks.len() {
        if !f.toks[i].is_ident("match") || f.in_test(i) || f.inactive(i) {
            i += 1;
            continue;
        }
        // The match body is the first top-level `{` after the
        // scrutinee (struct literals are not legal in scrutinee
        // position, so the first brace group is the body).
        let mut j = i + 1;
        let mut body = None;
        while j < f.toks.len() {
            let t = &f.toks[j];
            if t.kind == TokKind::Open {
                if t.text == "{" {
                    body = Some(j);
                    break;
                }
                if f.pair[j] == usize::MAX {
                    break;
                }
                j = f.pair[j];
            }
            if t.kind == TokKind::Close || t.is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some(body) = body else {
            i += 1;
            continue;
        };
        let arms = match_arms(f, body);
        let mut protocol: Option<&str> = None;
        for arm in &arms {
            for k in arm.pat.0..arm.pat.1 {
                let t = &f.toks[k];
                if t.kind == TokKind::Ident && f.toks.get(k + 1).is_some_and(|n| n.is_punct("::")) {
                    if let Some(&name) = PROTOCOL_ENUMS.iter().find(|&&e| t.text == e) {
                        protocol = Some(name);
                    }
                }
            }
        }
        if let Some(enum_name) = protocol {
            for arm in &arms {
                let (a, b) = arm.pat;
                if b - a == 1 && f.toks[a].is_ident("_") {
                    emit(
                        out,
                        "wildcard-arm",
                        f,
                        a,
                        format!(
                            "`_ =>` arm in a match over protocol enum `{enum_name}` — name every variant so new protocol states force a decision here"
                        ),
                    );
                }
            }
        }
        i = body + 1;
    }
}
