//! `error-discard`: domain `Result`s must not be silently dropped.
//!
//! `Result` is `#[must_use]`, so a bare `foo();` statement already
//! warns — but `let _ = foo();` and `foo().ok();` defeat that, and both
//! idioms appear exactly where a tired hand reaches during an
//! integration debug session. In this stack a swallowed `DevError` or
//! `FlashError` is not an inconvenience; it is a correctness hole the
//! shadow oracle may only catch thousands of operations later.
//!
//! The pass is two-phase and domain-aware: a workspace registry pass
//! collects every `fn … -> Result<_, E>` whose error type is one of the
//! stack's error enums (discovered from `enum *Error` declarations,
//! with per-crate `type Result<T> = …` aliases resolved), then flags:
//!
//! - `let _ = <expr>;` where the expression's top-level call chain ends
//!   in a registered fallible fn (an expression ending in `?` is fine —
//!   the error propagates, only the `Ok` value is dropped);
//! - `<call>.ok();` as a statement — the `Result` is converted to an
//!   `Option` and immediately dropped.
//!
//! Scope: library code outside `#[cfg(test)]`. Tests may discard
//! errors they have just asserted on.
//!
//! Waivers: `// xftl-analyze: allow(error-discard): <why>` — e.g. a
//! best-effort cleanup path where failure is genuinely ignorable.

use super::{emit, Registry, SourceFile, Violation};
use crate::analyze::lexer::TokKind;

pub fn run(f: &SourceFile, reg: &Registry, out: &mut Vec<Violation>) {
    if !super::library_code(f, reg) {
        return;
    }
    let toks = &f.toks;
    let mut i = 0;
    while i < toks.len() {
        if f.in_test(i) || f.inactive(i) {
            i += 1;
            continue;
        }
        // Form 1: `let _ = <expr> ;`
        if toks[i].is_ident("let")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("="))
        {
            let expr_start = i + 3;
            let end = super::stmt_end(f, expr_start);
            // `let _ = f()?;` propagates the error; only the Ok value
            // is dropped, which is fine.
            let ends_with_try = end > 0 && toks.get(end - 1).is_some_and(|t| t.is_punct("?"));
            if !ends_with_try {
                if let Some((callee, err)) = last_fallible_call(f, reg, expr_start, end) {
                    emit(
                        out,
                        "error-discard",
                        f,
                        callee,
                        format!(
                            "`let _ =` discards the Result<_, {err}> from `{}` — handle it or propagate with `?`",
                            toks[callee].text
                        ),
                    );
                }
            }
            i = end + 1;
            continue;
        }
        // Form 2: `<call>.ok();` as a statement.
        if toks[i].is_ident("ok")
            && i >= 2
            && toks[i - 1].is_punct(".")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Open && t.text == "(")
            && f.pair[i + 1] == i + 2
            && toks.get(i + 3).is_some_and(|t| t.is_punct(";"))
        {
            // The receiver chain must end in a registered fallible call:
            // `recv.fallible(args).ok();`
            if toks[i - 2].kind == TokKind::Close && f.pair[i - 2] != usize::MAX {
                let args_open = f.pair[i - 2];
                if args_open >= 1 && toks[args_open - 1].kind == TokKind::Ident {
                    let name = &toks[args_open - 1].text;
                    if let Some(err) = reg.fallible_err(name) {
                        emit(
                            out,
                            "error-discard",
                            f,
                            args_open - 1,
                            format!(
                                "Result<_, {err}> from `{name}` converted with `.ok()` and dropped — handle it or propagate with `?`"
                            ),
                        );
                    }
                }
            }
        }
        i += 1;
    }
}

/// The last top-level call in `[start, end)` that is registered as
/// fallible with a domain error; returns (callee token, error name).
fn last_fallible_call(
    f: &SourceFile,
    reg: &Registry,
    start: usize,
    end: usize,
) -> Option<(usize, String)> {
    let mut found = None;
    let mut i = start;
    while i < end.min(f.toks.len()) {
        let t = &f.toks[i];
        if t.kind == TokKind::Open {
            if f.pair[i] == usize::MAX {
                break;
            }
            i = f.pair[i] + 1;
            continue;
        }
        if t.kind == TokKind::Ident
            && f.toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Open && n.text == "(")
        {
            if let Some(err) = reg.fallible_err(&t.text) {
                found = Some((i, err));
            }
        }
        i += 1;
    }
    found
}
