//! `unsafe-wall`: every crate root must carry `#![forbid(unsafe_code)]`.
//!
//! The workspace-level `[workspace.lints] unsafe_code = "deny"` can be
//! re-allowed by any module; a crate-root `forbid` cannot. This lint
//! keeps the forbid present in every crate root (plus the xtask
//! binary/library roots), exactly as the old `lint-sim` did — but as a
//! real inner-attribute check on the token stream, so a doc-comment
//! mention of the attribute no longer satisfies it.
//!
//! No waiver makes sense for this lint; a missing forbid is always a
//! violation.

use super::{SourceFile, Violation};
use crate::analyze::lexer::TokKind;

/// True when `path` is a crate root the wall applies to.
pub fn is_crate_root(path: &str) -> bool {
    if path == "src/lib.rs" || path == "xtask/src/lib.rs" || path == "xtask/src/main.rs" {
        return true;
    }
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((_crate, tail)) = rest.split_once('/') {
            return tail == "src/lib.rs";
        }
    }
    false
}

pub fn run(f: &SourceFile, out: &mut Vec<Violation>) {
    if !is_crate_root(&f.path) {
        return;
    }
    // Look for the inner attribute `#![forbid(unsafe_code)]` as real
    // token structure: `#` `!` `[` forbid `(` unsafe_code `)` `]`.
    let has = f.toks.windows(7).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].kind == TokKind::Open
            && w[2].text == "["
            && w[3].is_ident("forbid")
            && w[4].kind == TokKind::Open
            && w[5].is_ident("unsafe_code")
            && w[6].kind == TokKind::Close
    });
    if !has {
        out.push(Violation {
            lint: "unsafe-wall",
            path: f.path.clone(),
            line: 1,
            col: 1,
            msg: "crate root missing #![forbid(unsafe_code)]".to_string(),
        });
    }
}
