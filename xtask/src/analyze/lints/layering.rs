//! `layering`: the import/path graph must respect the stack.
//!
//! Three rules, checked over use-trees *and* inline path expressions:
//!
//! 1. **`crates/trace` is dependency-free.** Every layer feeds the
//!    telemetry crate, so it may name no other workspace crate (and not
//!    the `rand` shim). This holds even in its tests.
//! 2. **`crates/db` and `crates/fs` touch flash only through the
//!    transactional device surface.** The only `xftl_flash` items the
//!    host layers may name are the clock types (`SimClock`, `Nanos`);
//!    data-path types (`FlashChip`, `Ppa`, fault plans, …) must stay
//!    behind `TxBlockDevice`. Test modules are exempt — tests build
//!    rigs, and rigs own chips.
//! 3. **No one above the flash crate names `xftl_flash` module
//!    internals.** `xftl_flash::chip::…` / `xftl_flash::fault::…`
//!    reach-through bypasses the curated root re-export surface that
//!    keeps the crate free to reorganise.
//!
//! Waivers: `// xftl-analyze: allow(layering): <why>` — e.g. a
//! diagnostic tool that genuinely must inspect chip internals.

use super::{emit, Registry, SourceFile, Violation};
use crate::analyze::lexer::TokKind;

/// Flash items host layers (db/fs) may name: the simulated clock.
const FLASH_ALLOWED_ABOVE: [&str; 2] = ["SimClock", "Nanos"];

pub fn run(f: &SourceFile, reg: &Registry, out: &mut Vec<Violation>) {
    let region = f.region();
    let in_trace = region == "crates/trace";
    let host_layer = region == "crates/db" || region == "crates/fs";
    let in_flash = region == "crates/flash";
    if reg.test_files.contains(&f.path) {
        return;
    }

    // Use-declarations: check the flattened trees so `use
    // xftl_flash::{FlashChip, Nanos}` attributes the violation to the
    // offending branch, not the whole decl.
    let use_ranges: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let mut i = 0;
        while i < f.toks.len() {
            if f.toks[i].is_ident("use") && !f.inactive(i) {
                let end = f.item_end(i);
                v.push((i, end));
                i = end;
            } else {
                i += 1;
            }
        }
        v
    };
    for (path, line, use_tok) in f.use_paths() {
        let segs: Vec<&str> = path.split("::").collect();
        check_path(f, &segs, use_tok, line, in_trace, host_layer, in_flash, out);
    }

    // Inline path expressions, skipping tokens inside use decls (those
    // were handled above).
    for i in 0..f.toks.len() {
        if f.toks[i].kind != TokKind::Ident || !f.path_starts_at(i) || f.inactive(i) {
            continue;
        }
        if use_ranges.iter().any(|&(a, b)| a <= i && i < b) {
            continue;
        }
        let segs = f.path_at(i);
        if segs.len() < 2 && !in_trace {
            continue; // a bare crate name outside a use is just a token
        }
        let segs: Vec<&str> = segs.to_vec();
        let line = f.toks[i].line;
        check_path(f, &segs, i, line, in_trace, host_layer, in_flash, out);
    }
}

#[allow(clippy::too_many_arguments)]
fn check_path(
    f: &SourceFile,
    segs: &[&str],
    tok: usize,
    _line: u32,
    in_trace: bool,
    host_layer: bool,
    in_flash: bool,
    out: &mut Vec<Violation>,
) {
    let Some(&first) = segs.first() else {
        return;
    };
    if in_trace {
        if first.starts_with("xftl_") || first == "rand" {
            emit(
                out,
                "layering",
                f,
                tok,
                format!(
                    "`{}` — crates/trace is dependency-free: every layer feeds it, so it may name no workspace crate",
                    segs.join("::")
                ),
            );
        }
        return;
    }
    if first != "xftl_flash" || in_flash {
        return;
    }
    // Rule 3: module reach-through (a lowercase second segment is a
    // module, not a re-exported item), for everyone above flash.
    if segs.len() >= 3
        && segs[1]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase())
    {
        emit(
            out,
            "layering",
            f,
            tok,
            format!(
                "`{}` — names xftl_flash module internals; use the crate-root re-export surface",
                segs.join("::")
            ),
        );
        return;
    }
    // Rule 2: db/fs outside tests may only take the clock types.
    if host_layer && !f.in_test(tok) {
        let item = segs.get(1).copied().unwrap_or("*");
        if !FLASH_ALLOWED_ABOVE.contains(&item) {
            emit(
                out,
                "layering",
                f,
                tok,
                format!(
                    "`{}` — {} may touch flash only through the TxBlockDevice surface (allowed: SimClock, Nanos)",
                    segs.join("::"),
                    f.region(),
                ),
            );
        }
    }
}
