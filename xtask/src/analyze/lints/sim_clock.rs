//! `sim-clock`: the determinism wall, at the AST level.
//!
//! The whole simulator runs on the shared `SimClock`; a host wall-clock
//! read, a host sleep, or OS-seeded randomness silently breaks
//! reproducibility without failing a single test. The old `lint-sim`
//! greped source *lines* for banned substrings, which meant a doc
//! comment mentioning `Instant::now` tripped it; this pass matches
//! *path expressions and use-trees* over the token stream, so comments
//! and string literals can never fire it.
//!
//! Inside `crates/trace` the rules tighten (any `std::time` reach-
//! through is banned — the telemetry crate ingests SimClock `Nanos`
//! only) and no waiver is honoured there.
//!
//! Waivers: `// xftl-analyze: allow(sim-clock): <why>` — legitimate
//! only where *host* time is the measurand (e.g. the micro-bench
//! harness timing real CPU work).

use super::{emit, SourceFile, Violation};
use crate::analyze::lexer::TokKind;

/// Banned path shapes, as segment windows: a path whose segments
/// contain the window consecutively is a violation. Segments are
/// separate string literals, so this table never matches itself.
fn banned() -> Vec<(Vec<&'static str>, &'static str)> {
    vec![
        (
            vec!["std", "time", "Instant"],
            "host wall clock (use SimClock)",
        ),
        (vec!["Instant", "now"], "host wall clock (use SimClock)"),
        (vec!["SystemTime"], "host wall clock (use SimClock)"),
        (
            vec!["thread", "sleep"],
            "host sleep (simulated time never needs it)",
        ),
        (
            vec!["thread_rng"],
            "OS-seeded randomness (use a seeded StdRng)",
        ),
        (
            vec!["from_entropy"],
            "OS-seeded randomness (use a seeded StdRng)",
        ),
        (
            vec!["rand", "random"],
            "ambient randomness (fault plans and RNG streams take explicit simrand seeds)",
        ),
        (
            vec!["RandomState"],
            "OS-randomized hasher (derive seeds explicitly, not from hash entropy)",
        ),
    ]
}

/// Banned numeric literals: the multipliers of hand-rolled LCG /
/// xorshift* generators, which bypass the seeded simrand stream.
const MAGIC_DEC: &str = "6364136223846793005";
const MAGIC_HEX: &str = "0x2545f4914f6cdd1d";

pub fn run(f: &SourceFile, out: &mut Vec<Violation>) {
    let patterns = banned();
    let in_trace = f.region() == "crates/trace";
    for i in 0..f.toks.len() {
        let t = &f.toks[i];
        match t.kind {
            TokKind::Ident if f.path_starts_at(i) => {
                let segs = f.path_at(i);
                for (pat, why) in &patterns {
                    let hit = segs
                        .windows(pat.len())
                        .any(|w| w.iter().zip(pat.iter()).all(|(a, b)| a == b));
                    if hit {
                        emit(
                            out,
                            "sim-clock",
                            f,
                            i,
                            format!("`{}` — {why}", segs.join("::")),
                        );
                        break;
                    }
                }
                if in_trace && segs.len() >= 2 && segs[0] == "std" && segs[1] == "time" {
                    emit(
                        out,
                        "sim-clock",
                        f,
                        i,
                        format!(
                            "`{}` — host time types in the telemetry crate (ingest SimClock Nanos only)",
                            segs.join("::")
                        ),
                    );
                }
            }
            TokKind::Num => {
                let norm: String = t.text.to_lowercase().replace('_', "");
                for magic in [MAGIC_DEC, MAGIC_HEX] {
                    if let Some(rest) = norm.strip_prefix(magic) {
                        if rest.is_empty() || rest.starts_with('u') || rest.starts_with('i') {
                            let gen = if magic == MAGIC_DEC {
                                "LCG"
                            } else {
                                "xorshift*"
                            };
                            emit(
                                out,
                                "sim-clock",
                                f,
                                i,
                                format!(
                                    "hand-rolled {gen} multiplier (use the seeded simrand StdRng)"
                                ),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }
}
