//! The lint suite: each module encodes one X-FTL domain invariant.
//!
//! Shared here: the call-site walker, backward statement scanning, and
//! the match-arm parser that individual lints build on. Each lint's own
//! module documents the invariant it encodes and its waiver policy (see
//! also DESIGN.md "Static analysis").

pub mod error_discard;
pub mod layering;
pub mod sim_clock;
pub mod ticket_leak;
pub mod unsafe_wall;
pub mod wildcard_arm;

pub use super::parse::SourceFile;
pub use super::{Registry, Violation};
use crate::analyze::lexer::TokKind;

/// Stable lint identifiers (also the names accepted in waivers).
pub const LINTS: [&str; 6] = [
    "sim-clock",
    "unsafe-wall",
    "layering",
    "error-discard",
    "wildcard-arm",
    "ticket-leak",
];

/// Runs one lint over one file, appending violations.
pub fn run_lint(lint: &'static str, f: &SourceFile, reg: &Registry, out: &mut Vec<Violation>) {
    match lint {
        "sim-clock" => sim_clock::run(f, out),
        "unsafe-wall" => unsafe_wall::run(f, out),
        "layering" => layering::run(f, reg, out),
        "error-discard" => error_discard::run(f, reg, out),
        "wildcard-arm" => wildcard_arm::run(f, reg, out),
        "ticket-leak" => ticket_leak::run(f, reg, out),
        _ => {}
    }
}

/// True for files where the *code-shape* lints (error-discard,
/// ticket-leak, wildcard-arm) apply: library code, not integration
/// tests, examples, or bench harnesses (those are covered by the
/// determinism lints but may legitimately discard errors or match
/// loosely).
pub fn library_code(f: &SourceFile, reg: &Registry) -> bool {
    let p = f.path.as_str();
    let lib = (p.starts_with("crates/") && p.contains("/src/")) || p.starts_with("src/");
    lib && !reg.test_files.contains(p)
}

/// Emits one violation anchored at token `i`.
pub fn emit(out: &mut Vec<Violation>, lint: &'static str, f: &SourceFile, i: usize, msg: String) {
    let (line, col) = f.toks.get(i).map_or((1, 1), |t| (t.line, t.col));
    out.push(Violation {
        lint,
        path: f.path.clone(),
        line,
        col,
        msg,
    });
}

/// A call site: identifier immediately followed by a parenthesis group
/// (macro invocations — ident `!` `(` — never match this shape).
#[derive(Debug)]
pub struct CallSite {
    /// Token index of the callee identifier.
    pub ident: usize,
    /// Token index of the opening `(` of the arguments.
    pub args_open: usize,
    /// `Some("Type")` when the call is written `Type::name(...)`.
    pub qualifier: Option<String>,
    /// True when written as a method call (`recv.name(...)`).
    pub method: bool,
}

/// All call sites inside the half-open token range.
pub fn call_sites(f: &SourceFile, start: usize, end: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in start..end.min(f.toks.len()) {
        if f.toks[i].kind != TokKind::Ident {
            continue;
        }
        let Some(next) = f.toks.get(i + 1) else {
            continue;
        };
        if !(next.kind == TokKind::Open && next.text == "(") {
            continue;
        }
        // `fn name(` and `struct`/`if`/`match` keywords are not calls.
        if i > 0 && matches!(f.toks[i - 1].text.as_str(), "fn") {
            continue;
        }
        if matches!(
            f.toks[i].text.as_str(),
            "if" | "while" | "match" | "for" | "return" | "fn"
        ) {
            continue;
        }
        let qualifier =
            (i >= 2 && f.toks[i - 1].is_punct("::") && f.toks[i - 2].kind == TokKind::Ident)
                .then(|| f.toks[i - 2].text.clone());
        let method = i >= 1 && f.toks[i - 1].is_punct(".");
        out.push(CallSite {
            ident: i,
            args_open: i + 1,
            qualifier,
            method,
        });
    }
    out
}

/// Start of the statement containing token `i`: scans backward, jumping
/// over complete delimiter groups, until a `;`, the opening brace of
/// the enclosing block, or the file start.
pub fn stmt_start(f: &SourceFile, i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let prev = &f.toks[j - 1];
        match prev.kind {
            TokKind::Close => {
                // A `}` directly behind us is a brace-terminated statement
                // (`for`/`if`/`match`/block) — a boundary, not a group to
                // hop: jumping it would walk into the *previous* statement
                // and mis-attribute its `let` binders to this one. Paren
                // and bracket groups are sub-expressions; hop those.
                if prev.text == "}" {
                    return j;
                }
                let open = f.pair[j - 1];
                if open == usize::MAX {
                    return j;
                }
                j = open;
            }
            TokKind::Open => return j,
            TokKind::Punct if prev.text == ";" || prev.text == "," => return j,
            _ => j -= 1,
        }
    }
    j
}

/// End of the statement containing token `i`: index of its terminating
/// `;` at the statement's level, or of the closing token of the
/// enclosing block (tail expression).
pub fn stmt_end(f: &SourceFile, i: usize) -> usize {
    let mut j = i;
    while j < f.toks.len() {
        let t = &f.toks[j];
        match t.kind {
            TokKind::Open => {
                if f.pair[j] == usize::MAX {
                    return f.toks.len();
                }
                j = f.pair[j] + 1;
            }
            TokKind::Close => return j,
            TokKind::Punct if t.text == ";" => return j,
            _ => j += 1,
        }
    }
    f.toks.len()
}

/// One arm of a `match`: pattern token range (guard excluded) and the
/// index of its `=>`.
#[derive(Debug)]
pub struct Arm {
    pub pat: (usize, usize),
    pub arrow: usize,
}

/// Parses the arms of the match whose body opens at `body_open`.
pub fn match_arms(f: &SourceFile, body_open: usize) -> Vec<Arm> {
    let close = f.pair[body_open];
    if close == usize::MAX {
        return Vec::new();
    }
    let mut arms = Vec::new();
    let mut i = body_open + 1;
    while i < close {
        let pat_start = i;
        // Scan to the arm's `=>` at this level.
        let mut arrow = None;
        let mut k = i;
        while k < close {
            let t = &f.toks[k];
            if t.is_punct("=>") {
                arrow = Some(k);
                break;
            }
            if t.kind == TokKind::Open {
                if f.pair[k] == usize::MAX {
                    return arms;
                }
                k = f.pair[k];
            }
            k += 1;
        }
        let Some(arrow) = arrow else {
            break;
        };
        // Guard: `pat if cond =>` — the pattern ends at the `if`.
        let mut pat_end = arrow;
        let mut g = pat_start;
        while g < arrow {
            let t = &f.toks[g];
            if t.is_ident("if") {
                pat_end = g;
                break;
            }
            if t.kind == TokKind::Open {
                if f.pair[g] == usize::MAX {
                    break;
                }
                g = f.pair[g];
            }
            g += 1;
        }
        arms.push(Arm {
            pat: (pat_start, pat_end),
            arrow,
        });
        // Step over the arm body: a brace group, or tokens to the next
        // top-level comma.
        i = arrow + 1;
        if f.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Open && t.text == "{")
            && f.pair[i] != usize::MAX
        {
            i = f.pair[i] + 1;
            if f.toks.get(i).is_some_and(|t| t.is_punct(",")) {
                i += 1;
            }
        } else {
            while i < close {
                let t = &f.toks[i];
                if t.is_punct(",") {
                    i += 1;
                    break;
                }
                if t.kind == TokKind::Open {
                    if f.pair[i] == usize::MAX {
                        return arms;
                    }
                    i = f.pair[i];
                }
                i += 1;
            }
        }
    }
    arms
}
