//! `ticket-leak`: every commit/fsync ticket must flow somewhere live.
//!
//! The split-phase commit API returns a `#[must_use] CommitTicket`
//! whose *redemption* (`commit_wait` / `fsync_wait`) is what makes the
//! transaction durable. `#[must_use]` catches a bare `submit();`
//! statement — but is defeated by `let _ = submit();` and by
//! store-and-drop (`let t = submit();` with `t` never touched again).
//! Either way the transaction may silently never become durable: the
//! writes are visible (submit flips X-L2P state in RAM) and the meta
//! page may never be programmed, which is precisely the
//! lost-durability window the crash matrix exists to rule out.
//!
//! The registry pass collects every fn returning a ticket type (any
//! `*Ticket` struct, today `CommitTicket`) — trait methods, inherent
//! impls, and `-> Self` constructors resolved through their impl
//! block. The lint then walks each fn body and flags a ticket-producing
//! call when:
//!
//! - it is bound with `let _ =` (with or without `?`);
//! - it stands as a bare `…;` statement (the `?` form included: the
//!   ticket out of `submit()?` is dropped on the floor);
//! - it is bound to identifiers none of which appear again in the
//!   enclosing fn (store-and-drop).
//!
//! A ticket that is returned, stored, passed on, or method-chained is
//! accepted — the receiving code is then the one this lint audits.
//!
//! Waivers: `// xftl-analyze: allow(ticket-leak): <why>` — e.g. an
//! immediate ticket constructed for a read-only no-op path.

use super::{emit, Registry, SourceFile, Violation};
use crate::analyze::lexer::TokKind;
use crate::analyze::parse::fns;

pub fn run(f: &SourceFile, reg: &Registry, out: &mut Vec<Violation>) {
    if !super::library_code(f, reg) {
        return;
    }
    for decl in fns(f) {
        let Some((body_open, body_close)) = decl.body else {
            continue;
        };
        if f.in_test(decl.fn_tok) || f.inactive(decl.fn_tok) {
            continue;
        }
        for call in super::call_sites(f, body_open + 1, body_close) {
            let name = &f.toks[call.ident].text;
            let is_ticket = reg.ticket_plain.contains(name)
                || call
                    .qualifier
                    .as_ref()
                    .is_some_and(|q| reg.ticket_qualified.contains(&format!("{q}::{name}")));
            if !is_ticket || f.in_test(call.ident) || f.inactive(call.ident) {
                continue;
            }
            check_site(f, &call, body_close, out);
        }
    }
}

fn check_site(f: &SourceFile, call: &super::CallSite, body_close: usize, out: &mut Vec<Violation>) {
    let name = f.toks[call.ident].text.clone();
    let args_close = f.pair[call.args_open];
    if args_close == usize::MAX {
        return;
    }
    // Token after the call (skipping a `?`).
    let mut after = args_close + 1;
    if f.toks.get(after).is_some_and(|t| t.is_punct("?")) {
        after += 1;
    }
    let start = super::stmt_start(f, call.ident);
    let prefix = &f.toks[start..call.ident];

    // `let` statement? Find the binder pattern.
    if let Some(let_off) = prefix.iter().position(|t| t.is_ident("let")) {
        let let_idx = start + let_off;
        // Pattern tokens: between `let` and the first `=` before the call.
        let eq = (let_idx + 1..call.ident).find(|&k| f.toks[k].is_punct("="));
        let Some(eq) = eq else {
            return; // `let … else` without binder shapes we understand
        };
        let pat: Vec<&crate::analyze::lexer::Tok> = f.toks[let_idx + 1..eq].iter().collect();
        if pat.len() == 1 && pat[0].is_ident("_") {
            emit(
                out,
                "ticket-leak",
                f,
                call.ident,
                format!(
                    "ticket from `{name}` discarded with `let _ =` — it must reach a *_wait, a return, or a live store"
                ),
            );
            return;
        }
        // Collect candidate binding identifiers (skip keywords and
        // pattern constructors, which start uppercase).
        let binders: Vec<String> = pat
            .iter()
            .filter(|t| {
                t.kind == TokKind::Ident
                    && !matches!(t.text.as_str(), "mut" | "ref" | "box")
                    && t.text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                    && t.text != "_"
            })
            .map(|t| t.text.clone())
            .collect();
        if binders.is_empty() {
            return;
        }
        let stmt_end = super::stmt_end(f, call.ident);
        let used = f.toks[stmt_end..body_close.min(f.toks.len())]
            .iter()
            .any(|t| t.kind == TokKind::Ident && binders.contains(&t.text));
        if !used {
            emit(
                out,
                "ticket-leak",
                f,
                call.ident,
                format!(
                    "ticket from `{name}` bound to `{}` is never used again — it must reach a *_wait, a return, or a live store",
                    binders.join("`/`")
                ),
            );
        }
        return;
    }

    // Assignment (`x = submit();`) or `return`: the ticket is stored or
    // escapes; accepted.
    if prefix
        .iter()
        .any(|t| t.is_punct("=") || t.is_ident("return"))
    {
        return;
    }

    // Bare statement: `submit();` / `submit()?;` — ticket dropped.
    if f.toks.get(after).is_some_and(|t| t.is_punct(";")) {
        emit(
            out,
            "ticket-leak",
            f,
            call.ident,
            format!(
                "ticket from `{name}` dropped by this statement — it must reach a *_wait, a return, or a live store"
            ),
        );
    }
    // Anything else (method chain, tail expression, argument position)
    // hands the ticket onward; the receiving code is audited in turn.
}
