//! Structural facts over the token stream: delimiter pairing, `cfg`
//! regions, flattened use-trees, and fn-signature extraction.
//!
//! This is deliberately *not* a full parser. Each lint needs a handful
//! of reliable structural facts — "this token range is `#[cfg(test)]`
//! code", "this fn returns `Result<_, DevError>`", "these are the arms
//! of that `match`" — and those are all derivable from a paired token
//! stream plus a few local scans. Where the heuristics cut a corner the
//! cut is *conservative for the code we lint* (an unrecognised `cfg`
//! predicate counts as active, an unparseable pattern is never flagged).

use std::collections::BTreeSet;

use super::lexer::{lex, Tok, TokKind, WaiverDecl};

/// A lexed, paired, cfg-annotated source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (also used as the virtual
    /// path for fixture sources).
    pub path: String,
    pub toks: Vec<Tok>,
    /// `pair[i]` = index of the delimiter matching `toks[i]`
    /// (`usize::MAX` for non-delimiters and unbalanced ones).
    pub pair: Vec<usize>,
    pub waivers: Vec<WaiverDecl>,
    /// Token-index ranges (half-open) that are test-only code:
    /// `#[cfg(test)]` items and `#[test]` fns.
    pub test_ranges: Vec<(usize, usize)>,
    /// Token-index ranges disabled by the active feature set
    /// (`#[cfg(feature = "x")]` with `x` not enabled, or
    /// `#[cfg(not(feature = "x"))]` with `x` enabled).
    pub inactive_ranges: Vec<(usize, usize)>,
    /// Names from `#[cfg(test)] mod <name>;` declarations: the named
    /// sibling files are test-only in their entirety.
    pub test_mod_decls: Vec<String>,
}

impl SourceFile {
    /// Lex and annotate one source file under the given feature set.
    pub fn parse(path: &str, src: &str, features: &BTreeSet<String>) -> SourceFile {
        let (toks, waivers) = lex(src);
        let pair = pair_delims(&toks);
        let mut f = SourceFile {
            path: path.to_string(),
            toks,
            pair,
            waivers,
            test_ranges: Vec::new(),
            inactive_ranges: Vec::new(),
            test_mod_decls: Vec::new(),
        };
        f.scan_cfg(features);
        f
    }

    /// The crate-ish component the file belongs to: `crates/<name>`,
    /// `src`, `tests`, `examples`, or its first path component.
    pub fn region(&self) -> String {
        let mut parts = self.path.split('/');
        match parts.next() {
            Some("crates") => format!("crates/{}", parts.next().unwrap_or("")),
            Some(first) => first.to_string(),
            None => String::new(),
        }
    }

    /// True when token `i` is inside test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= i && i < b)
    }

    /// True when token `i` is disabled under the active feature set.
    pub fn inactive(&self, i: usize) -> bool {
        self.inactive_ranges.iter().any(|&(a, b)| a <= i && i < b)
    }

    /// True when a lint should skip token `i` entirely.
    pub fn skip(&self, i: usize) -> bool {
        self.inactive(i)
    }

    /// End (exclusive) of the item/statement whose first token after
    /// its attributes is `start`: the first `;` or top-level `,` at the
    /// same depth, or the end of the first brace group at the same
    /// depth, whichever comes first.
    pub fn item_end(&self, start: usize) -> usize {
        let mut i = start;
        while i < self.toks.len() {
            let t = &self.toks[i];
            match t.kind {
                TokKind::Open => {
                    let close = self.pair[i];
                    if close == usize::MAX {
                        return self.toks.len();
                    }
                    if t.text == "{" {
                        return close + 1;
                    }
                    i = close + 1;
                }
                TokKind::Close => return i, // enclosing group ended first
                TokKind::Punct if t.text == ";" || t.text == "," => return i + 1,
                _ => i += 1,
            }
        }
        self.toks.len()
    }

    /// Walks every `#[...]` attribute, recording test / inactive ranges
    /// and `#[cfg(test)] mod name;` declarations.
    fn scan_cfg(&mut self, features: &BTreeSet<String>) {
        let mut i = 0;
        while i < self.toks.len() {
            if !self.toks[i].is_punct("#") {
                i += 1;
                continue;
            }
            // Inner attrs `#![...]` are file-scoped; skip over them.
            let mut j = i + 1;
            if j < self.toks.len() && self.toks[j].is_punct("!") {
                j += 1;
            }
            let Some(open) = self.toks.get(j).filter(|t| t.kind == TokKind::Open) else {
                i += 1;
                continue;
            };
            if open.text != "[" || self.pair[j] == usize::MAX {
                i += 1;
                continue;
            }
            let close = self.pair[j];
            let inner = &self.toks[j + 1..close];
            let verdict = classify_attr(inner, features);
            // The attributed item starts after this attribute and any
            // further consecutive attributes.
            let mut item = close + 1;
            while item + 1 < self.toks.len()
                && self.toks[item].is_punct("#")
                && self.toks[item + 1].kind == TokKind::Open
                && self.toks[item + 1].text == "["
                && self.pair[item + 1] != usize::MAX
            {
                item = self.pair[item + 1] + 1;
            }
            match verdict {
                AttrVerdict::Test => {
                    let end = self.item_end(item);
                    // `#[cfg(test)] mod name;` pulls a sibling file in.
                    if self.toks.get(item).is_some_and(|t| t.is_ident("mod"))
                        && self.toks.get(item + 2).is_some_and(|t| t.is_punct(";"))
                    {
                        if let Some(name) = self.toks.get(item + 1) {
                            self.test_mod_decls.push(name.text.clone());
                        }
                    }
                    self.test_ranges.push((item, end));
                }
                AttrVerdict::Inactive => {
                    let end = self.item_end(item);
                    self.inactive_ranges.push((item, end));
                }
                AttrVerdict::Plain => {}
            }
            i = close + 1;
        }
    }

    /// Flattens every `use` declaration outside inactive code into
    /// absolute path strings: `use a::b::{c, d::e as f};` yields
    /// `a::b::c` and `a::b::d::e`, each tagged with the line of the
    /// `use` keyword.
    pub fn use_paths(&self) -> Vec<(String, u32, usize)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.toks.len() {
            if self.toks[i].is_ident("use") && !self.inactive(i) {
                let end = self.item_end(i);
                let line = self.toks[i].line;
                flatten_use(self, i + 1, end, String::new(), line, i, &mut out);
                i = end;
            } else {
                i += 1;
            }
        }
        out
    }

    /// The longest `a::b::c` path starting at token `i`, as segment
    /// texts. Empty when `i` is not an ident.
    pub fn path_at(&self, i: usize) -> Vec<&str> {
        let mut segs = Vec::new();
        let mut j = i;
        while let Some(t) = self.toks.get(j) {
            if t.kind != TokKind::Ident {
                break;
            }
            segs.push(t.text.as_str());
            if self.toks.get(j + 1).is_some_and(|p| p.is_punct("::")) {
                j += 2;
            } else {
                break;
            }
        }
        segs
    }

    /// True when token `i` starts a path (its predecessor is not `::`,
    /// so `std::time` inside `a::std::time` doesn't count).
    pub fn path_starts_at(&self, i: usize) -> bool {
        self.toks[i].kind == TokKind::Ident && !(i > 0 && self.toks[i - 1].is_punct("::"))
    }
}

enum AttrVerdict {
    /// `#[cfg(test)]` or `#[test]`.
    Test,
    /// `#[cfg(feature = "x")]` with `x` disabled, or the `not(...)` dual.
    Inactive,
    Plain,
}

fn classify_attr(inner: &[Tok], features: &BTreeSet<String>) -> AttrVerdict {
    if inner.len() == 1 && inner[0].is_ident("test") {
        return AttrVerdict::Test;
    }
    if inner.first().is_some_and(|t| t.is_ident("cfg")) {
        let texts: Vec<&str> = inner.iter().map(|t| t.text.as_str()).collect();
        if texts.contains(&"test") {
            return AttrVerdict::Test;
        }
        // cfg ( feature = "x" )  /  cfg ( not ( feature = "x" ) )
        let negated = texts.get(2).is_some_and(|&t| t == "not");
        if let Some(fi) = texts.iter().position(|&t| t == "feature") {
            if let Some(name_tok) = inner.get(fi + 2) {
                let name = name_tok.text.trim_matches('"');
                let enabled = features.contains(name);
                if enabled == negated {
                    return AttrVerdict::Inactive;
                }
            }
        }
    }
    AttrVerdict::Plain
}

/// Matches `(`/`)`, `[`/`]`, `{`/`}` into a pairing table.
fn pair_delims(toks: &[Tok]) -> Vec<usize> {
    let mut pair = vec![usize::MAX; toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Open => stack.push(i),
            TokKind::Close => {
                if let Some(open) = stack.pop() {
                    pair[open] = i;
                    pair[i] = open;
                }
            }
            _ => {}
        }
    }
    pair
}

/// Recursive flattening of one use-tree segment.
fn flatten_use(
    f: &SourceFile,
    mut i: usize,
    end: usize,
    prefix: String,
    line: u32,
    use_tok: usize,
    out: &mut Vec<(String, u32, usize)>,
) {
    let mut path = prefix;
    while i < end {
        let t = &f.toks[i];
        match t.kind {
            TokKind::Ident if t.text == "as" => {
                // Rename: the imported path is already complete.
                i += 2;
            }
            TokKind::Ident | TokKind::Num => {
                if !path.is_empty() && !path.ends_with("::") {
                    path.push_str("::");
                }
                path.push_str(&t.text);
                i += 1;
            }
            TokKind::Punct if t.text == "::" => {
                i += 1;
            }
            TokKind::Punct if t.text == "*" => {
                if !path.is_empty() && !path.ends_with("::") {
                    path.push_str("::");
                }
                path.push('*');
                i += 1;
            }
            TokKind::Open if t.text == "{" => {
                let close = f.pair[i];
                if close == usize::MAX {
                    break;
                }
                // Split the group's top level on commas, recursing on
                // each branch with the current prefix.
                let mut start = i + 1;
                let mut k = i + 1;
                while k <= close {
                    let at_comma = f.toks[k].is_punct(",") && same_level(f, i, k);
                    if at_comma || k == close {
                        if k > start {
                            flatten_use(f, start, k, path.clone(), line, use_tok, out);
                        }
                        start = k + 1;
                    }
                    if f.toks[k].kind == TokKind::Open && f.pair[k] != usize::MAX {
                        k = f.pair[k] + 1;
                    } else {
                        k += 1;
                    }
                }
                return; // the group terminates this branch
            }
            TokKind::Punct if t.text == ";" || t.text == "," => break,
            _ => {
                i += 1;
            }
        }
    }
    if !path.is_empty() {
        out.push((path, line, use_tok));
    }
}

/// True when token `k` sits directly inside the group opened at `open`
/// (not in a nested group).
fn same_level(f: &SourceFile, open: usize, k: usize) -> bool {
    let close = f.pair[open];
    let mut i = open + 1;
    while i < k {
        if f.toks[i].kind == TokKind::Open && f.pair[i] != usize::MAX && f.pair[i] < close {
            if f.pair[i] >= k {
                return false;
            }
            i = f.pair[i] + 1;
        } else {
            i += 1;
        }
    }
    true
}

/// One `fn` found anywhere in a file (free, impl, or trait).
#[derive(Debug)]
pub struct FnDecl {
    pub name: String,
    /// Index of the `fn` keyword token.
    pub fn_tok: usize,
    /// Return-type tokens rendered as text (empty for `()`-returning).
    pub ret: String,
    /// Token range of the return type (half-open), when there is one.
    pub ret_range: Option<(usize, usize)>,
    /// Body token range (open-brace .. close-brace inclusive), when the
    /// fn has a body.
    pub body: Option<(usize, usize)>,
}

/// Extracts every fn declaration with its return type and body range.
pub fn fns(f: &SourceFile) -> Vec<FnDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < f.toks.len() {
        if !f.toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = f.toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        // Find the parameter list: first `(` group after the name
        // (skipping generics `<...>` which are not delimiter-paired —
        // scan forward to the first Open paren at this level).
        let mut j = i + 2;
        let mut params_close = None;
        while j < f.toks.len() {
            let t = &f.toks[j];
            if t.kind == TokKind::Open && t.text == "(" {
                params_close = (f.pair[j] != usize::MAX).then(|| f.pair[j]);
                break;
            }
            if t.kind == TokKind::Open {
                if f.pair[j] == usize::MAX {
                    break;
                }
                j = f.pair[j];
            }
            if t.is_punct(";") || (t.kind == TokKind::Open && t.text == "{") {
                break;
            }
            j += 1;
        }
        let Some(close) = params_close else {
            i += 1;
            continue;
        };
        // Return type: tokens between `->` and the body `{` / `;` /
        // `where`.
        let mut ret = String::new();
        let mut body = None;
        let mut k = close + 1;
        let has_arrow = f.toks.get(k).is_some_and(|t| t.is_punct("->"));
        if has_arrow {
            k += 1;
        }
        let ret_start = k;
        while k < f.toks.len() {
            let t = &f.toks[k];
            if t.kind == TokKind::Open && t.text == "{" {
                if f.pair[k] != usize::MAX {
                    body = Some((k, f.pair[k]));
                }
                break;
            }
            if t.is_punct(";") || t.is_ident("where") {
                // `where` clauses end the return type; the body (if
                // any) is the next top-level brace group.
                if t.is_ident("where") {
                    let mut m = k + 1;
                    while m < f.toks.len() {
                        let w = &f.toks[m];
                        if w.kind == TokKind::Open && w.text == "{" {
                            if f.pair[m] != usize::MAX {
                                body = Some((m, f.pair[m]));
                            }
                            break;
                        }
                        if w.is_punct(";") {
                            break;
                        }
                        if w.kind == TokKind::Open && f.pair[m] != usize::MAX {
                            m = f.pair[m];
                        }
                        m += 1;
                    }
                }
                break;
            }
            if has_arrow {
                if !ret.is_empty() {
                    ret.push(' ');
                }
                ret.push_str(&t.text);
            }
            if t.kind == TokKind::Open {
                if f.pair[k] == usize::MAX {
                    break;
                }
                // Render group contents into the return type text too.
                if has_arrow {
                    for inner in &f.toks[k + 1..=f.pair[k]] {
                        ret.push(' ');
                        ret.push_str(&inner.text);
                    }
                }
                k = f.pair[k];
            }
            k += 1;
        }
        out.push(FnDecl {
            name,
            fn_tok: i,
            ret,
            ret_range: has_arrow.then_some((ret_start, k)),
            body,
        });
        i += 2;
    }
    out
}

/// One `impl` block: the type it implements on (last path segment of
/// the self type) and its body token range.
#[derive(Debug)]
pub struct ImplSpan {
    pub type_name: String,
    pub body: (usize, usize),
}

/// Extracts every `impl` block's self-type name and body range, so fns
/// returning `Self` can be attributed to their type.
pub fn impl_spans(f: &SourceFile) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < f.toks.len() {
        if !f.toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Walk to the body `{`, remembering the last path segment seen
        // after a `for` (trait impls) or overall (inherent impls),
        // skipping generic parameter lists by angle counting.
        let mut angle = 0i32;
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut j = i + 1;
        let mut body = None;
        while j < f.toks.len() {
            let t = &f.toks[j];
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "for" if t.kind == TokKind::Ident && angle == 0 => saw_for = true,
                "where" if t.kind == TokKind::Ident && angle == 0 => {}
                "{" if t.kind == TokKind::Open && angle <= 0 => {
                    if f.pair[j] != usize::MAX {
                        body = Some((j, f.pair[j]));
                    }
                    break;
                }
                _ => {
                    if t.kind == TokKind::Ident && angle == 0 {
                        if saw_for {
                            after_for = Some(t.text.clone());
                        } else {
                            last_ident = Some(t.text.clone());
                        }
                    }
                    if t.kind == TokKind::Open {
                        if f.pair[j] == usize::MAX {
                            break;
                        }
                        j = f.pair[j];
                    }
                }
            }
            j += 1;
        }
        if let (Some(body), Some(name)) = (body, after_for.or(last_ident)) {
            out.push(ImplSpan {
                type_name: name,
                body,
            });
            i = body.0 + 1; // nested impls are rare; scan inside anyway
        } else {
            i = j + 1;
        }
    }
    out
}

/// A `type Result<T> = std::result::Result<T, Err>;` alias: returns the
/// error type name, when the file declares one.
pub fn result_alias_error(f: &SourceFile) -> Option<String> {
    let mut i = 0;
    while i + 1 < f.toks.len() {
        if f.toks[i].is_ident("type") && f.toks[i + 1].is_ident("Result") {
            // `item_end` stops at commas (for field/variant scans), but a
            // `Result<T, E>` alias has commas inside its angle brackets —
            // scan to the terminating `;` ourselves, hopping over groups.
            let mut end = i;
            while end < f.toks.len() && !f.toks[end].is_punct(";") {
                if f.toks[end].kind == TokKind::Open {
                    let close = f.pair[end];
                    if close == usize::MAX {
                        break;
                    }
                    end = close;
                }
                end += 1;
            }
            // Error type = second top-level angle argument of the RHS
            // `Result`: find `=` then the last `Result` ident, then the
            // comma-separated args.
            let eq = (i..end).find(|&k| f.toks[k].is_punct("="))?;
            let rhs_result = (eq..end).rev().find(|&k| f.toks[k].is_ident("Result"))?;
            return second_angle_arg(f, rhs_result, end);
        }
        i += 1;
    }
    None
}

/// For `Result<...>` at token `i`, the last ident of the second
/// top-level generic argument (the error type), when present.
pub fn second_angle_arg(f: &SourceFile, i: usize, end: usize) -> Option<String> {
    let mut k = i + 1;
    if !f.toks.get(k).is_some_and(|t| t.is_punct("<")) {
        return None;
    }
    k += 1;
    let mut depth = 1i32;
    let mut arg = 0usize;
    let mut last_ident_in_arg1: Option<String> = None;
    while k < end && depth > 0 {
        let t = &f.toks[k];
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "," if depth == 1 => arg += 1,
            _ => {
                if arg == 1 && t.kind == TokKind::Ident {
                    last_ident_in_arg1 = Some(t.text.clone());
                }
            }
        }
        if t.kind == TokKind::Open {
            if f.pair[k] == usize::MAX {
                break;
            }
            k = f.pair[k];
        }
        k += 1;
    }
    last_ident_in_arg1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/demo/src/lib.rs", src, &BTreeSet::new())
    }

    #[test]
    fn cfg_test_mod_range_covers_the_block() {
        let f =
            parse("fn live() {}\n#[cfg(test)]\nmod tests { fn t() { bad(); } }\nfn also_live() {}");
        let bad = f.toks.iter().position(|t| t.is_ident("bad")).unwrap();
        let live = f.toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(f.in_test(bad));
        assert!(!f.in_test(live));
    }

    #[test]
    fn cfg_test_mod_decl_is_recorded() {
        let f = parse("#[cfg(test)]\nmod fs_tests;\nfn live() {}");
        assert_eq!(f.test_mod_decls, vec!["fs_tests".to_string()]);
    }

    #[test]
    fn feature_gating_follows_the_active_set() {
        let mut feats = BTreeSet::new();
        feats.insert("verify".to_string());
        let src = "#[cfg(feature = \"verify\")] fn a() { on(); }\n#[cfg(feature = \"trace\")] fn b() { off(); }\n#[cfg(not(feature = \"verify\"))] fn c() { also_off(); }";
        let f = SourceFile::parse("src/lib.rs", src, &feats);
        let on = f.toks.iter().position(|t| t.is_ident("on")).unwrap();
        let off = f.toks.iter().position(|t| t.is_ident("off")).unwrap();
        let also = f.toks.iter().position(|t| t.is_ident("also_off")).unwrap();
        assert!(!f.inactive(on));
        assert!(f.inactive(off));
        assert!(f.inactive(also));
    }

    #[test]
    fn use_trees_flatten() {
        let f = parse("use a::b::{c, d::e as f, g::*};\nuse h;\n");
        let paths: Vec<String> = f.use_paths().into_iter().map(|(p, _, _)| p).collect();
        assert_eq!(paths, vec!["a::b::c", "a::b::d::e", "a::b::g::*", "h"]);
    }

    #[test]
    fn fn_return_types_extract() {
        let f = parse(
            "fn plain() {}\nfn fall(x: u8) -> Result<()> { body() }\nfn exp() -> Result<u64, DevError>;\nfn tick(&mut self) -> Result<CommitTicket> { t() }",
        );
        let decls = fns(&f);
        let names: Vec<&str> = decls.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["plain", "fall", "exp", "tick"]);
        assert_eq!(decls[0].ret, "");
        assert!(decls[1].ret.starts_with("Result"));
        assert!(decls[2].ret.contains("DevError"));
        assert!(decls[3].ret.contains("CommitTicket"));
        assert!(decls[1].body.is_some());
        assert!(decls[2].body.is_none());
    }

    #[test]
    fn result_alias_error_extracts() {
        let f = parse("pub type Result<T> = std::result::Result<T, DevError>;\n");
        assert_eq!(result_alias_error(&f).as_deref(), Some("DevError"));
        let f = parse("pub type Result<T, E = FsError> = std::result::Result<T, E>;\n");
        // Unresolvable default-param aliases yield the generic name —
        // callers treat unknown names as not-domain-errors.
        assert!(result_alias_error(&f).is_some());
    }

    #[test]
    fn explicit_result_error_arg() {
        let f = parse("fn f() -> Result<Vec<u8>, DevError> {}\n");
        let r = f.toks.iter().position(|t| t.is_ident("Result")).unwrap();
        assert_eq!(
            second_angle_arg(&f, r, f.toks.len()).as_deref(),
            Some("DevError")
        );
    }

    #[test]
    fn impl_spans_find_inherent_and_trait_impls() {
        let f = parse(
            "impl CommitTicket { fn new() -> Self { x() } }\nimpl<'a> TxBlockDevice for XftlDev<'a> { fn commit_submit(&mut self) -> Result<CommitTicket> { y() } }",
        );
        let spans = impl_spans(&f);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].type_name, "CommitTicket");
        assert_eq!(spans[1].type_name, "XftlDev");
    }

    #[test]
    fn item_end_stops_at_semicolon_or_brace() {
        let f = parse("mod a;\nmod b { fn x() {} }\nfn c() {}");
        let a = f.toks.iter().position(|t| t.is_ident("mod")).unwrap();
        assert!(f.toks[f.item_end(a) - 1].is_punct(";"));
    }
}
