//! A minimal Rust lexer for the `xftl-analyze` engine.
//!
//! The workspace build is hermetic (no crates.io, so no `syn`); this
//! lexer supplies the token-level facts the lints need while staying a
//! few hundred lines. It understands exactly the parts of the grammar
//! that matter for *not lying about source structure*:
//!
//! - line (`//`) and nested block (`/* */`) comments are skipped, which
//!   kills the false-positive class the old grep-based `lint-sim` had
//!   (a banned construct mentioned in a doc comment is not a use);
//! - string, raw-string, byte-string and char literals are single
//!   tokens, so their *contents* never look like code;
//! - lifetimes (`'a`) are distinguished from char literals (`'a'`);
//! - the three multi-char separators structural analysis needs
//!   (`::`, `->`, `=>`) are fused into one token each — everything
//!   else stays a single-character punct so `Vec<Vec<u8>>` still
//!   closes two angle depths.
//!
//! Waiver comments (`// xftl-analyze: allow(<lint>): <justification>`)
//! are the one piece of comment content the engine *does* care about;
//! the lexer extracts them as [`WaiverDecl`]s while skipping the
//! comment itself.

/// Token kind. The lexer is lossless about *identity* (every token
/// carries its text) but lossy about trivia (whitespace, comments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `match`, `IoCmd`, …).
    Ident,
    /// Lifetime (`'a`) — kept distinct so `'a` never reads as a char.
    Lifetime,
    /// Numeric literal (underscores preserved in the text).
    Num,
    /// String/char/byte literal of any flavour, quotes included.
    Str,
    /// Punctuation: single chars plus the fused `::`, `->`, `=>`.
    Punct,
    /// `(`, `[` or `{`.
    Open,
    /// `)`, `]` or `}`.
    Close,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A waiver comment found while lexing:
/// `// xftl-analyze: allow(<lint>): <justification>`.
///
/// `justification` is the trimmed text after the second colon; an empty
/// justification is recorded as such and *rejected* by the engine (a
/// waiver must say why).
#[derive(Debug, Clone)]
pub struct WaiverDecl {
    pub lint: String,
    pub justification: String,
    pub line: u32,
}

/// Marker that introduces a waiver inside a `//` comment.
pub const WAIVER_MARKER: &str = "xftl-analyze: allow(";

/// Lex `src` into tokens plus any waiver declarations found in
/// comments. The lexer never fails: unrecognised bytes become
/// single-char puncts, which is good enough for analysis (the real
/// compiler is the authority on validity).
pub fn lex(src: &str) -> (Vec<Tok>, Vec<WaiverDecl>) {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    toks: Vec<Tok>,
    waivers: Vec<WaiverDecl>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            toks: Vec::new(),
            waivers: Vec::new(),
        }
    }

    fn peek(&self, off: usize) -> u8 {
        *self.src.get(self.pos + off).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.toks.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> (Vec<Tok>, Vec<WaiverDecl>) {
        while self.pos < self.src.len() {
            let b = self.peek(0);
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' | b'b'
                    if self.raw_string_lookahead().is_some()
                        || (b == b'b' && self.peek(1) == b'"') =>
                {
                    self.string_like(line, col);
                }
                b'b' if self.peek(1) == b'\'' => {
                    // Byte char literal b'x'.
                    self.bump();
                    self.char_literal(line, col, "b");
                }
                b'"' => self.string_like(line, col),
                b'\'' => self.quote(line, col),
                b'0'..=b'9' => self.number(line, col),
                _ if is_ident_start(b) => self.ident(line, col),
                b'(' | b'[' | b'{' => {
                    self.bump();
                    self.push(TokKind::Open, (b as char).to_string(), line, col);
                }
                b')' | b']' | b'}' => {
                    self.bump();
                    self.push(TokKind::Close, (b as char).to_string(), line, col);
                }
                b':' if self.peek(1) == b':' => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "::".into(), line, col);
                }
                b'-' if self.peek(1) == b'>' => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "->".into(), line, col);
                }
                b'=' if self.peek(1) == b'>' => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "=>".into(), line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, (b as char).to_string(), line, col);
                }
            }
        }
        (self.toks, self.waivers)
    }

    /// `//` comment: skip to end of line, but first mine it for a
    /// waiver declaration.
    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // The marker must open the comment (after the `//`/`///`/`//!`
        // leader): a doc comment *describing* the waiver syntax — in
        // backticks or in an indented example — is prose, not a waiver.
        let content = text
            .strip_prefix("//")
            .map_or(text.as_str(), |c| c.strip_prefix(['/', '!']).unwrap_or(c))
            .trim_start();
        if let Some(rest) = content.strip_prefix(WAIVER_MARKER) {
            if let Some(close) = rest.find(')') {
                let lint = rest[..close].trim().to_string();
                let after = rest[close + 1..].trim_start();
                let justification = after
                    .strip_prefix(':')
                    .map_or(String::new(), |j| j.trim().to_string());
                self.waivers.push(WaiverDecl {
                    lint,
                    justification,
                    line,
                });
            }
        }
    }

    /// Nested `/* */` comment.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
    }

    /// If the cursor sits on a raw-string opener (`r"`, `r#"`, `br#"`,
    /// …), returns the number of `#`s; `None` otherwise.
    fn raw_string_lookahead(&self) -> Option<usize> {
        let mut off = 0;
        if self.peek(off) == b'b' {
            off += 1;
        }
        if self.peek(off) != b'r' {
            return None;
        }
        off += 1;
        let mut hashes = 0;
        while self.peek(off) == b'#' {
            off += 1;
            hashes += 1;
        }
        (self.peek(off) == b'"').then_some(hashes)
    }

    /// Any `"`-delimited literal: plain, byte, raw (with `#` fences).
    fn string_like(&mut self, line: u32, col: u32) {
        let raw = self.raw_string_lookahead();
        let start = self.pos;
        // Consume prefix bytes up to and including the opening quote.
        while self.peek(0) != b'"' {
            self.bump();
        }
        self.bump(); // opening quote
        match raw {
            Some(hashes) => loop {
                if self.pos >= self.src.len() {
                    break;
                }
                if self.peek(0) == b'"' {
                    let mut ok = true;
                    for i in 0..hashes {
                        if self.peek(1 + i) != b'#' {
                            ok = false;
                            break;
                        }
                    }
                    self.bump();
                    if ok {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                } else {
                    self.bump();
                }
            },
            None => loop {
                if self.pos >= self.src.len() {
                    break;
                }
                match self.bump() {
                    b'"' => break,
                    b'\\' => {
                        self.bump();
                    }
                    _ => {}
                }
            },
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Str, text, line, col);
    }

    /// A `'`: either a char literal or a lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        // Lifetime: 'ident not followed by a closing quote.
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            self.bump(); // '
            let start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, format!("'{name}"), line, col);
        } else {
            self.char_literal(line, col, "");
        }
    }

    /// Char literal body starting at the opening `'` (prefix already
    /// consumed for `b'x'`).
    fn char_literal(&mut self, line: u32, col: u32, prefix: &str) {
        let start = self.pos;
        self.bump(); // opening '
        loop {
            if self.pos >= self.src.len() {
                break;
            }
            match self.bump() {
                b'\'' => break,
                b'\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
        let body = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Str, format!("{prefix}{body}"), line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        // Greedy over the characters numeric literals may contain; `1e9`
        // and `0x2545F4914F6CDD1D` and `1_000u64` each stay one token.
        while matches!(self.peek(0), b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'.') {
            // Don't swallow `..` range punctuation or a method call on a
            // literal (`1.max(x)`).
            if self.peek(0) == b'.' && !self.peek(1).is_ascii_digit() {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Num, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line, col);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).0.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src =
            "// std::time::Instant in a comment\nlet s = \"Instant::now()\"; /* SystemTime */ f();";
        let t = texts(src);
        assert!(t.contains(&"let".to_string()));
        assert!(t.contains(&"\"Instant::now()\"".to_string()));
        assert!(!t.contains(&"Instant".to_string()));
        assert!(!t.contains(&"SystemTime".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = lex("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let n = b'q'; }").0;
        assert!(t
            .iter()
            .any(|tok| tok.kind == TokKind::Lifetime && tok.text == "'a"));
        assert!(t
            .iter()
            .any(|tok| tok.kind == TokKind::Str && tok.text == "'z'"));
        assert!(t
            .iter()
            .any(|tok| tok.kind == TokKind::Str && tok.text == "b'q'"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let t = lex(r####"let s = r#"quote " inside"#; g();"####).0;
        assert!(t.iter().any(|tok| tok.kind == TokKind::Str));
        assert!(t.iter().any(|tok| tok.is_ident("g")));
    }

    #[test]
    fn fused_puncts_and_positions() {
        let t = lex("a::b -> c => d").0;
        let puncts: Vec<&str> = t
            .iter()
            .filter(|x| x.kind == TokKind::Punct)
            .map(|x| x.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["::", "->", "=>"]);
        assert_eq!((t[0].line, t[0].col), (1, 1));
    }

    #[test]
    fn shift_ops_stay_single_chars_for_angle_depth() {
        let t = texts("Vec<Vec<u8>>");
        assert_eq!(t, vec!["Vec", "<", "Vec", "<", "u8", ">", ">"]);
    }

    #[test]
    fn waiver_comments_are_extracted() {
        let (_, w) = lex("f(); // xftl-analyze: allow(sim-clock): bench measures host time\n");
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].lint, "sim-clock");
        assert_eq!(w[0].justification, "bench measures host time");
        assert_eq!(w[0].line, 1);

        let (_, w) = lex("g(); // xftl-analyze: allow(ticket-leak)\n");
        assert_eq!(w.len(), 1);
        assert!(w[0].justification.is_empty(), "no colon → no justification");
    }

    #[test]
    fn nested_block_comments() {
        let t = texts("/* a /* b */ still comment */ live");
        assert_eq!(t, vec!["live"]);
    }

    #[test]
    fn numbers_keep_underscores_and_hex() {
        let t = lex("let a = 6_364_136_223_846_793_005u64; let b = 0x2545F4914F6CDD1D;").0;
        assert!(t
            .iter()
            .any(|x| x.kind == TokKind::Num && x.text.starts_with("6_364")));
        assert!(t
            .iter()
            .any(|x| x.kind == TokKind::Num && x.text.starts_with("0x2545")));
    }
}
