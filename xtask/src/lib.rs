//! # xtask — repository automation library
//!
//! The binary (`src/main.rs`) is a thin CLI over two subsystems:
//!
//! - [`analyze`] — the `xftl-analyze` static analysis engine: an
//!   AST-level lint suite encoding X-FTL's domain invariants
//!   (ticket-leak, layering, error-discard, wildcard-arm, sim-clock,
//!   unsafe-wall), with span diagnostics, JSON findings reports,
//!   justified waivers, and a fixture-backed mutation self-test. The
//!   old grep-based `lint-sim` survives as a CLI alias running the
//!   determinism subset (`sim-clock` + `unsafe-wall`).
//! - [`benchcheck`] — the perf-regression gate comparing a fresh
//!   `BENCH_all.json` against the committed `BENCH_BASELINE.json`.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod benchcheck;
