// xftl-analyze-fixture: path=crates/db/src/probe.rs
//! Seeded violation: crates/db reaching past TxBlockDevice into flash
//! internals — both a non-allowlisted item and a module reach-through.

use xftl_flash::chip::FlashChip;

pub fn peek(chip: &FlashChip) -> usize {
    chip.geometry().pages_per_block
}
