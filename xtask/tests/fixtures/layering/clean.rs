// xftl-analyze-fixture: path=crates/db/src/probe.rs
//! Clean twin: crates/db may take simulated time types (`SimClock`,
//! `Nanos`) from the flash crate root; everything else goes through
//! the device trait.

use xftl_flash::{Nanos, SimClock};

pub fn stamp(clock: &SimClock) -> Nanos {
    clock.now()
}
