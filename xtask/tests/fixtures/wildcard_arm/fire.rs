// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! Seeded violation: a `_ =>` arm in a match over a protocol enum. A
//! new `DevError` variant would silently fall into the wildcard instead
//! of forcing a decision at this site.

pub enum DevError {
    Flash,
    OutOfSpace,
}

pub fn retryable(e: &DevError) -> bool {
    match e {
        DevError::Flash => true,
        _ => false,
    }
}
