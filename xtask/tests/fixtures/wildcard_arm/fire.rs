// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! Seeded violation: a `_ =>` arm in a match over a protocol enum. A
//! new `DevError` variant would silently fall into the wildcard instead
//! of forcing a decision at this site. The health state machine's
//! `DeviceState` is protocol too: a wildcard there would silently
//! absorb a future degradation stage.

pub enum DevError {
    Flash,
    OutOfSpace,
}

pub enum DeviceState {
    Healthy,
    Degraded,
    ReadOnly,
}

pub fn retryable(e: &DevError) -> bool {
    match e {
        DevError::Flash => true,
        _ => false,
    }
}

pub fn writable(s: &DeviceState) -> bool {
    match s {
        DeviceState::ReadOnly => false,
        _ => true,
    }
}
