// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! Clean twin: every variant named (an or-pattern is fine — it still
//! fails to compile when a variant is added). The match over a
//! *non-protocol* enum keeps its wildcard untouched.

pub enum DevError {
    Flash,
    OutOfSpace,
}

pub enum Verbosity {
    Quiet,
    Loud,
    Debug,
}

pub fn retryable(e: &DevError) -> bool {
    match e {
        DevError::Flash => true,
        DevError::OutOfSpace => false,
    }
}

pub fn noisy(v: &Verbosity) -> bool {
    match v {
        Verbosity::Loud => true,
        _ => false,
    }
}
