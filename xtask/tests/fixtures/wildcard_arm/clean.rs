// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! Clean twin: every variant named (an or-pattern is fine — it still
//! fails to compile when a variant is added). The match over a
//! *non-protocol* enum keeps its wildcard untouched. The health and
//! scrub enums (`DeviceState`, `ScrubReason`) are matched exhaustively.

pub enum DevError {
    Flash,
    OutOfSpace,
}

pub enum Verbosity {
    Quiet,
    Loud,
    Debug,
}

pub enum DeviceState {
    Healthy,
    Degraded,
    ReadOnly,
}

pub enum ScrubReason {
    ReadDisturb,
    Retention,
    EccFeedback,
    WearLevel,
}

pub fn retryable(e: &DevError) -> bool {
    match e {
        DevError::Flash => true,
        DevError::OutOfSpace => false,
    }
}

pub fn noisy(v: &Verbosity) -> bool {
    match v {
        Verbosity::Loud => true,
        _ => false,
    }
}

pub fn writable(s: &DeviceState) -> bool {
    match s {
        DeviceState::Healthy | DeviceState::Degraded => true,
        DeviceState::ReadOnly => false,
    }
}

pub fn urgent(r: &ScrubReason) -> bool {
    match r {
        ScrubReason::ReadDisturb | ScrubReason::EccFeedback => true,
        ScrubReason::Retention | ScrubReason::WearLevel => false,
    }
}
