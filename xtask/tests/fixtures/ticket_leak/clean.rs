// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! Clean twin: every ticket flows onward — into a wait, or out of the
//! function as its return value.

pub struct CommitTicket(pub u32);

fn commit_submit() -> CommitTicket {
    CommitTicket(1)
}

fn commit_wait(_t: CommitTicket) {}

pub fn submits_then_waits() {
    let t = commit_submit();
    commit_wait(t);
}

pub fn hands_ticket_to_caller() -> CommitTicket {
    commit_submit()
}
