// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! Seeded violation: a commit ticket discarded with `let _ =`. The
//! split-phase API's whole point is that the ticket reaches a wait —
//! dropping it turns a durable commit into a maybe.

pub struct CommitTicket(pub u32);

fn commit_submit() -> CommitTicket {
    CommitTicket(1)
}

pub fn fire_and_forget() {
    let _ = commit_submit();
}
