// xftl-analyze-fixture: path=crates/fixture/src/lib.rs
//! Seeded violation: a crate root with no `#![forbid(unsafe_code)]`.

pub fn noop() {}
