// xftl-analyze-fixture: path=crates/fixture/src/lib.rs
//! Clean twin: the wall is up.

#![forbid(unsafe_code)]

pub fn noop() {}
