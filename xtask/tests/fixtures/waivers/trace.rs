// xftl-analyze-fixture: path=crates/trace/src/probe.rs
//! A perfectly-formed, justified waiver inside crates/trace: it must be
//! IGNORED — the telemetry crate is the determinism anchor everything
//! else leans on, so no waiver is honoured there.

use std::time::Instant; // xftl-analyze: allow(sim-clock): trying to sneak wall clock into trace

pub fn stamp() -> Instant {
    Instant::now()
}
