// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! A waiver with no justification text: the underlying violation must
//! stand AND the bare waiver itself is a `waiver` violation.

use std::time::Instant; // xftl-analyze: allow(sim-clock):

pub fn stamp() -> Instant {
    Instant::now()
}
