// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! A justified waiver outside crates/trace: the violation on its line
//! is suppressed and reported under `waivers` in the JSON findings.

use std::time::Instant; // xftl-analyze: allow(sim-clock): fixture proves a justified waiver suppresses
