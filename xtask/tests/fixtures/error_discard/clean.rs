// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! Clean twin: the same call, propagated with `?` and matched — both
//! legitimate handlings the lint must not flag.

pub enum DevError {
    Boom,
}

pub type Result<T> = std::result::Result<T, DevError>;

fn submit() -> Result<()> {
    Ok(())
}

pub fn propagates() -> Result<()> {
    submit()?;
    Ok(())
}

pub fn matches_it() -> bool {
    match submit() {
        Ok(()) => true,
        Err(DevError::Boom) => false,
    }
}
