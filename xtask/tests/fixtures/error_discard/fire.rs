// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! Seeded violation: a domain `Result` silently dropped with `let _ =`.

pub enum DevError {
    Boom,
}

pub type Result<T> = std::result::Result<T, DevError>;

fn submit() -> Result<()> {
    Ok(())
}

pub fn caller() {
    let _ = submit();
}
