// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! Clean twin: simulated time only. `sim-clock` must stay quiet here —
//! mentioning an Instant in a comment or a string literal is not a use.

pub fn elapsed_ns(clock: &xftl_flash::SimClock) -> u64 {
    // The string below would trip a grep-based scanner; the AST engine
    // knows "std::time::Instant" here is data, not a path.
    let _label = "std::time::Instant";
    clock.now()
}
