// xftl-analyze-fixture: path=crates/fixture/src/probe.rs
//! Seeded violation: host wall clock reaching into library code. The
//! selftest asserts `sim-clock` fires here; if it goes quiet the lint
//! is dead and CI fails naming it.

use std::time::Instant;

pub fn elapsed_ns() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}
