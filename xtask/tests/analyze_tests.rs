//! Integration tests for the `xftl-analyze` engine: the mutation
//! self-test over the seeded fixture corpus, the waiver policy, and the
//! promise that the checked-in tree itself analyzes clean.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use xtask::analyze::{self, lints, Config};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

fn run_on(path: &str, src: &str, only: &[&'static str]) -> analyze::Analysis {
    let cfg = Config {
        lints: only.to_vec(),
        ..Config::default()
    };
    analyze::analyze_sources(&[(path.to_string(), src.to_string())], &cfg)
}

/// The acceptance criterion in one test: every lint must fire on its
/// seeded fixture violation and stay quiet on the clean twin. A lint
/// that cannot fire is dead code pretending to be a guarantee.
#[test]
fn every_lint_is_proven_live_by_its_fixtures() {
    let failures = analyze::selftest(&repo_root());
    assert!(failures.is_empty(), "selftest failures: {failures:#?}");
}

/// The tree this test runs in must itself be clean: `cargo test` fails
/// the same way CI's `xtask analyze` job would.
#[test]
fn checked_in_tree_analyzes_clean() {
    let analysis = analyze::analyze_repo(&repo_root(), &Config::default());
    let msgs: Vec<String> = analysis
        .violations
        .iter()
        .map(|v| format!("{}:{}:{} [{}] {}", v.path, v.line, v.col, v.lint, v.msg))
        .collect();
    assert!(
        msgs.is_empty(),
        "violations on the tree:\n{}",
        msgs.join("\n")
    );
    assert!(analysis.files_scanned > 50, "scan missed most of the tree");
}

/// Both feature sets must analyze clean — `#[cfg(feature = ...)]`
/// regions flip between them, so a violation can hide in either half.
#[test]
fn both_feature_sets_analyze_clean() {
    for feats in [vec!["verify"], vec!["trace"]] {
        let cfg = Config {
            features: feats
                .iter()
                .map(ToString::to_string)
                .collect::<BTreeSet<_>>(),
            ..Config::default()
        };
        let analysis = analyze::analyze_repo(&repo_root(), &cfg);
        assert!(
            analysis.violations.is_empty(),
            "violations under features {feats:?}: {:?}",
            analysis.violations.first()
        );
    }
}

#[test]
fn unjustified_waiver_is_rejected_and_violation_stands() {
    let src = "use std::time::Instant; // xftl-analyze: allow(sim-clock):\n";
    let a = run_on("crates/fixture/src/probe.rs", src, &["sim-clock"]);
    assert!(
        a.violations.iter().any(|v| v.lint == "sim-clock"),
        "the waived violation must stand: {:?}",
        a.violations
    );
    assert!(
        a.violations.iter().any(|v| v.lint == "waiver"),
        "the bare waiver must itself be flagged: {:?}",
        a.violations
    );
}

#[test]
fn trace_honours_no_waivers() {
    let src =
        "use std::time::Instant; // xftl-analyze: allow(sim-clock): determinism is negotiable\n";
    let a = run_on("crates/trace/src/probe.rs", src, &["sim-clock"]);
    assert!(
        a.violations.iter().any(|v| v.lint == "sim-clock"),
        "crates/trace must ignore even a justified waiver: {:?}",
        a.violations
    );
}

#[test]
fn justified_waiver_suppresses_and_is_reported() {
    let src =
        "use std::time::Instant; // xftl-analyze: allow(sim-clock): host-time bench by design\n";
    let a = run_on("crates/fixture/src/probe.rs", src, &["sim-clock"]);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert_eq!(a.waivers_used.len(), 1);
    assert_eq!(a.waivers_used[0].lint, "sim-clock");
}

#[test]
fn waiver_naming_an_unknown_lint_is_flagged() {
    let src = "pub fn f() {} // xftl-analyze: allow(made-up-lint): because\n";
    let a = run_on("crates/fixture/src/probe.rs", src, &["sim-clock"]);
    assert!(
        a.violations
            .iter()
            .any(|v| v.lint == "waiver" && v.msg.contains("made-up-lint")),
        "{:?}",
        a.violations
    );
}

/// The grep-scanner's classic false positives: the engine reads token
/// structure, so paths in strings and comments are data, not uses.
#[test]
fn strings_and_comments_do_not_trip_sim_clock() {
    let src = "// std::time::Instant in prose\npub fn f() -> &'static str { \"std::time::Instant::now()\" }\n";
    let a = run_on("crates/fixture/src/probe.rs", src, &["sim-clock"]);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
}

#[test]
fn lint_sim_alias_subset_matches_the_engine() {
    // The `lint-sim` CLI runs exactly this subset on the same engine.
    let cfg = Config {
        lints: vec!["sim-clock", "unsafe-wall"],
        ..Config::default()
    };
    let a = analyze::analyze_repo(&repo_root(), &cfg);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert_eq!(a.lints_run.len(), 2);
}

#[test]
fn summary_line_and_json_report_shape() {
    let src = "use std::time::Instant;\n";
    let a = run_on("crates/fixture/src/probe.rs", src, &["sim-clock"]);
    let line = a.summary_line();
    assert!(line.starts_with("ANALYZE {"), "{line}");
    assert!(line.contains("\"files_scanned\":1"), "{line}");
    assert!(line.contains("\"violations\":1"), "{line}");
    let json = a.to_json();
    assert!(json.contains("\"lint\": \"sim-clock\""), "{json}");
    assert!(json.contains("crates/fixture/src/probe.rs"), "{json}");
}

/// All six lints exist, and the registry-driven ones see through the
/// domain vocabulary (a `Result` alias, a `*Ticket` constructor).
#[test]
fn lint_catalogue_is_complete() {
    let expected = [
        "sim-clock",
        "unsafe-wall",
        "layering",
        "error-discard",
        "wildcard-arm",
        "ticket-leak",
    ];
    assert_eq!(lints::LINTS, expected);
}
